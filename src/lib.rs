//! Umbrella crate for the ConAir reproduction: hosts workspace-level
//! integration tests (`tests/`) and runnable examples (`examples/`).
//! The actual functionality lives in the `conair-*` crates.
pub use conair as pipeline;
