//! Prints the Section-2 empirical-study aggregates that justify ConAir's
//! two design observations, with the per-bug catalogs behind them.
//!
//! ```sh
//! cargo run --example bug_study
//! ```

use conair_study::{
    atomicity_bugs, order_bugs, region_study, reproduced_bugs, single_thread_study,
    AtomicitySubtype,
};

fn main() {
    let s = single_thread_study();
    println!("Observation 1: rolling back a single thread recovers most failures");
    println!(
        "  atomicity violations: {}/{} fail in a thread involved in the \
         unserializable interleaving ({:.0}%)",
        s.atomicity_recoverable,
        s.atomicity_total,
        s.atomicity_fraction() * 100.0
    );
    println!(
        "  order violations: {}/{} fail in the thread of the too-early \
         operation ({:.0}%)",
        s.order_recoverable,
        s.order_total,
        s.order_fraction() * 100.0
    );
    println!("  deadlocks: rolling back any involved thread breaks the cycle\n");

    // Break the atomicity catalog down by Figure-2 sub-pattern.
    let bugs = atomicity_bugs();
    for sub in [
        AtomicitySubtype::Waw,
        AtomicitySubtype::Raw,
        AtomicitySubtype::Rar,
        AtomicitySubtype::War,
    ] {
        let n = bugs.iter().filter(|b| b.subtype == sub).count();
        println!("  {sub:?} sub-pattern: {n} studied bugs");
    }

    let r = region_study();
    println!("\nObservation 2: short recovery regions are naturally idempotent");
    println!(
        "  of {} bugs reproduced by prior tools, {} survive single-threaded \
         reexecution;",
        r.total, r.single_thread
    );
    println!(
        "  regions: {} idempotent, {} with I/O, {} with non-idempotent writes",
        r.idempotent, r.with_io, r.with_writes
    );

    println!("\nSource-tool mix of the reproduced-bug catalog:");
    let repro = reproduced_bugs();
    let mut tools: Vec<&str> = repro.iter().map(|b| b.source_tool).collect();
    tools.sort();
    tools.dedup();
    for tool in tools {
        let n = repro.iter().filter(|b| b.source_tool == tool).count();
        println!("  {tool}: {n} bugs");
    }

    println!(
        "\nOrder-violation recoverability: {} of {} — the reason ConAir \
         recovers 'about half' of order violations (Section 2.1)",
        order_bugs()
            .iter()
            .filter(|b| b.fails_in_thread_of_b)
            .count(),
        order_bugs().len()
    );
}
