//! Survival mode on a real benchmark: the MozillaXP order violation
//! (paper Figure 10), which needs inter-procedural recovery.
//!
//! ```sh
//! cargo run --release --example survive_hidden_bug
//! ```

use conair::Conair;
use conair_runtime::{run_scripted, MachineConfig, RunOutcome};
use conair_workloads::workload_by_name;

fn main() {
    let w = workload_by_name("MozillaXP").expect("registered workload");
    println!(
        "workload: {} ({}, {} — paper LOC {})",
        w.meta.name, w.meta.app_type, w.meta.cause, w.meta.paper_loc
    );

    // The unhardened program segfaults under the forced interleaving.
    let original = run_scripted(&w.program, &MachineConfig::default(), &w.bug_script, 1);
    match &original.outcome {
        RunOutcome::Failed(f) => println!("original: {} at step {}", f.msg, f.step),
        other => println!("original: {other:?}"),
    }

    // Survival-mode hardening: ConAir knows nothing about this bug.
    let hardened = Conair::survival().harden(&w.program);
    println!(
        "survival-mode analysis: {} sites identified, {} promoted \
         inter-procedurally, {} checkpoints inserted",
        hardened.plan.sites.len(),
        hardened.plan.stats.promoted_sites,
        hardened.plan.stats.static_points,
    );

    // 20 trials under the bug-forcing schedule: every one must recover.
    let mut total_retries = 0;
    for seed in 0..20 {
        let r = run_scripted(
            &hardened.program,
            &MachineConfig::default(),
            &w.bug_script,
            seed,
        );
        assert!(r.outcome.is_completed(), "seed {seed}: {:?}", r.outcome);
        w.verify_outputs(&r).expect("recovered output is correct");
        total_retries += r.stats.total_retries();
    }
    println!(
        "20/20 forced-bug runs recovered; mean retries per run: {}",
        total_retries / 20
    );
    println!(
        "(the paper reports >8000 retries for this bug — the failing thread \
         spins until InitThd publishes the object)"
    );
}
