//! Fix mode on the HawkNL deadlock (paper Figure 11): the developer knows
//! *where* the program hangs but not why; ConAir generates a safe temporary
//! patch from the failure site alone.
//!
//! ```sh
//! cargo run --release --example fix_known_deadlock
//! ```

use conair::Conair;
use conair_runtime::{run_scripted, MachineConfig, RunOutcome};
use conair_workloads::workload_by_name;

fn main() {
    let w = workload_by_name("HawkNL").expect("registered workload");
    println!(
        "workload: {} ({}, {})",
        w.meta.name, w.meta.app_type, w.meta.cause
    );

    // The original library deadlocks under the AB/BA interleaving.
    let original = run_scripted(&w.program, &MachineConfig::default(), &w.bug_script, 3);
    match original.outcome {
        RunOutcome::Hang { blocked_on_locks } => {
            println!("original: hang with {blocked_on_locks} threads in a circular wait")
        }
        other => println!("original: {other:?}"),
    }

    // Fix mode: the developers report the blocked lock acquisition. ConAir
    // turns it into a timed lock with rollback recovery — and statically
    // proves the *other* side's acquisition unrecoverable (the driver call
    // destroys its region), leaving it untouched, exactly as in the paper.
    let fixed = Conair::fix(w.fix_markers.clone()).harden(&w.program);
    println!(
        "fix-mode patch: {} site(s) hardened, {} timed lock(s), {} checkpoint(s)",
        fixed.plan.stats.recoverable_sites,
        fixed.transform.timed_locks,
        fixed.plan.stats.static_points,
    );

    for seed in 0..20 {
        let r = run_scripted(
            &fixed.program,
            &MachineConfig::default(),
            &w.bug_script,
            seed,
        );
        assert!(r.outcome.is_completed(), "seed {seed}: {:?}", r.outcome);
        w.verify_outputs(&r).expect("patched output is correct");
    }
    println!("20/20 forced-deadlock runs recovered under the fix-mode patch.");
    println!(
        "(recovery: the Shutdown thread's timed lock times out, compensation \
         releases its socket-table lock, Close finishes, Shutdown reexecutes)"
    );
}
