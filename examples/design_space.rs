//! Walks the Figure-4 reexecution-region design spectrum on the four
//! Figure-2 atomicity-violation patterns: the further right the policy,
//! the more patterns recover — and the more runtime support it costs.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use conair::{Conair, ConairConfig, RegionPolicy};
use conair_runtime::{run_scripted, MachineConfig};
use conair_workloads::{build_micro, AtomicityPattern};

fn main() {
    println!("pattern  | strict | compensated | buffered-writes");
    println!("---------+--------+-------------+----------------");
    for pattern in AtomicityPattern::ALL {
        let mut cells = Vec::new();
        for policy in RegionPolicy::ALL {
            let m = build_micro(pattern);
            let pipeline = Conair::with_config(ConairConfig {
                policy,
                ..ConairConfig::default()
            });
            let hardened = pipeline.harden(&m.program);
            let machine = MachineConfig {
                buffered_writes: policy == RegionPolicy::BufferedWrites,
                max_retries: 2_000,
                ..MachineConfig::default()
            };
            let r = run_scripted(&hardened.program, &machine, &m.bug_script, 0);
            let recovered =
                r.outcome.is_completed() && r.outputs_for(&m.expected.0) == m.expected.1;
            cells.push(if recovered { "yes" } else { "no " });
        }
        println!(
            "{:8} | {:6} | {:11} | {}",
            pattern.name(),
            cells[0],
            cells[1],
            cells[2]
        );
        // The expectation from paper Section 2.2: only RAW and WAR need
        // shared-write reexecution.
        assert_eq!(cells[1] == "yes", pattern.idempotent_recoverable());
        assert_eq!(cells[2], "yes");
    }
    println!();
    println!("Idempotent regions (ConAir's design point) recover WAW and RAR;");
    println!("RAW and WAR need the buffered-writes extension or a full restart —");
    println!("the trade-off sketched in Figure 4 of the paper.");
}
