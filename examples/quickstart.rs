//! Quickstart: build a tiny racy program, watch it fail, harden it with
//! ConAir, and watch it recover.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use conair::Conair;
use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};
use conair_runtime::{run_scripted, Gate, MachineConfig, Program, ScheduleScript};

fn main() {
    // 1. A classic order violation: the consumer asserts on a flag the
    //    producer sets late.
    let mut mb = ModuleBuilder::new("quickstart");
    let ready = mb.global("ready", 0);
    let payload = mb.global("payload", 0);

    let mut consumer = FuncBuilder::new("consumer", 0);
    let flag = consumer.load_global(ready);
    consumer.marker("consumer_read_ready");
    let ok = consumer.cmp(CmpKind::Ne, flag, 0);
    consumer.assert(ok, "producer must have published");
    let v = consumer.load_global(payload);
    consumer.output("consumed", v);
    consumer.ret();
    mb.function(consumer.finish());

    let mut producer = FuncBuilder::new("producer", 0);
    producer.marker("producer_about_to_publish");
    producer.store_global(payload, 42);
    producer.store_global(ready, 1);
    producer.ret();
    mb.function(producer.finish());

    let program = Program::from_entry_names(mb.finish(), &["consumer", "producer"]);

    // 2. Force the failure-inducing interleaving (the analog of the sleeps
    //    the ConAir paper injects): hold the producer until the consumer
    //    has already read the unset flag.
    let bug = ScheduleScript::with_gates(vec![Gate::new(
        1,
        "producer_about_to_publish",
        "consumer_read_ready",
    )]);

    let original = run_scripted(&program, &MachineConfig::default(), &bug, 0);
    println!(
        "original program under the buggy interleaving: {:?}",
        original.outcome
    );
    assert!(original.outcome.is_failure());

    // 3. Harden with survival-mode ConAir: no bug knowledge needed.
    let hardened = Conair::survival().harden(&program);
    println!(
        "ConAir identified {} potential failure sites and inserted {} checkpoints",
        hardened.plan.sites.len(),
        hardened.plan.stats.static_points,
    );

    // 4. The hardened program survives the exact same interleaving.
    let recovered = run_scripted(&hardened.program, &MachineConfig::default(), &bug, 0);
    println!(
        "hardened program under the same interleaving: {:?}",
        recovered.outcome
    );
    println!(
        "output: consumed = {:?} (rollbacks performed: {})",
        recovered.outputs_for("consumed"),
        recovered.stats.rollbacks,
    );
    assert!(recovered.outcome.is_completed());
    assert_eq!(recovered.outputs_for("consumed"), vec![42]);
    println!("recovered successfully — same semantics, no failure.");
}
