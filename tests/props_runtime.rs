//! Property-based tests over the runtime: determinism and the semantic
//! transparency of hardening on randomly generated two-thread programs.

use conair::Conair;
use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};
use conair_runtime::{run_once, MachineConfig, Program};
use proptest::prelude::*;

/// Generated shared-memory actions for one thread.
#[derive(Debug, Clone)]
enum Action {
    Compute(i64),
    Read(usize),
    Write(usize, i64),
    ReadPtr(usize),
    Output(usize),
    Assert(usize),
    LockedUpdate(usize),
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        any::<i64>().prop_map(Action::Compute),
        (0usize..6).prop_map(Action::Read),
        ((0usize..6), -100i64..100).prop_map(|(g, v)| Action::Write(g, v)),
        (0usize..6).prop_map(Action::ReadPtr),
        (0usize..6).prop_map(Action::Output),
        (0usize..6).prop_map(Action::Assert),
        (0usize..6).prop_map(Action::LockedUpdate),
    ]
}

/// Builds a two-thread program from per-thread action lists. All asserts
/// are tautological so any interleaving completes; each thread takes the
/// single lock in the same order so no deadlock is possible.
fn build_program(a: &[Action], b: &[Action]) -> Program {
    let mut mb = ModuleBuilder::new("gen2");
    let globals: Vec<_> = (0..6)
        .map(|i| mb.global(format!("g{i}"), i as i64))
        .collect();
    let lock = mb.lock("m");

    let mut emit = |name: &str, actions: &[Action]| {
        let mut fb = FuncBuilder::new(name, 0);
        let mut last = fb.copy(0i64);
        for act in actions {
            match act {
                Action::Compute(c) => last = fb.add(last, *c),
                Action::Read(g) => last = fb.load_global(globals[g % globals.len()]),
                Action::Write(g, v) => {
                    fb.store_global(globals[g % globals.len()], *v);
                }
                Action::ReadPtr(g) => {
                    let a = fb.addr_of_global(globals[g % globals.len()]);
                    last = fb.load_ptr(a);
                }
                Action::Output(g) => {
                    let v = fb.load_global(globals[g % globals.len()]);
                    fb.output(format!("{name}_out"), v);
                }
                Action::Assert(g) => {
                    let v = fb.load_global(globals[g % globals.len()]);
                    let c = fb.cmp(CmpKind::Eq, v, v);
                    fb.assert(c, "v == v");
                }
                Action::LockedUpdate(g) => {
                    fb.lock(lock);
                    let v = fb.load_global(globals[g % globals.len()]);
                    let v1 = fb.add(v, 1);
                    fb.store_global(globals[g % globals.len()], v1);
                    fb.unlock(lock);
                }
            }
        }
        fb.output(format!("{name}_last"), last);
        fb.ret();
        mb.function(fb.finish());
    };
    emit("ta", a);
    emit("tb", b);
    Program::from_entry_names(mb.finish(), &["ta", "tb"])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same program, same seed ⇒ bit-identical results.
    #[test]
    fn runs_are_deterministic(
        a in prop::collection::vec(action(), 0..40),
        b in prop::collection::vec(action(), 0..40),
        seed in any::<u64>(),
    ) {
        let p = build_program(&a, &b);
        let r1 = run_once(&p, &MachineConfig::default(), seed);
        let r2 = run_once(&p, &MachineConfig::default(), seed);
        prop_assert_eq!(&r1.outcome, &r2.outcome);
        prop_assert_eq!(&r1.outputs, &r2.outputs);
        prop_assert_eq!(r1.stats.steps, r2.stats.steps);
    }

    /// Generated programs always complete (no deadlock by construction,
    /// all asserts tautological, all dereferences valid).
    #[test]
    fn generated_programs_complete(
        a in prop::collection::vec(action(), 0..40),
        b in prop::collection::vec(action(), 0..40),
        seed in 0u64..1000,
    ) {
        let p = build_program(&a, &b);
        let r = run_once(&p, &MachineConfig::default(), seed);
        prop_assert!(r.outcome.is_completed(), "{:?}", r.outcome);
    }

    /// Hardening is semantically transparent on non-failing runs: the
    /// hardened program produces the same outputs as the original under
    /// the same schedule seed.
    #[test]
    fn hardening_preserves_benign_semantics(
        a in prop::collection::vec(action(), 0..40),
        b in prop::collection::vec(action(), 0..40),
        seed in 0u64..1000,
    ) {
        let p = build_program(&a, &b);
        let hardened = Conair::survival().harden(&p);
        let orig = run_once(&p, &MachineConfig::default(), seed);
        let hard = run_once(&hardened.program, &MachineConfig::default(), seed);
        prop_assert!(orig.outcome.is_completed());
        prop_assert!(hard.outcome.is_completed(), "{:?}", hard.outcome);
        // NOTE: the hardened run executes extra instructions, so the
        // interleaving of the two threads can differ — but each thread's
        // own output sequence is schedule-independent here only for its
        // *last* value when no cross-thread races target the same labels.
        // Compare per-thread output multisets of the race-free labels.
        for label in ["ta_last", "tb_last"] {
            prop_assert_eq!(
                orig.outputs_for(label).len(),
                hard.outputs_for(label).len(),
                "label {} count", label
            );
        }
        // Instruction overhead is non-negative and bounded by the
        // checkpoint count times a small constant.
        prop_assert!(hard.stats.insts >= orig.stats.insts);
    }

    /// Retry accounting: a program with no failure sites triggered performs
    /// zero rollbacks.
    #[test]
    fn no_failures_no_rollbacks(
        a in prop::collection::vec(action(), 0..40),
        seed in 0u64..1000,
    ) {
        let p = build_program(&a, &[]);
        let hardened = Conair::survival().harden(&p);
        let r = run_once(&hardened.program, &MachineConfig::default(), seed);
        prop_assert!(r.outcome.is_completed());
        prop_assert_eq!(r.stats.rollbacks, 0);
        prop_assert_eq!(r.stats.total_retries(), 0);
    }
}
