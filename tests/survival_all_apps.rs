//! The headline result (paper Table 3): every Table-2 workload fails under
//! its bug-forcing interleaving when unhardened, and always recovers —
//! with correct output — once hardened by survival-mode ConAir.

use conair::Conair;
use conair_runtime::{run_scripted, MachineConfig, RunOutcome};
use conair_workloads::{all_workloads, Symptom, Workload};

fn config() -> MachineConfig {
    MachineConfig {
        lock_timeout: 200,
        step_limit: 20_000_000,
        ..MachineConfig::default()
    }
}

/// The original program manifests its documented failure symptom.
fn assert_original_fails(w: &Workload, seed: u64) {
    let r = run_scripted(&w.program, &config(), &w.bug_script, seed);
    match (w.meta.symptom, &r.outcome) {
        (Symptom::Hang, RunOutcome::Hang { .. }) => {}
        (Symptom::Assertion, RunOutcome::Failed(f)) => {
            assert_eq!(
                f.kind,
                conair_ir::FailureKind::AssertionViolation,
                "{}: wrong failure kind",
                w.meta.name
            );
        }
        (Symptom::SegFault, RunOutcome::Failed(f)) => {
            assert_eq!(f.kind, conair_ir::FailureKind::SegFault, "{}", w.meta.name);
        }
        (Symptom::WrongOutput, RunOutcome::Failed(f)) => {
            // The oracle (developer-specified) detects the wrong output.
            assert_eq!(
                f.kind,
                conair_ir::FailureKind::WrongOutput,
                "{}",
                w.meta.name
            );
        }
        (sym, outcome) => panic!(
            "{}: expected {sym} failure, got {outcome:?} (seed {seed})",
            w.meta.name
        ),
    }
}

/// The hardened program completes with correct output under the same
/// forced interleaving.
fn assert_hardened_recovers(w: &Workload, seed: u64) {
    let hardened = Conair::survival().harden(&w.program);
    let r = run_scripted(&hardened.program, &config(), &w.bug_script, seed);
    assert!(
        r.outcome.is_completed(),
        "{}: hardened run must complete, got {:?} (seed {seed})",
        w.meta.name,
        r.outcome
    );
    w.verify_outputs(&r)
        .unwrap_or_else(|e| panic!("{}: {e} (seed {seed})", w.meta.name));
}

macro_rules! app_test {
    ($test_name:ident, $app:literal) => {
        #[test]
        fn $test_name() {
            let w = conair_workloads::workload_by_name($app).unwrap();
            for seed in 0..5 {
                assert_original_fails(&w, seed);
            }
            for seed in 0..5 {
                assert_hardened_recovers(&w, seed);
            }
        }
    };
}

app_test!(fft_fails_then_recovers, "FFT");
app_test!(hawknl_fails_then_recovers, "HawkNL");
app_test!(httrack_fails_then_recovers, "HTTrack");
app_test!(mozilla_xp_fails_then_recovers, "MozillaXP");
app_test!(mozilla_js_fails_then_recovers, "MozillaJS");
app_test!(mysql1_fails_then_recovers, "MySQL1");
app_test!(mysql2_fails_then_recovers, "MySQL2");
app_test!(transmission_fails_then_recovers, "Transmission");
app_test!(sqlite_fails_then_recovers, "SQLite");
app_test!(zsnes_fails_then_recovers, "ZSNES");

/// Fix mode — knowing only the failure site — also recovers every app.
#[test]
fn fix_mode_recovers_every_app() {
    for w in all_workloads() {
        let hardened = Conair::fix(w.fix_markers.clone()).harden(&w.program);
        let r = run_scripted(&hardened.program, &config(), &w.bug_script, 7);
        assert!(
            r.outcome.is_completed(),
            "{} (fix mode): {:?}",
            w.meta.name,
            r.outcome
        );
        w.verify_outputs(&r)
            .unwrap_or_else(|e| panic!("{} (fix mode): {e}", w.meta.name));
    }
}

/// Benign runs (the correct interleaving, as in the paper's overhead
/// methodology) complete correctly both before and after hardening —
/// ConAir never changes semantics.
#[test]
fn benign_runs_unchanged_by_hardening() {
    for w in all_workloads() {
        let orig = run_scripted(&w.program, &config(), &w.benign_script, 99);
        assert!(
            orig.outcome.is_completed(),
            "{} original benign: {:?}",
            w.meta.name,
            orig.outcome
        );
        let hardened = Conair::survival().harden(&w.program);
        let hard = run_scripted(&hardened.program, &config(), &w.benign_script, 99);
        assert!(
            hard.outcome.is_completed(),
            "{} hardened benign: {:?}",
            w.meta.name,
            hard.outcome
        );
        w.verify_outputs(&orig)
            .unwrap_or_else(|e| panic!("{} original: {e}", w.meta.name));
        w.verify_outputs(&hard)
            .unwrap_or_else(|e| panic!("{} hardened: {e}", w.meta.name));
    }
}
