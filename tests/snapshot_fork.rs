//! Differential property test for the prefix-sharing snapshot machinery:
//! restoring a [`MachineSnapshot`] captured at decision depth `d` and
//! running the suffix must be **byte-identical** to running the same
//! schedule from step zero — same `RunOutcome`, same outputs, same stats
//! and metric histograms (the inputs of `TrialSummary`), same
//! `DecisionTrace`. This is the property that lets `explore` resume
//! candidates from retained ancestors without changing any report field.

use conair_runtime::{
    FrontierScheduler, Machine, MachineConfig, MachineSnapshot, PointMask, RunResult,
};
use conair_workloads::workload_by_name;

/// The exploration bounds of `tests/exploration.rs`: hang-prone schedules
/// must terminate promptly.
fn machine() -> MachineConfig {
    MachineConfig {
        lock_timeout: 200,
        step_limit: 2_000_000,
        record_decisions: true,
        ..MachineConfig::default()
    }
}

/// Asserts two runs are byte-identical up to the legitimately differing
/// fields: the wall clocks (nondeterministic, including the snapshot
/// capture timer) and `metrics.snapshots_taken` (a resumed run inherits
/// the donor's capture count; the reference run captured nothing).
fn assert_identical(reference: &RunResult, forked: &RunResult, what: &str) {
    let mut a = reference.clone();
    let mut b = forked.clone();
    a.stats.wall = std::time::Duration::ZERO;
    b.stats.wall = std::time::Duration::ZERO;
    a.stats.snapshot_wall = std::time::Duration::ZERO;
    b.stats.snapshot_wall = std::time::Duration::ZERO;
    a.metrics.snapshots_taken = 0;
    b.metrics.snapshots_taken = 0;
    assert_eq!(a.outcome, b.outcome, "{what}: outcome");
    assert_eq!(a.outputs, b.outputs, "{what}: outputs");
    assert_eq!(a.decisions, b.decisions, "{what}: decision trace");
    assert_eq!(a.stats, b.stats, "{what}: stats");
    // Metrics carry the histograms TrialSummary folds (rollback latency,
    // lock waits, undo depth) — byte equality here is what makes
    // trial-level aggregation snapshot-agnostic.
    assert_eq!(a.metrics, b.metrics, "{what}: metrics");
}

fn run_forced(
    program: &conair_runtime::Program,
    config: MachineConfig,
    prefix: Vec<u32>,
    mask: PointMask,
) -> (RunResult, Vec<conair_runtime::Consult>) {
    let mut sched = FrontierScheduler::new(prefix, mask);
    let result = Machine::new(program, config).run(&mut sched);
    (result, sched.into_consults())
}

fn resume_forced(
    program: &conair_runtime::Program,
    config: MachineConfig,
    snap: &MachineSnapshot,
    depth: usize,
    prefix: Vec<u32>,
    mask: PointMask,
) -> RunResult {
    let mut sched = FrontierScheduler::resume(prefix, depth, mask);
    Machine::resume(program, config, snap).run(&mut sched)
}

/// The property, for one workload under one decision mask.
fn fork_matches_scratch(name: &str, mask: PointMask) {
    let w = workload_by_name(name).expect("registered workload");
    let config = machine();

    // One capturing run of the default (non-preemptive) schedule supplies
    // the snapshots; an uncaptured run of the same schedule is the
    // reference — capturing itself must not perturb execution.
    let mut cap_sched = FrontierScheduler::new(Vec::new(), mask);
    let (captured, snaps) = Machine::new(&w.program, config).run_captured(&mut cap_sched, 1, 64);
    let (reference, consults) = run_forced(&w.program, config, Vec::new(), mask);
    assert_identical(&reference, &captured, &format!("{name}: capture run"));
    let trace = reference.decisions.clone().expect("recorded");
    assert!(!snaps.is_empty(), "{name}: default run captured snapshots");

    // Resuming any snapshot and replaying the remaining recorded decisions
    // reproduces the reference run byte-for-byte.
    for (depth, snap) in &snaps {
        let forked = resume_forced(
            &w.program,
            config,
            snap,
            *depth,
            trace.decisions.clone(),
            mask,
        );
        assert_identical(
            &reference,
            &forked,
            &format!("{name}: resume at depth {depth}"),
        );
    }

    // Perturbed children: flip a decision at a branch point past the
    // snapshot, exactly how `explore` forks candidate schedules. The run
    // from the restored ancestor must match the run from step zero.
    let mut tested = 0usize;
    for (i, c) in consults.iter().enumerate() {
        if c.eligible.len() < 2 || i == 0 {
            continue;
        }
        let alt = *c
            .eligible
            .iter()
            .find(|&&t| t != c.chosen)
            .expect("two eligible threads");
        let mut prefix = trace.decisions[..i].to_vec();
        prefix.push(alt.index() as u32);
        let (scratch, _) = run_forced(&w.program, config, prefix.clone(), mask);
        let (depth, snap) = snaps
            .iter()
            .rev()
            .find(|(d, _)| *d <= i)
            .expect("ancestor snapshot at or below the branch");
        let forked = resume_forced(&w.program, config, snap, *depth, prefix, mask);
        assert_identical(
            &scratch,
            &forked,
            &format!("{name}: fork at decision {i} from depth {depth}"),
        );
        tested += 1;
        if tested >= 6 {
            break;
        }
    }
    assert!(tested > 0, "{name}: found branch points to fork at");
}

macro_rules! fork_test {
    ($test:ident, $name:literal) => {
        #[test]
        fn $test() {
            fork_matches_scratch($name, PointMask::SYNC);
            fork_matches_scratch($name, PointMask::SYNC_SHARED);
        }
    };
}

fork_test!(fft_forks_identically, "FFT");
fork_test!(sqlite_forks_identically, "SQLite");
fork_test!(hawknl_forks_identically, "HawkNL");
fork_test!(mozilla_js_forks_identically, "MozillaJS");
fork_test!(transmission_forks_identically, "Transmission");
