//! The parallel trial engine must be observationally identical to the
//! sequential one: `run_trials_parallel` merges per-seed results in seed
//! order, so every summary field except wall time matches
//! `run_trials` bit for bit, for any job count.

use conair::Conair;
use conair_runtime::{run_trials, run_trials_parallel, MachineConfig, TrialSummary};
use conair_workloads::all_workloads;

const TRIALS: usize = 8;
const SEED0: u64 = 1;

/// Everything in a [`TrialSummary`] except `wall`, which is the only
/// field allowed to differ between sequential and parallel execution.
fn deterministic_fields(
    s: &TrialSummary,
) -> (
    usize,
    usize,
    usize,
    usize,
    usize,
    f64,
    f64,
    Option<u64>,
    Vec<conair_runtime::Histogram>,
) {
    (
        s.trials,
        s.completed,
        s.failed,
        s.hung,
        s.step_limited,
        s.mean_insts,
        s.mean_retries,
        s.max_recovery_steps,
        vec![
            s.retries_hist.clone(),
            s.recovery_hist.clone(),
            s.checkpoints_hist.clone(),
            s.undo_depth_hist.clone(),
        ],
    )
}

#[test]
fn parallel_trials_match_sequential_over_catalog() {
    let machine = MachineConfig::default();
    let mut any_undo_samples = false;
    for w in all_workloads() {
        let hardened = Conair::survival().harden(&w.program);
        let seq = run_trials(&hardened.program, &machine, &w.bug_script, SEED0, TRIALS);
        assert_eq!(
            seq.checkpoints_hist.count(),
            TRIALS as u64,
            "{}: one checkpoint-count sample per trial",
            w.meta.name
        );
        any_undo_samples |= !seq.undo_depth_hist.is_empty();
        for jobs in [1usize, 4] {
            let par = run_trials_parallel(
                &hardened.program,
                &machine,
                &w.bug_script,
                SEED0,
                TRIALS,
                jobs,
            );
            assert_eq!(
                deterministic_fields(&seq),
                deterministic_fields(&par),
                "{}: jobs={jobs} diverged from sequential",
                w.meta.name
            );
        }
    }
    assert!(
        any_undo_samples,
        "bug-forcing trials must roll back somewhere in the catalog, \
         populating the undo-depth histogram"
    );
}

#[test]
fn parallel_trials_match_on_benign_schedules() {
    // Benign runs exercise the completed/zero-retry path of the merge.
    let machine = MachineConfig::default();
    for w in all_workloads() {
        let hardened = Conair::survival().harden(&w.program);
        let seq = run_trials(&hardened.program, &machine, &w.benign_script, SEED0, TRIALS);
        let par = run_trials_parallel(
            &hardened.program,
            &machine,
            &w.benign_script,
            SEED0,
            TRIALS,
            4,
        );
        assert_eq!(
            deterministic_fields(&seq),
            deterministic_fields(&par),
            "{}: benign parallel run diverged",
            w.meta.name
        );
        assert_eq!(
            par.completed, par.trials,
            "{}: benign runs must complete",
            w.meta.name
        );
    }
}
