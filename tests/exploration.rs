//! Schedule exploration closes the loop on the Table-2 catalog: every
//! workload's bug is found by searching the schedule space — *no gate
//! script* — within the budget documented in
//! `conair_workloads::explore_hint`, the found decision trace replays
//! bit-identically, and delta-debugging it yields a shorter-or-equal
//! trace that still fails.

use conair_runtime::{explore, minimize, run_replay, ExploreConfig, MachineConfig, RunOutcome};
use conair_workloads::{explore_hint, workload_by_name, WORKLOAD_NAMES};

/// Exploration bounds: hang-prone schedules must terminate promptly
/// (deadlocks surface as timed-out `Hang`s, runaways as `StepLimit`).
fn machine() -> MachineConfig {
    MachineConfig {
        lock_timeout: 200,
        step_limit: 2_000_000,
        ..MachineConfig::default()
    }
}

/// Candidate replays granted to the minimizer. Deliberately small: even
/// a tiny budget must produce a valid (real failing run) trace, the
/// shrink is best-effort within it.
const MINIMIZE_BUDGET: usize = 16;

fn hint_config(name: &str) -> ExploreConfig {
    let hint = explore_hint(name).expect("catalog workload has a hint");
    let mut ec = ExploreConfig::new(hint.strategy);
    ec.mask = hint.mask;
    ec.budget = hint.budget;
    ec.seed = hint.seed;
    ec
}

/// The acceptance path for one workload: explore → replay → minimize →
/// replay the minimized trace.
fn explore_finds_and_replays(name: &str) {
    let w = workload_by_name(name).expect("registered workload");
    let config = machine();
    let report = explore(&w.program, &config, &hint_config(name));
    let found = report.first_failure.unwrap_or_else(|| {
        panic!(
            "{name}: no failing schedule in {} (budget {})",
            report.strategy, report.budget
        )
    });
    assert!(found.outcome.is_failure(), "{name}: {:?}", found.outcome);

    // The recorded decision trace replays bit-identically: no
    // divergence, and the *same* RunOutcome value.
    let (replayed, divergence) = run_replay(&w.program, &config, &found.trace);
    assert_eq!(divergence, None, "{name}: replay diverged");
    assert_eq!(replayed.outcome, found.outcome, "{name}: replay drifted");

    // Minimization never grows the trace and still fails the same way
    // when replayed (it re-records, so the result is a real run's log).
    let min = minimize(&w.program, &config, &found.trace, MINIMIZE_BUDGET)
        .unwrap_or_else(|e| panic!("{name}: minimize failed: {e}"));
    assert_eq!(min.original_len, found.trace.len());
    assert!(
        min.minimized_len <= min.original_len,
        "{name}: minimization grew the trace ({} -> {})",
        min.original_len,
        min.minimized_len
    );
    assert_eq!(min.trace.len(), min.minimized_len);
    let (replayed, divergence) = run_replay(&w.program, &config, &min.trace);
    assert_eq!(divergence, None, "{name}: minimized replay diverged");
    assert!(
        replayed.outcome.is_failure(),
        "{name}: minimized trace no longer fails: {:?}",
        replayed.outcome
    );
    assert_eq!(
        replayed.outcome, min.outcome,
        "{name}: minimize misreported"
    );
}

macro_rules! catalog_test {
    ($test:ident, $name:literal) => {
        #[test]
        fn $test() {
            explore_finds_and_replays($name);
        }
    };
}

catalog_test!(finds_fft, "FFT");
catalog_test!(finds_hawknl, "HawkNL");
catalog_test!(finds_httrack, "HTTrack");
catalog_test!(finds_mozilla_xp, "MozillaXP");
catalog_test!(finds_mozilla_js, "MozillaJS");
catalog_test!(finds_mysql1, "MySQL1");
catalog_test!(finds_mysql2, "MySQL2");
catalog_test!(finds_transmission, "Transmission");
catalog_test!(finds_sqlite, "SQLite");
catalog_test!(finds_zsnes, "ZSNES");

#[test]
fn every_catalog_name_is_covered_above() {
    // Guards the macro list against catalog growth: a new workload must
    // document an exploration budget and get a finder test.
    assert_eq!(WORKLOAD_NAMES.len(), 10, "update tests/exploration.rs");
    for name in WORKLOAD_NAMES {
        assert!(explore_hint(name).is_some(), "no hint for {name}");
    }
}

#[test]
fn explorer_reports_are_job_count_invariant() {
    // The same search fanned over different worker counts must report
    // identical results (only the wall clock may differ) — the same
    // merge discipline `tests/parallel_trials.rs` enforces for trials.
    let config = machine();
    for name in ["HawkNL", "Transmission"] {
        let w = workload_by_name(name).expect("registered workload");
        let mut ec = hint_config(name);
        let baseline = explore(&w.program, &config, &ec).normalized();
        for jobs in [2, 3] {
            ec.jobs = jobs;
            let fanned = explore(&w.program, &config, &ec).normalized();
            assert_eq!(baseline, fanned, "{name}: --jobs {jobs} diverged");
        }
    }
}

#[test]
fn exhausting_budgets_counts_every_failure() {
    // keep_going mode: the full (tiny) budget runs, failure counts and
    // the first failure agree with the stop-at-first search.
    let w = workload_by_name("ZSNES").expect("registered workload");
    let config = machine();
    let mut ec = hint_config("ZSNES");
    let first = explore(&w.program, &config, &ec);
    ec.stop_at_first = false;
    let full = explore(&w.program, &config, &ec);
    assert!(full.schedules >= first.schedules);
    assert!(full.failures >= 1);
    assert_eq!(
        full.first_failure.as_ref().map(|f| f.index),
        first.first_failure.as_ref().map(|f| f.index),
    );
    let hang_free = matches!(
        full.first_failure.as_ref().map(|f| &f.outcome),
        Some(RunOutcome::Failed(_))
    );
    assert!(hang_free, "ZSNES fails by assertion, not hang");
}

#[test]
fn snapshot_cache_never_changes_the_report() {
    // The prefix-sharing snapshot tree is a pure perf layer: with the
    // cache on (default budget), off (budget 0), or fanned across
    // workers, every report field except the wall clock and the cache's
    // own perf counters must be bit-identical.
    let config = machine();
    for name in ["FFT", "SQLite"] {
        let w = workload_by_name(name).expect("registered workload");
        let mut ec = hint_config(name);
        ec.stop_at_first = false;
        let cached = explore(&w.program, &config, &ec);
        assert!(
            cached.snapshot_hits > 0,
            "{name}: bounded search resumes from retained ancestors"
        );
        assert!(
            cached.steps_saved > 0,
            "{name}: resumed suffixes skip steps"
        );

        ec.snapshot_budget = 0;
        let uncached = explore(&w.program, &config, &ec);
        assert_eq!(uncached.snapshots_taken, 0, "{name}: budget 0 disables");
        assert_eq!(uncached.snapshot_hits, 0);
        assert_eq!(uncached.steps_saved, 0);
        assert_eq!(
            cached.normalized(),
            uncached.normalized(),
            "{name}: cache on/off diverged"
        );
        ec.snapshot_budget = 256;

        // Cache *counters* are themselves jobs-invariant: lookups and
        // inserts happen on the exploring thread in schedule order.
        for jobs in [2, 4] {
            ec.jobs = jobs;
            let fanned = explore(&w.program, &config, &ec);
            assert_eq!(
                cached.normalized(),
                fanned.normalized(),
                "{name}: --jobs {jobs} diverged"
            );
            assert_eq!(
                (
                    cached.snapshots_taken,
                    cached.snapshot_hits,
                    cached.steps_saved
                ),
                (
                    fanned.snapshots_taken,
                    fanned.snapshot_hits,
                    fanned.steps_saved
                ),
                "{name}: --jobs {jobs} changed cache behavior"
            );
        }
        ec.jobs = 1;
    }
}
