//! Soundness tests: the properties that make ConAir's recovery *correct*,
//! demonstrated at runtime — program semantics are never changed.

use conair::Conair;
use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};
use conair_runtime::{run_scripted, Gate, MachineConfig, Program, ScheduleScript};

/// ConAir-hardened recovery produces outputs identical to a failure-free
/// run: the recovered execution is one the original program could have
/// produced (the paper's correctness property).
#[test]
fn recovered_outputs_equal_failure_free_outputs() {
    for w in conair_workloads::all_workloads() {
        let hardened = Conair::survival().harden(&w.program);
        let machine = MachineConfig {
            lock_timeout: 200,
            ..MachineConfig::default()
        };
        // Failure-free run of the ORIGINAL program (benign schedule).
        let clean = run_scripted(&w.program, &machine, &w.benign_script, 500);
        assert!(clean.outcome.is_completed());

        // Recovered run of the hardened program (bug-forcing schedule).
        let recovered = run_scripted(&hardened.program, &machine, &w.bug_script, 500);
        assert!(
            recovered.outcome.is_completed(),
            "{}: {:?}",
            w.meta.name,
            recovered.outcome
        );

        // Compare the *checked* outputs (the filler's unordered "trace"
        // outputs interleave differently by schedule, which the original
        // program also allows).
        for (label, _) in &w.expected {
            assert_eq!(
                clean.outputs_for(label),
                recovered.outputs_for(label),
                "{}: output `{label}` diverged",
                w.meta.name
            );
        }
    }
}

/// Rollback restores registers but never memory: a region that (wrongly)
/// contained a shared-memory increment would double-apply it. The analysis
/// prevents this by ending regions at shared writes — verified by
/// construction here: harden a program whose failure site follows a shared
/// write and check the write is NOT inside any region.
#[test]
fn regions_never_contain_shared_writes() {
    let mut mb = ModuleBuilder::new("m");
    let counter = mb.global("counter", 0);
    let flag = mb.global("flag", 0);
    let mut f = FuncBuilder::new("main", 0);
    // counter += 1 (a shared write), then an assert on flag.
    let c = f.load_global(counter);
    let c1 = f.add(c, 1);
    f.store_global(counter, c1);
    let v = f.load_global(flag);
    let ok = f.cmp(CmpKind::Ne, v, 0);
    f.assert(ok, "flag");
    f.ret();
    mb.function(f.finish());
    let module = mb.finish();

    let plan = Conair::survival().analyze(&module);
    let assert_site = plan
        .sites
        .iter()
        .find(|s| s.site.kind == conair_ir::FailureKind::AssertionViolation)
        .unwrap();
    // The checkpoint must sit AFTER the store (index 2), i.e. at inst 3.
    assert_eq!(assert_site.points.len(), 1);
    assert_eq!(assert_site.points[0].inst, 3);
}

/// The increment is applied exactly once even across many rollbacks —
/// because the region excludes it.
#[test]
fn shared_increment_applied_exactly_once_across_rollbacks() {
    let mut mb = ModuleBuilder::new("m");
    let counter = mb.global("counter", 0);
    let flag = mb.global("flag", 0);

    let mut f = FuncBuilder::new("worker", 0);
    f.marker("worker_started");
    let c = f.load_global(counter);
    let c1 = f.add(c, 1);
    f.store_global(counter, c1);
    let v = f.load_global(flag);
    let ok = f.cmp(CmpKind::Ne, v, 0);
    f.assert(ok, "flag");
    let fin = f.load_global(counter);
    f.output("counter", fin);
    f.ret();
    mb.function(f.finish());

    let mut setter = FuncBuilder::new("setter", 0);
    setter.marker("before_set");
    setter.store_global(flag, 1);
    setter.ret();
    mb.function(setter.finish());

    let program = Program::from_entry_names(mb.finish(), &["worker", "setter"]);
    let script = ScheduleScript::with_gates(vec![Gate::new(1, "before_set", "worker_started")]);
    let hardened = Conair::survival().harden(&program);

    for seed in 0..30 {
        let r = run_scripted(&hardened.program, &MachineConfig::default(), &script, seed);
        assert!(r.outcome.is_completed(), "seed {seed}: {:?}", r.outcome);
        assert_eq!(
            r.outputs_for("counter"),
            vec![1],
            "seed {seed}: increment must be applied exactly once \
             (rollbacks: {})",
            r.stats.rollbacks
        );
    }
}

/// Compensation releases only resources acquired in the current epoch —
/// a lock taken before the checkpoint survives rollback.
#[test]
fn compensation_spares_pre_region_locks() {
    use conair_ir::{GuardKind, Inst, Operand, PointId, SiteId};
    let mut mb = ModuleBuilder::new("m");
    let flag = mb.global("flag", 0);
    let outer = mb.lock("outer");

    // Hand-hardened: lock(outer); checkpoint; guard-until-flag; unlock.
    let mut f = FuncBuilder::new("worker", 0);
    f.marker("worker_started");
    f.lock(outer);
    f.push(Inst::Checkpoint { point: PointId(0) });
    let v = f.load_global(flag);
    let ok = f.cmp(CmpKind::Ne, v, 0);
    f.push(Inst::FailGuard {
        kind: GuardKind::Assert,
        cond: Operand::Reg(ok),
        site: SiteId(0),
        msg: "flag".into(),
    });
    f.unlock(outer);
    f.output("done", 1);
    f.ret();
    mb.function(f.finish());

    let mut setter = FuncBuilder::new("setter", 0);
    setter.marker("before_set");
    setter.store_global(flag, 1);
    setter.ret();
    mb.function(setter.finish());

    let program = Program::from_entry_names(mb.finish(), &["worker", "setter"]);
    let script = ScheduleScript::with_gates(vec![Gate::new(1, "before_set", "worker_started")]);
    let r = run_scripted(&program, &MachineConfig::default(), &script, 5);
    // If compensation wrongly released `outer` (acquired before the
    // checkpoint), the final unlock would be an unlock-not-held usage
    // error and the run would fail.
    assert!(r.outcome.is_completed(), "{:?}", r.outcome);
    assert_eq!(r.outputs_for("done"), vec![1]);
}

/// Fix mode changes nothing outside the named site: hardening one marker
/// leaves every other instruction byte-identical.
#[test]
fn fix_mode_is_minimal() {
    let w = conair_workloads::workload_by_name("ZSNES").unwrap();
    let fixed = Conair::fix(w.fix_markers.clone()).harden(&w.program);
    // Exactly one guard and its checkpoints were added.
    assert_eq!(fixed.transform.fail_guards, 1);
    assert_eq!(fixed.transform.ptr_guards, 0);
    assert_eq!(fixed.transform.timed_locks, 0);
    let delta = fixed.program.module.num_insts() - w.program.module.num_insts();
    assert!(
        delta <= fixed.plan.stats.static_points,
        "only checkpoints were inserted (guard is an in-place rewrite)"
    );
}
