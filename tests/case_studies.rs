//! Case studies from the paper's Section 6.1: the FFT (Figure 9),
//! MozillaXP (Figure 10) and HawkNL (Figure 11) recoveries, checked
//! mechanism-by-mechanism, not just end-to-end.

use conair::Conair;
use conair_ir::{FailureKind, Inst};
use conair_runtime::{run_scripted, MachineConfig};
use conair_workloads::workload_by_name;

fn machine() -> MachineConfig {
    MachineConfig {
        lock_timeout: 200,
        ..MachineConfig::default()
    }
}

/// Figure 9: the FFT recovery "only rolls back a few instructions" — the
/// checkpoint sits right before the End read, and the oracle guard
/// eventually observes the timer write.
#[test]
fn fft_checkpoint_is_near_the_oracle() {
    let w = workload_by_name("FFT").unwrap();
    let hardened = Conair::survival().harden(&w.program);
    let module = &hardened.program.module;
    let main = module.func_by_name("fft_main").unwrap();
    let func = module.func(main);

    // Locate the oracle guard and the nearest preceding checkpoint.
    let insts: Vec<&Inst> = func.blocks.iter().flat_map(|b| &b.insts).collect();
    let guard_idx = insts
        .iter()
        .position(|i| {
            matches!(
                i,
                Inst::FailGuard {
                    kind: conair_ir::GuardKind::WrongOutput,
                    ..
                }
            )
        })
        .expect("oracle hardened");
    let ckpt_idx = insts[..guard_idx]
        .iter()
        .rposition(|i| matches!(i, Inst::Checkpoint { .. }))
        .expect("checkpoint before the oracle");
    assert!(
        guard_idx - ckpt_idx <= 8,
        "reexecution region is a handful of instructions, got {}",
        guard_idx - ckpt_idx
    );

    // At runtime: recovery in a modest number of retries with correct
    // output.
    let r = run_scripted(&hardened.program, &machine(), &w.bug_script, 0);
    assert!(r.outcome.is_completed());
    w.verify_outputs(&r)
        .expect("outputs correct after recovery");
    let retries = r.stats.total_retries();
    assert!(
        retries >= 1,
        "the forced interleaving requires at least one rollback"
    );
}

/// Figure 10: MozillaXP requires inter-procedural recovery — the
/// reexecution point lives in `Get`, not in `GetState`.
#[test]
fn mozilla_xp_point_is_in_the_caller() {
    let w = workload_by_name("MozillaXP").unwrap();
    let hardened = Conair::survival().harden(&w.program);
    let module = &hardened.program.module;

    let get = module.func_by_name("Get").unwrap();
    let get_state = module.func_by_name("GetState").unwrap();

    let has_checkpoint = |f: conair_ir::FuncId| {
        module
            .func(f)
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Checkpoint { .. }))
    };
    assert!(has_checkpoint(get), "setjmp inserted inside Get");
    assert!(
        !has_checkpoint(get_state),
        "REintra removed from GetState (Section 4.3)"
    );
    // The dereference in GetState is still guarded.
    assert!(module
        .func(get_state)
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .any(|i| matches!(i, Inst::PtrGuard { .. })));

    // The site was recorded as promoted in the plan.
    let seg_site = hardened
        .plan
        .sites
        .iter()
        .find(|s| s.site.kind == FailureKind::SegFault && s.site.loc.func == get_state)
        .expect("the kernel dereference site");
    assert_eq!(seg_site.promoted_depth, Some(1));

    // Runtime: long recovery with thousands of retries (paper: >8000).
    let r = run_scripted(&hardened.program, &machine(), &w.bug_script, 0);
    assert!(r.outcome.is_completed());
    let retries = r.stats.total_retries();
    assert!(
        retries > 1_000,
        "MozillaXP recovery takes many retries (got {retries})"
    );
}

/// Figure 11: HawkNL — one side's acquisition is statically unrecoverable
/// (the driver call destroys its region) and stays a plain lock; the other
/// side gets the timed lock and recovers the deadlock by releasing `slock`.
#[test]
fn hawknl_asymmetric_hardening() {
    let w = workload_by_name("HawkNL").unwrap();
    let hardened = Conair::survival().harden(&w.program);
    let module = &hardened.program.module;

    let close = module.func_by_name("hawknl_close").unwrap();
    let shutdown = module.func_by_name("hawknl_shutdown").unwrap();

    let count = |f: conair_ir::FuncId, timed: bool| {
        module
            .func(f)
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| {
                if timed {
                    matches!(i, Inst::TimedLock { .. })
                } else {
                    matches!(i, Inst::Lock { .. })
                }
            })
            .count()
    };
    assert_eq!(
        count(close, true),
        0,
        "Close()'s acquisitions stay plain (unrecoverable, Figure 7a)"
    );
    assert_eq!(
        count(shutdown, true),
        1,
        "Shutdown()'s nested acquisition becomes a timed lock"
    );

    // Runtime: the deadlock resolves and both threads complete correctly.
    let r = run_scripted(&hardened.program, &machine(), &w.bug_script, 4);
    assert!(r.outcome.is_completed(), "{:?}", r.outcome);
    w.verify_outputs(&r).expect("both outputs correct");
    assert!(r.stats.rollbacks >= 1, "recovery used rollback");
}

/// Transmission is the second inter-procedural benchmark: its assert sits
/// in a helper whose parameter is the critical value.
#[test]
fn transmission_interprocedural_promotion() {
    let w = workload_by_name("Transmission").unwrap();
    let hardened = Conair::survival().harden(&w.program);
    assert!(
        hardened.plan.stats.promoted_sites >= 1,
        "the checkBandwidth assert is promoted"
    );
    let helper = hardened
        .program
        .module
        .func_by_name("checkBandwidth")
        .unwrap();
    let promoted = hardened
        .plan
        .sites
        .iter()
        .find(|s| s.site.loc.func == helper && s.promoted_depth.is_some())
        .expect("helper site promoted");
    let event_step = hardened.program.module.func_by_name("event_step").unwrap();
    assert!(
        promoted.points.iter().all(|p| p.func == event_step),
        "reexecution point lands in the caller event_step"
    );
}

/// MySQL2 is the paper's fastest recovery: a single retry.
#[test]
fn mysql2_recovers_in_one_retry() {
    let w = workload_by_name("MySQL2").unwrap();
    let hardened = Conair::survival().harden(&w.program);
    let r = run_scripted(&hardened.program, &machine(), &w.bug_script, 0);
    assert!(r.outcome.is_completed());
    assert_eq!(
        r.stats.total_retries(),
        1,
        "RAR violations vanish after a single reexecution (Section 6.3)"
    );
    w.verify_outputs(&r).expect("served exactly one query");
}
