//! Figure 2 / Section 2.2: which atomicity-violation patterns single-
//! threaded idempotent reexecution can recover, and why the others need
//! shared-write reexecution.

use conair::{Conair, ConairConfig, RegionPolicy};
use conair_runtime::{run_scripted, MachineConfig, RunOutcome};
use conair_workloads::{build_micro, AtomicityPattern, MicroWorkload};

fn machine(policy: RegionPolicy) -> MachineConfig {
    MachineConfig {
        buffered_writes: policy == RegionPolicy::BufferedWrites,
        max_retries: 2_000,
        step_limit: 2_000_000,
        ..MachineConfig::default()
    }
}

fn run_hardened(m: &MicroWorkload, policy: RegionPolicy, seed: u64) -> (RunOutcome, Vec<i64>) {
    let pipeline = Conair::with_config(ConairConfig {
        policy,
        ..ConairConfig::default()
    });
    let hardened = pipeline.harden(&m.program);
    let r = run_scripted(&hardened.program, &machine(policy), &m.bug_script, seed);
    let out = r.outputs_for(&m.expected.0);
    (r.outcome, out)
}

#[test]
fn originals_all_fail_under_forced_interleavings() {
    for pattern in AtomicityPattern::ALL {
        let m = build_micro(pattern);
        let r = run_scripted(
            &m.program,
            &machine(RegionPolicy::Compensated),
            &m.bug_script,
            0,
        );
        assert!(
            r.outcome.is_failure(),
            "{}: original must fail, got {:?}",
            pattern.name(),
            r.outcome
        );
    }
}

#[test]
fn waw_and_rar_recover_with_idempotent_regions() {
    for pattern in [AtomicityPattern::Waw, AtomicityPattern::Rar] {
        for seed in 0..10 {
            let m = build_micro(pattern);
            let (outcome, out) = run_hardened(&m, RegionPolicy::Compensated, seed);
            assert!(
                outcome.is_completed(),
                "{} seed {seed}: {:?}",
                pattern.name(),
                outcome
            );
            assert_eq!(out, m.expected.1, "{} seed {seed}", pattern.name());
        }
    }
}

#[test]
fn raw_and_war_do_not_recover_with_idempotent_regions() {
    // Section 2.2: "only RAW and WAR atomicity violations require
    // reexecuting shared-variable writes to recover."
    for pattern in [AtomicityPattern::Raw, AtomicityPattern::War] {
        let m = build_micro(pattern);
        let (outcome, out) = run_hardened(&m, RegionPolicy::Compensated, 0);
        let recovered = outcome.is_completed() && out == m.expected.1;
        assert!(
            !recovered,
            "{}: idempotent regions must NOT recover this pattern",
            pattern.name()
        );
    }
}

#[test]
fn buffered_writes_recover_all_four() {
    for pattern in AtomicityPattern::ALL {
        for seed in 0..5 {
            let m = build_micro(pattern);
            let (outcome, out) = run_hardened(&m, RegionPolicy::BufferedWrites, seed);
            assert!(
                outcome.is_completed(),
                "{} seed {seed}: {:?}",
                pattern.name(),
                outcome
            );
            assert_eq!(out, m.expected.1, "{} seed {seed}", pattern.name());
        }
    }
}

#[test]
fn recoverability_predicate_matches_behavior() {
    for pattern in AtomicityPattern::ALL {
        let m = build_micro(pattern);
        let (outcome, out) = run_hardened(&m, RegionPolicy::Compensated, 1);
        let recovered = outcome.is_completed() && out == m.expected.1;
        assert_eq!(
            recovered,
            pattern.idempotent_recoverable(),
            "{}: predicate/behavior mismatch",
            pattern.name()
        );
    }
}
