//! Static properties of each benchmark workload: the analysis must see in
//! each app exactly the structure its real-world counterpart is documented
//! to have (Sections 6.1.1–6.1.2).

use conair::Conair;
use conair_ir::FailureKind;
use conair_workloads::{all_workloads, workload_by_name, RootCause, Symptom, TABLE2};

#[test]
fn every_app_is_analyzable_and_hardenable() {
    for w in all_workloads() {
        let hardened = Conair::survival().harden(&w.program);
        assert!(
            conair_ir::validate_hardened(&hardened.program.module).is_ok(),
            "{}",
            w.meta.name
        );
        assert!(hardened.plan.stats.static_points > 0, "{}", w.meta.name);
        assert!(hardened.plan.stats.recoverable_sites > 0, "{}", w.meta.name);
    }
}

#[test]
fn deadlock_apps_have_recoverable_deadlock_sites() {
    for name in ["HawkNL", "MozillaJS", "SQLite"] {
        let w = workload_by_name(name).unwrap();
        let plan = Conair::survival().analyze(&w.program.module);
        let recoverable_deadlocks = plan
            .sites
            .iter()
            .filter(|s| s.site.kind == FailureKind::Deadlock && s.is_recoverable())
            .count();
        assert!(recoverable_deadlocks > 0, "{name}");
        // Time-out conversion happened for exactly those sites.
        let hardened = Conair::survival().harden(&w.program);
        assert_eq!(
            hardened.transform.timed_locks, recoverable_deadlocks,
            "{name}"
        );
    }
}

#[test]
fn only_the_interproc_apps_promote_kernel_sites() {
    for w in all_workloads() {
        let plan = Conair::survival().analyze(&w.program.module);
        let promoted = plan.stats.promoted_sites;
        if w.meta.needs_interproc {
            assert!(
                promoted >= 1,
                "{} needs inter-procedural recovery",
                w.meta.name
            );
        } else {
            assert_eq!(
                promoted, 0,
                "{} should not need inter-procedural recovery",
                w.meta.name
            );
        }
    }
}

#[test]
fn oracle_apps_use_output_oracles() {
    for w in all_workloads() {
        let has_oracle = w
            .program
            .module
            .iter_insts()
            .any(|(_, i)| matches!(i, conair_ir::Inst::OutputAssert { .. }));
        assert_eq!(
            has_oracle, w.meta.needs_oracle,
            "{}: oracle presence must match Table 3's conditional marker",
            w.meta.name
        );
    }
}

#[test]
fn symptom_causes_match_table_2() {
    // The registry metadata is the Table-2 row (no drift).
    for (w, row) in all_workloads().iter().zip(TABLE2.iter()) {
        assert_eq!(w.meta.name, row.name);
        assert_eq!(w.meta.symptom, row.symptom);
        assert_eq!(w.meta.cause, row.cause);
    }
    // Spot checks against the paper.
    assert_eq!(
        workload_by_name("FFT").unwrap().meta.cause,
        RootCause::AtomicityAndOrder
    );
    assert_eq!(
        workload_by_name("SQLite").unwrap().meta.symptom,
        Symptom::Hang
    );
    assert_eq!(
        workload_by_name("MySQL2").unwrap().meta.cause,
        RootCause::AtomicityViolation
    );
}

#[test]
fn fix_mode_hardens_exactly_the_kernel_site() {
    for w in all_workloads() {
        let fix = Conair::fix(w.fix_markers.clone()).harden(&w.program);
        let touched =
            fix.transform.fail_guards + fix.transform.ptr_guards + fix.transform.timed_locks;
        assert_eq!(
            touched,
            w.fix_markers.len(),
            "{}: fix mode hardens one site per reported marker",
            w.meta.name
        );
        assert!(
            fix.plan.stats.static_points <= 3,
            "{}: fix mode inserts a handful of points, got {}",
            w.meta.name,
            fix.plan.stats.static_points
        );
    }
}

#[test]
fn site_populations_scale_with_app_size() {
    // Order by total sites must roughly track the paper's ordering:
    // MySQL* largest, HawkNL smallest.
    let totals: Vec<(String, usize)> = all_workloads()
        .iter()
        .map(|w| {
            let plan = Conair::survival().analyze(&w.program.module);
            (w.meta.name.to_string(), plan.sites.len())
        })
        .collect();
    let get = |n: &str| totals.iter().find(|(name, _)| name == n).unwrap().1;
    assert!(get("MySQL1") > get("HTTrack"));
    assert!(get("MySQL2") > get("HTTrack"));
    assert!(get("HTTrack") > get("SQLite"));
    assert!(get("HawkNL") < get("FFT"));
    assert!(get("MozillaXP") > get("MozillaJS"));
}

#[test]
fn workload_builds_are_deterministic() {
    for name in ["FFT", "MySQL1", "HawkNL"] {
        let a = workload_by_name(name).unwrap();
        let b = workload_by_name(name).unwrap();
        assert_eq!(a.program.module, b.program.module, "{name}");
        assert_eq!(a.bug_script, b.bug_script, "{name}");
        assert_eq!(a.benign_script, b.benign_script, "{name}");
    }
}
