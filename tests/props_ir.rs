//! Property-based tests over the IR: printer/parser roundtrip, validation,
//! and analysis determinism on randomly generated modules.

use conair_ir::{parse_module, validate, BinOpKind, CmpKind, FuncBuilder, Module, ModuleBuilder};
use proptest::prelude::*;

/// A simple generated operation; indices are resolved modulo the available
/// resources so every generated module validates by construction.
#[derive(Debug, Clone)]
enum GenOp {
    Const(i64),
    Add(usize, usize),
    Mul(usize, usize),
    Xor(usize, usize),
    Cmp(usize, usize),
    LoadGlobal(usize),
    StoreGlobal(usize, usize),
    AddrDeref(usize, usize),
    StoreLocal(usize),
    LoadLocal,
    Output(usize),
    Assert(usize),
    Marker,
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        any::<i64>().prop_map(GenOp::Const),
        (0usize..64, 0usize..64).prop_map(|(a, b)| GenOp::Add(a, b)),
        (0usize..64, 0usize..64).prop_map(|(a, b)| GenOp::Mul(a, b)),
        (0usize..64, 0usize..64).prop_map(|(a, b)| GenOp::Xor(a, b)),
        (0usize..64, 0usize..64).prop_map(|(a, b)| GenOp::Cmp(a, b)),
        (0usize..8).prop_map(GenOp::LoadGlobal),
        (0usize..8, 0usize..64).prop_map(|(g, v)| GenOp::StoreGlobal(g, v)),
        (0usize..8, 0usize..4).prop_map(|(g, o)| GenOp::AddrDeref(g, o)),
        (0usize..64).prop_map(GenOp::StoreLocal),
        Just(GenOp::LoadLocal),
        (0usize..64).prop_map(GenOp::Output),
        (0usize..64).prop_map(GenOp::Assert),
        Just(GenOp::Marker),
    ]
}

/// Builds a single-function module from generated ops. All register
/// references are resolved modulo the set of already-defined registers,
/// and asserts are made always-true (`cmp eq r, r`), so the module both
/// validates and runs to completion.
fn build_module(ops: &[GenOp]) -> Module {
    let mut mb = ModuleBuilder::new("gen");
    let globals: Vec<_> = (0..8)
        .map(|i| mb.global_array(format!("g{i}"), 4, i as i64))
        .collect();
    let mut fb = FuncBuilder::new("main", 0);
    let slot = fb.local();
    fb.store_local(slot, 1);
    let mut regs = vec![fb.copy(0i64)];
    let pick = |regs: &Vec<conair_ir::Reg>, i: usize| regs[i % regs.len()];
    let mut marker_count = 0usize;
    for op in ops {
        match op {
            GenOp::Const(c) => regs.push(fb.copy(*c)),
            GenOp::Add(a, b) => {
                let (a, b) = (pick(&regs, *a), pick(&regs, *b));
                regs.push(fb.add(a, b));
            }
            GenOp::Mul(a, b) => {
                let (a, b) = (pick(&regs, *a), pick(&regs, *b));
                regs.push(fb.mul(a, b));
            }
            GenOp::Xor(a, b) => {
                let (a, b) = (pick(&regs, *a), pick(&regs, *b));
                regs.push(fb.binop(BinOpKind::Xor, a, b));
            }
            GenOp::Cmp(a, b) => {
                let (a, b) = (pick(&regs, *a), pick(&regs, *b));
                regs.push(fb.cmp(CmpKind::Le, a, b));
            }
            GenOp::LoadGlobal(g) => regs.push(fb.load_global(globals[g % globals.len()])),
            GenOp::StoreGlobal(g, v) => {
                let v = pick(&regs, *v);
                fb.store_global(globals[g % globals.len()], v);
            }
            GenOp::AddrDeref(g, off) => {
                let a = fb.addr_of_global(globals[g % globals.len()]);
                let p = fb.add(a, (*off % 4) as i64);
                regs.push(fb.load_ptr(p));
            }
            GenOp::StoreLocal(v) => {
                let v = pick(&regs, *v);
                fb.store_local(slot, v);
            }
            GenOp::LoadLocal => regs.push(fb.load_local(slot)),
            GenOp::Output(v) => {
                let v = pick(&regs, *v);
                fb.output("t", v);
            }
            GenOp::Assert(v) => {
                let r = pick(&regs, *v);
                let c = fb.cmp(CmpKind::Eq, r, r); // always true
                fb.assert(c, "r == r");
            }
            GenOp::Marker => {
                fb.marker(format!("m{marker_count}"));
                marker_count += 1;
            }
        }
    }
    fb.ret();
    mb.function(fb.finish());
    mb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated modules always validate.
    #[test]
    fn generated_modules_validate(ops in prop::collection::vec(gen_op(), 0..120)) {
        let m = build_module(&ops);
        prop_assert!(validate(&m).is_ok());
    }

    /// print → parse roundtrips to an identical module.
    #[test]
    fn print_parse_roundtrip(ops in prop::collection::vec(gen_op(), 0..120)) {
        let m = build_module(&ops);
        let text = m.to_string();
        let parsed = parse_module(&text)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}")))?;
        prop_assert_eq!(parsed, m);
    }

    /// The analysis is deterministic and its plan is internally consistent:
    /// checkpoints are exactly the union of surviving sites' points.
    #[test]
    fn analysis_deterministic_and_consistent(ops in prop::collection::vec(gen_op(), 0..120)) {
        use conair_analysis::{analyze, AnalysisConfig};
        let m = build_module(&ops);
        let a = analyze(&m, &AnalysisConfig::survival_defaults());
        let b = analyze(&m, &AnalysisConfig::survival_defaults());
        prop_assert_eq!(&a.checkpoints, &b.checkpoints);
        prop_assert_eq!(a.sites.len(), b.sites.len());

        let mut union: Vec<_> = a
            .sites
            .iter()
            .filter(|s| s.is_recoverable())
            .flat_map(|s| s.points.iter().copied())
            .collect();
        union.sort();
        union.dedup();
        prop_assert_eq!(union, a.checkpoints.clone());
    }

    /// Hardening any generated module yields a valid hardened module whose
    /// checkpoint count equals the plan's static points.
    #[test]
    fn hardening_preserves_validity(ops in prop::collection::vec(gen_op(), 0..120)) {
        use conair_analysis::{analyze, AnalysisConfig};
        use conair_ir::{validate_hardened, Inst};
        use conair_transform::harden;
        let m = build_module(&ops);
        let plan = analyze(&m, &AnalysisConfig::survival_defaults());
        let hardened = harden(m, &plan);
        prop_assert!(validate_hardened(&hardened.module).is_ok());
        let checkpoints = hardened
            .module
            .iter_insts()
            .filter(|(_, i)| matches!(i, Inst::Checkpoint { .. }))
            .count();
        prop_assert_eq!(checkpoints, plan.stats.static_points);
    }

    /// The optimization only ever removes points (monotonicity).
    #[test]
    fn optimization_is_monotone(ops in prop::collection::vec(gen_op(), 0..120)) {
        use conair_analysis::{analyze, AnalysisConfig};
        let m = build_module(&ops);
        let with = analyze(&m, &AnalysisConfig::survival_defaults());
        let mut cfg = AnalysisConfig::survival_defaults();
        cfg.optimize = false;
        let without = analyze(&m, &cfg);
        prop_assert!(with.stats.static_points <= without.stats.static_points);
        prop_assert!(with.stats.recoverable_sites <= without.stats.recoverable_sites);
    }
}
