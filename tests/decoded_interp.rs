//! Differential property test for the pre-decoded interpreter: executing
//! any schedule on the decoded instruction stream (fused superinstructions
//! and span execution included) must be **byte-identical** to executing it
//! on the legacy per-step `&Inst` walk — same [`RunOutcome`], same outputs,
//! same stats and metric histograms, same decision trace (hash included).
//! The oracle walk stays compiled in behind the `dense-oracle` feature for
//! exactly this comparison.

use conair_runtime::{
    run_scripted, FrontierScheduler, Machine, MachineConfig, PointMask, RunResult,
};
use conair_workloads::workload_by_name;

/// The exploration bounds of `tests/exploration.rs`: hang-prone schedules
/// must terminate promptly.
fn decoded_config() -> MachineConfig {
    MachineConfig {
        lock_timeout: 200,
        step_limit: 2_000_000,
        record_decisions: true,
        ..MachineConfig::default()
    }
}

/// Same bounds, but routed through the legacy `&Inst` interpreter walk.
fn oracle_config() -> MachineConfig {
    MachineConfig {
        dense_oracle: true,
        ..decoded_config()
    }
}

/// Asserts a decoded run and an oracle run are byte-identical up to the
/// wall clocks (the only nondeterministic fields).
fn assert_identical(decoded: &RunResult, oracle: &RunResult, what: &str) {
    let mut a = decoded.clone();
    let mut b = oracle.clone();
    a.stats.wall = std::time::Duration::ZERO;
    b.stats.wall = std::time::Duration::ZERO;
    a.stats.snapshot_wall = std::time::Duration::ZERO;
    b.stats.snapshot_wall = std::time::Duration::ZERO;
    assert_eq!(a.outcome, b.outcome, "{what}: outcome");
    assert_eq!(a.outputs, b.outputs, "{what}: outputs");
    assert_eq!(a.decisions, b.decisions, "{what}: decision trace");
    // The trace hash is what `explore`'s dedup and CI's report diffs key
    // on — pin it explicitly on top of the structural equality above.
    assert_eq!(
        a.decisions.as_ref().map(|t| t.hash()),
        b.decisions.as_ref().map(|t| t.hash()),
        "{what}: decision trace hash"
    );
    assert_eq!(a.stats, b.stats, "{what}: stats (steps, insts, rollbacks)");
    assert_eq!(a.metrics, b.metrics, "{what}: metrics");
}

/// Runs one forced schedule under both interpreters and compares.
fn diff_forced(
    program: &conair_runtime::Program,
    prefix: Vec<u32>,
    mask: PointMask,
    what: &str,
) -> (RunResult, Vec<conair_runtime::Consult>) {
    let mut sched = FrontierScheduler::new(prefix.clone(), mask);
    let decoded = Machine::new(program, decoded_config()).run(&mut sched);
    let consults = sched.into_consults();
    let mut sched = FrontierScheduler::new(prefix, mask);
    let oracle = Machine::new(program, oracle_config()).run(&mut sched);
    assert_identical(&decoded, &oracle, what);
    (decoded, consults)
}

/// The property, for one workload under one decision mask: the default
/// (non-preemptive) schedule plus a handful of single-preemption children
/// — the shapes `explore` executes — agree between interpreters. Narrow
/// masks exercise the tight span path and the fused superinstructions;
/// preempted children cross fused pairs at arbitrary boundaries.
fn masked_runs_agree(name: &str, mask: PointMask) {
    let w = workload_by_name(name).expect("registered workload");
    let (decoded, consults) =
        diff_forced(&w.program, Vec::new(), mask, &format!("{name}: default"));
    let trace = decoded.decisions.expect("recorded");

    let mut tested = 0usize;
    for (i, c) in consults.iter().enumerate() {
        if c.eligible.len() < 2 || i == 0 {
            continue;
        }
        let alt = *c
            .eligible
            .iter()
            .find(|&&t| t != c.chosen)
            .expect("two eligible threads");
        let mut prefix = trace.decisions[..i].to_vec();
        prefix.push(alt.index() as u32);
        diff_forced(
            &w.program,
            prefix,
            mask,
            &format!("{name}: preempt at decision {i}"),
        );
        tested += 1;
        if tested >= 4 {
            break;
        }
    }
    assert!(tested > 0, "{name}: found branch points to preempt at");
}

/// Scripted (gate-forced) seeded-random runs of the *hardened* program —
/// the consult-every-step ALL mask, the schedule-gate hold path, and (on
/// the bug script) checkpoint rollback recovery — agree between
/// interpreters, seed by seed.
fn scripted_runs_agree(name: &str) {
    let w = workload_by_name(name).expect("registered workload");
    let hardened = conair::Conair::survival().harden(&w.program);
    for seed in 0..3u64 {
        for (script, label) in [(&w.benign_script, "benign"), (&w.bug_script, "bug")] {
            let decoded = run_scripted(&hardened.program, &decoded_config(), script, seed);
            let oracle = run_scripted(&hardened.program, &oracle_config(), script, seed);
            assert_identical(
                &decoded,
                &oracle,
                &format!("{name}: {label} script, seed {seed}"),
            );
        }
    }
}

macro_rules! decoded_test {
    ($test:ident, $name:literal) => {
        #[test]
        fn $test() {
            masked_runs_agree($name, PointMask::SYNC);
            masked_runs_agree($name, PointMask::SYNC_SHARED);
            scripted_runs_agree($name);
        }
    };
}

decoded_test!(fft_decoded_matches_oracle, "FFT");
decoded_test!(sqlite_decoded_matches_oracle, "SQLite");
decoded_test!(hawknl_decoded_matches_oracle, "HawkNL");
decoded_test!(mozilla_js_decoded_matches_oracle, "MozillaJS");
decoded_test!(transmission_decoded_matches_oracle, "Transmission");
