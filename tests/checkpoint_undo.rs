//! Differential property test for the featherweight checkpoint: the
//! epoch-tagged register undo-log (`ThreadState::write_reg` +
//! `save_checkpoint`/`restore_checkpoint`) must restore thread state
//! register-for-register identically to the pre-undo-log full-clone
//! implementation, which is kept behind the `clone-oracle` feature
//! precisely for this comparison.
//!
//! The driver replays a random interleaving of register writes, nested
//! calls/returns, checkpoint saves and rollbacks against two threads:
//!
//! * the *real* thread goes through the logged write path and the O(1)
//!   save / undo-walk restore;
//! * the *shadow* thread uses raw register stores and the oracle's
//!   register-image clone on save and restore.
//!
//! After every operation the two must agree on every frame (registers,
//! stack slots, pc, depth) — including after rollbacks that truncate
//! nested call frames down to the checkpoint's `frame_depth`.
//!
//! One machine semantic is modeled explicitly: after a rollback the
//! interpreter resumes *at the checkpoint instruction*, which re-executes
//! the save (bumping the epoch) before any further register write. The
//! undo-log's epoch-tag dedup is only sound under that invariant, so the
//! driver re-saves on both threads immediately after each restore, exactly
//! as `Inst::Checkpoint` does.

use conair_ir::{FuncId, Function, Reg};
use conair_runtime::{CloneCheckpoint, Frame, ThreadId, ThreadState};
use proptest::prelude::*;

/// Register-file width of the root frame — wider than the 64-register
/// `written_mask` fast path, so the interleavings exercise both the
/// bit-mask and the epoch-tag dedup (and their interaction in one frame).
const ROOT_REGS: usize = 80;
/// Register-file width of callee frames.
const CALLEE_REGS: usize = 5;
/// Stack slots per frame.
const LOCALS: usize = 2;
/// Maximum call depth the generator will build.
const MAX_DEPTH: usize = 5;

/// One step of the random interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Write value to register (index modulo the frame's width) of the
    /// active frame.
    Write(usize, i64),
    /// Write a stack slot of the active frame (never checkpoint-protected).
    WriteLocal(usize, i64),
    /// Push a callee frame whose return value lands in the given register
    /// of the current frame.
    Call(usize),
    /// Pop the active frame, writing the return value into the caller.
    Ret(i64),
    /// Execute a checkpoint (the `setjmp`).
    Checkpoint,
    /// Roll back to the checkpoint, then re-execute it (the `longjmp`
    /// landing on the re-entered `setjmp`).
    Rollback,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0usize..ROOT_REGS), -1000i64..1000).prop_map(|(r, v)| Op::Write(r, v)),
        ((0usize..ROOT_REGS), -1000i64..1000).prop_map(|(r, v)| Op::Write(r, v)),
        ((0usize..ROOT_REGS), -1000i64..1000).prop_map(|(r, v)| Op::Write(r, v)),
        ((0usize..LOCALS), -1000i64..1000).prop_map(|(s, v)| Op::WriteLocal(s, v)),
        (0usize..ROOT_REGS).prop_map(Op::Call),
        (-1000i64..1000).prop_map(Op::Ret),
        Just(Op::Checkpoint),
        Just(Op::Rollback),
    ]
}

fn mk_thread() -> ThreadState {
    let mut f = Function::new("root", 2);
    f.num_regs = ROOT_REGS;
    f.num_locals = LOCALS;
    ThreadState::new(ThreadId(0), FuncId(0), &f, &[3, 14])
}

/// Frame-by-frame equality of the two threads.
fn assert_same(real: &ThreadState, shadow: &ThreadState, step: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        real.frames.len(),
        shadow.frames.len(),
        "frame depth diverged at step {}",
        step
    );
    for (i, (rf, sf)) in real.frames.iter().zip(&shadow.frames).enumerate() {
        prop_assert_eq!(
            &rf.regs,
            &sf.regs,
            "registers diverged at step {} frame {}",
            step,
            i
        );
        prop_assert_eq!(
            &rf.locals,
            &sf.locals,
            "locals diverged at step {} frame {}",
            step,
            i
        );
        prop_assert_eq!(rf.pc, sf.pc, "pc diverged at step {} frame {}", step, i);
    }
    Ok(())
}

/// The checkpoint frame depth currently pinned by an active checkpoint
/// (frames at or below this depth must not be popped while it is live —
/// the interpreter's checkpoint placement guarantees this).
fn pinned_depth(real: &ThreadState) -> usize {
    real.checkpoint.map(|cp| cp.frame_depth).unwrap_or(1)
}

/// Executes the checkpoint instruction on both threads: position the pc,
/// save through each implementation.
fn exec_checkpoint(real: &mut ThreadState, shadow: &mut ThreadState, pc: u32) -> CloneCheckpoint {
    real.top_mut().pc = pc + 1; // interpreter has advanced past the inst
    shadow.top_mut().pc = pc + 1;
    real.save_checkpoint();
    // The oracle snapshot also derives the resume pc as `pc - 1`.
    shadow.clone_oracle_save()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn undo_log_restore_matches_full_clone_oracle(ops in proptest::collection::vec(op(), 0..120)) {
        let mut real = mk_thread();
        let mut shadow = mk_thread();
        let mut oracle: Option<CloneCheckpoint> = None;
        let mut pc_counter = 0u32;
        let mut rollbacks = 0usize;

        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Write(r, v) => {
                    let width = real.top().regs.len();
                    let reg = Reg((*r % width) as u32);
                    real.write_reg(reg, *v);
                    shadow.top_mut().regs[reg.index()] = *v;
                }
                Op::WriteLocal(s, v) => {
                    real.top_mut().locals[*s] = *v;
                    shadow.top_mut().locals[*s] = *v;
                }
                Op::Call(dst) => {
                    if real.frames.len() >= MAX_DEPTH {
                        continue;
                    }
                    let width = real.top().regs.len();
                    let ret_dst = Some(Reg((*dst % width) as u32));
                    let args = [real.top().regs[0]];
                    real.frames.push(Frame::with_sizes(
                        FuncId(1), CALLEE_REGS, LOCALS, &args, ret_dst,
                    ));
                    shadow.frames.push(Frame::with_sizes(
                        FuncId(1), CALLEE_REGS, LOCALS, &args, ret_dst,
                    ));
                }
                Op::Ret(v) => {
                    // Never pop the root frame, and never pop the frame an
                    // active checkpoint is pinned to (the interpreter's
                    // checkpoint placement guarantees checkpoints dominate
                    // their failure sites within the frame).
                    if real.frames.len() <= pinned_depth(&real) {
                        continue;
                    }
                    let cp_before = real.checkpoint;
                    let fin_real = real.pop_frame();
                    let fin_shadow = shadow.frames.pop().expect("guarded above");
                    prop_assert_eq!(fin_real.ret_dst, fin_shadow.ret_dst);
                    // The guard means this pop never retires the checkpoint.
                    prop_assert_eq!(real.checkpoint, cp_before);
                    if let Some(dst) = fin_real.ret_dst {
                        // The return-value write lands in the (possibly
                        // checkpoint-pinned) caller frame: through the
                        // logged path on the real thread, raw on the
                        // shadow.
                        real.write_reg(dst, *v);
                        shadow.top_mut().regs[dst.index()] = *v;
                    }
                }
                Op::Checkpoint => {
                    pc_counter += 1;
                    oracle = Some(exec_checkpoint(&mut real, &mut shadow, pc_counter));
                }
                Op::Rollback => {
                    let Some(cp) = oracle.clone() else { continue };
                    prop_assert!(real.restore_checkpoint(), "checkpoint exists");
                    shadow.clone_oracle_restore(&cp);
                    rollbacks += 1;
                    assert_same(&real, &shadow, step)?;
                    // The interpreter resumes at the checkpoint
                    // instruction, which re-executes the save before any
                    // further write — the invariant the epoch-tag dedup
                    // relies on.
                    let resume_pc = real.top().pc;
                    oracle = Some(exec_checkpoint(&mut real, &mut shadow, resume_pc));
                }
            }
            assert_same(&real, &shadow, step)?;
        }

        // Final drain: one last rollback when a checkpoint is live, so
        // every generated case ends on a restored state comparison.
        if let Some(cp) = oracle {
            prop_assert!(real.restore_checkpoint());
            shadow.clone_oracle_restore(&cp);
            rollbacks += 1;
            assert_same(&real, &shadow, ops.len())?;
        }
        prop_assert_eq!(real.stats.rollbacks as usize, rollbacks);
    }

    #[test]
    fn rollback_dense_decoded_matches_dense_oracle(seed in 0u64..32) {
        // Machine-level rollback differential: the rollback-dense stress
        // program (guard failures forcing a checkpoint restore and
        // re-execution every few steps) must produce a byte-identical
        // RunResult on the pre-decoded interpreter and on the legacy
        // per-step `&Inst` walk (`MachineConfig::dense_oracle`) — the
        // undo-log exercised end-to-end through both dispatch paths.
        use conair_runtime::{run_once, MachineConfig};
        use conair_workloads::rollback_dense_program;
        let program = rollback_dense_program(80, 200, 4);
        let decoded = run_once(&program, &MachineConfig::default(), seed);
        let oracle = run_once(
            &program,
            &MachineConfig { dense_oracle: true, ..MachineConfig::default() },
            seed,
        );
        prop_assert_eq!(decoded.stats.rollbacks, 200 * 3, "rollbacks happened");
        let (mut a, mut b) = (decoded, oracle);
        a.stats.wall = std::time::Duration::ZERO;
        b.stats.wall = std::time::Duration::ZERO;
        a.stats.snapshot_wall = std::time::Duration::ZERO;
        b.stats.snapshot_wall = std::time::Duration::ZERO;
        prop_assert_eq!(&a.outcome, &b.outcome);
        prop_assert_eq!(&a.outputs, &b.outputs);
        prop_assert_eq!(&a.stats, &b.stats);
        prop_assert_eq!(&a.metrics, &b.metrics);
    }

    #[test]
    fn undo_depth_is_bounded_by_registers_written(
        writes in proptest::collection::vec(((0usize..ROOT_REGS), -50i64..50), 1..200)
    ) {
        // However many times the epoch writes, the log holds at most one
        // record per distinct register — the epoch-tag dedup at work.
        let mut t = mk_thread();
        t.top_mut().pc = 1;
        t.save_checkpoint();
        let mut distinct = std::collections::HashSet::new();
        for (r, v) in &writes {
            t.write_reg(Reg(*r as u32), *v);
            distinct.insert(*r);
        }
        prop_assert_eq!(t.undo_depth(), distinct.len());
        prop_assert!(t.restore_checkpoint());
        prop_assert_eq!(&t.top().regs[..2], &[3i64, 14][..]);
        prop_assert!(t.top().regs[2..].iter().all(|&v| v == 0));
    }
}
