//! Shape assertions over the evaluation experiments — the claims
//! EXPERIMENTS.md records, checked mechanically at reduced trial counts.

use conair_bench::{experiments, BenchConfig};
use conair_workloads::WORKLOAD_NAMES;

fn tiny() -> BenchConfig {
    BenchConfig {
        trials: 3,
        overhead_trials: 2,
        seed0: 1,
        ..BenchConfig::default()
    }
}

#[test]
fn table2_covers_all_apps() {
    let rows = experiments::table2();
    assert_eq!(rows.len(), 10);
    for (row, name) in rows.iter().zip(WORKLOAD_NAMES) {
        assert_eq!(row.app, name);
        assert!(row.module_insts > 0);
    }
}

#[test]
fn table3_all_recover_under_one_percent() {
    let rows = experiments::table3(&tiny());
    for r in &rows {
        assert!(r.fix_recovered, "{} fix-mode recovery", r.app);
        assert!(r.survival_recovered, "{} survival-mode recovery", r.app);
        assert!(
            r.fix_overhead < 0.001,
            "{}: fix overhead {:.4}",
            r.app,
            r.fix_overhead
        );
        assert!(
            r.survival_overhead < 0.01,
            "{}: survival overhead {:.4} exceeds the paper's <1%",
            r.app,
            r.survival_overhead
        );
    }
    // The two oracle-conditional apps are flagged.
    let conditional: Vec<&str> = rows
        .iter()
        .filter(|r| r.conditional)
        .map(|r| r.app)
        .collect();
    assert_eq!(conditional, vec!["FFT", "MySQL1"]);
}

#[test]
fn table4_segfaults_dominate_large_apps() {
    let rows = experiments::table4();
    for r in rows.iter().filter(|r| r.total() >= 100) {
        assert!(
            r.seg_fault > r.assertion && r.seg_fault > r.deadlock,
            "{}: segfault sites should dominate",
            r.app
        );
    }
    // MySQL rows are the largest; HawkNL the smallest.
    let total = |name: &str| rows.iter().find(|r| r.app == name).unwrap().total();
    assert!(total("MySQL1") > total("HTTrack"));
    assert!(total("HawkNL") < total("FFT"));
    // Deadlock sites only in the three deadlock apps (plus MySQL filler).
    for name in ["HawkNL", "MozillaJS", "SQLite"] {
        assert!(total(name) > 0);
        assert!(
            rows.iter().find(|r| r.app == name).unwrap().deadlock > 0,
            "{name} has recoverable deadlock sites"
        );
    }
}

#[test]
fn table5_fix_mode_is_tiny() {
    let rows = experiments::table5(&tiny());
    for r in &rows {
        assert!(
            r.fix_static <= 3,
            "{}: fix mode inserts a handful of points, got {}",
            r.app,
            r.fix_static
        );
        assert!(r.fix_static <= r.survival_static);
        assert!(r.fix_dynamic <= r.survival_dynamic.max(1));
        assert!(r.survival_static > 0);
    }
}

#[test]
fn table6_deadlock_optimization_strong() {
    let rows = experiments::table6(&tiny());
    for r in &rows {
        if let Some(dl) = r.deadlock_static {
            assert!(
                (0.3..=1.0).contains(&dl),
                "{}: deadlock optimization {:.2} outside the paper's 30-100% band",
                r.app,
                dl
            );
        }
        if let Some(nd) = r.non_deadlock_static {
            assert!(nd < 0.6, "{}: non-deadlock optimization {:.2}", r.app, nd);
        }
    }
    // MySQL deadlock optimization ~88-91%.
    let mysql = rows.iter().find(|r| r.app == "MySQL2").unwrap();
    assert!(mysql.deadlock_static.unwrap() > 0.85);
}

#[test]
fn table7_recovery_beats_restart() {
    let rows = experiments::table7(&tiny());
    for r in &rows {
        assert!(
            r.recovery_steps < r.restart_steps,
            "{}: recovery ({} steps) must beat restart ({} steps)",
            r.app,
            r.recovery_steps,
            r.restart_steps
        );
        assert!(r.retries >= 1, "{}: the forced bug requires retries", r.app);
    }
    // MySQL2 is the fastest recovery (RAR, one retry); MozillaXP the
    // slowest with thousands of retries.
    let by = |name: &str| rows.iter().find(|r| r.app == name).unwrap();
    assert_eq!(by("MySQL2").retries, 1);
    assert!(by("MozillaXP").retries > 1_000);
    assert!(by("MozillaXP").recovery_steps > by("MySQL2").recovery_steps);
}

#[test]
fn figure2_matches_section_2_2() {
    use conair::RegionPolicy;
    let cells = experiments::figure2(&tiny());
    for c in &cells {
        assert!(
            c.original_fails,
            "{}: forced bug must fail",
            c.pattern.name()
        );
        let expected = match c.policy {
            RegionPolicy::BufferedWrites => true,
            _ => c.pattern.idempotent_recoverable(),
        };
        assert_eq!(
            c.recovered,
            expected,
            "{} under {}",
            c.pattern.name(),
            c.policy.name()
        );
    }
}

#[test]
fn figure4_coverage_monotone_along_spectrum() {
    let points = experiments::figure4(&tiny());
    assert_eq!(points.len(), 4);
    // Coverage never decreases moving right along the spectrum.
    for pair in points.windows(2) {
        assert!(
            pair[0].patterns_recovered <= pair[1].patterns_recovered,
            "{} -> {}",
            pair[0].label,
            pair[1].label
        );
    }
    // The buffered-writes point pays measurably more overhead than the
    // idempotent points.
    assert!(points[2].mean_overhead > points[1].mean_overhead * 2.0);
    // Restart recovers everything but more slowly than in-place recovery.
    assert_eq!(points[3].patterns_recovered, 4);
    assert!(points[3].mean_recovery_steps.unwrap() > points[1].mean_recovery_steps.unwrap());
}
