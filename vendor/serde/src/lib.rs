//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal serde: instead of the visitor-based `Serializer`/`Deserializer`
//! machinery, types serialize into a concrete [`Value`] tree (the JSON data
//! model) and deserialize back out of one. The derive macros in
//! `serde_derive` generate the same externally-tagged representation real
//! serde uses with JSON, so swapping the real crates back in later is a
//! drop-in change for everything this workspace persists.

#![warn(rust_2018_idioms)]

// Let the derive-generated `serde::...` paths resolve inside this crate's
// own tests.
// Lets derive-generated `serde::` paths resolve inside this crate's own
// tests; the lint can't see through the macro expansion.
#[allow(unused_extern_crates)]
extern crate self as serde;

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped tree.
///
/// Objects preserve insertion order (serde_json's `preserve_order`
/// behavior), which keeps exported reports diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key`, for objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The element at `index`, for arrays.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The array items, when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object entries, when this is an object.
    pub fn as_object_slice(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The string content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as `i64`, when losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(*other as i64)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// A (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// This value as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns an error when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- helpers the derive macro generates calls to ---------------------------

/// Looks up a field in an object's entries (derive-macro support).
///
/// # Errors
///
/// Errors when the field is absent.
pub fn field<'a>(pairs: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Splits an externally-tagged enum value `{ "Tag": inner }` into
/// `(tag, inner)` (derive-macro support).
pub fn variant(v: &Value) -> Option<(&str, &Value)> {
    match v {
        Value::Object(pairs) if pairs.len() == 1 => Some((pairs[0].0.as_str(), &pairs[0].1)),
        _ => None,
    }
}

/// Checks an array value has exactly `n` elements (derive-macro support).
///
/// # Errors
///
/// Errors on non-arrays and wrong lengths.
pub fn elements(v: &Value, n: usize) -> Result<&[Value], Error> {
    match v {
        Value::Array(items) if items.len() == n => Ok(items),
        Value::Array(items) => Err(Error::custom(format!(
            "expected {n} elements, found {}",
            items.len()
        ))),
        _ => Err(Error::custom("expected array")),
    }
}

// --- impls for std types ---------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::custom("expected integer"))?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_ser_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let u = *self as u64;
                if u <= i64::MAX as u64 { Value::Int(u as i64) } else { Value::UInt(u) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::custom("expected number"))? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            Ok(Some(T::from_value(v)?))
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(v)?.into())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const N: usize = 0 $(+ { let _ = $n; 1 })+;
                let items = elements(v, N)?;
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )+};
}

impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object_slice()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object_slice()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::Int(self.as_secs() as i64)),
            ("nanos".to_string(), Value::Int(self.subsec_nanos() as i64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs = v
            .as_object_slice()
            .ok_or_else(|| Error::custom("expected duration object"))?;
        let secs = u64::from_value(field(pairs, "secs")?)?;
        let nanos = u32::from_value(field(pairs, "nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Array(vec![Value::Str("x".into())])),
        ]);
        assert_eq!(v["a"], 1i64);
        assert_eq!(v["b"][0], "x");
        assert!(v["missing"].is_null());
        assert_eq!(v["b"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn std_roundtrips() {
        let v = vec![(1u64, Some("x".to_string())), (2, None)];
        let tree = v.to_value();
        let back: Vec<(u64, Option<String>)> = Deserialize::from_value(&tree).unwrap();
        assert_eq!(back, v);

        let d = Duration::new(3, 500);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn derive_struct_roundtrip() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Point {
            x: i64,
            y: Option<u64>,
            tags: Vec<String>,
        }
        let p = Point {
            x: -4,
            y: Some(9),
            tags: vec!["a".into()],
        };
        let back = Point::from_value(&p.to_value()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn derive_enum_roundtrip() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        enum Shape {
            Unit,
            New(u64),
            Pair(i64, i64),
            Named { w: u64, h: u64 },
        }
        for s in [
            Shape::Unit,
            Shape::New(7),
            Shape::Pair(-1, 2),
            Shape::Named { w: 3, h: 4 },
        ] {
            let back = Shape::from_value(&s.to_value()).unwrap();
            assert_eq!(back, s);
        }
        assert_eq!(Shape::Unit.to_value(), Value::Str("Unit".into()));
    }

    #[test]
    fn derive_tuple_struct() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Id(u32);
        assert_eq!(Id(5).to_value(), Value::Int(5));
        assert_eq!(Id::from_value(&Value::Int(5)).unwrap(), Id(5));
    }
}
