//! Offline, API-compatible subset of `serde_json`.
//!
//! Emits and parses JSON against the vendored `serde::Value` data model.
//! Covers the surface this workspace uses: `to_string`, `to_string_pretty`,
//! `from_str`, and the indexable [`Value`] tree.

#![warn(rust_2018_idioms)]

use std::fmt::Write as _;

pub use serde::Error;
/// The JSON value tree (re-exported from the vendored serde data model).
pub use serde::Value;

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never errors in practice (kept fallible for API compatibility).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never errors in practice (kept fallible for API compatibility).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Errors on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

// --- emitter ---------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep a decimal point so floats stay floats on re-parse.
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::custom(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("con\"air".into())),
            ("n".into(), Value::Int(-3)),
            ("f".into(), Value::Float(0.25)),
            (
                "xs".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v: Value = from_str(r#"{"s": "a\nbA", "big": 10000000000, "f": 1.5e3}"#).unwrap();
        assert_eq!(v["s"], "a\nbA");
        assert_eq!(v["big"], 10_000_000_000i64);
        assert_eq!(v["f"].as_f64(), Some(1500.0));
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn whole_floats_stay_floats() {
        let text = to_string(&Value::Float(2.0)).unwrap();
        assert_eq!(text, "2.0");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back.as_f64(), Some(2.0));
    }
}
