//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand` it actually uses: a deterministic,
//! seedable small RNG plus `gen_range`/`gen_bool`. The generator is an
//! xorshift64* mixed through splitmix64 — statistically fine for schedule
//! jitter and backoff, and fully reproducible from a `u64` seed, which is
//! the only property the interpreter relies on.

#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u64, u32, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i64, i32);

/// Convenience sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64* over a
    /// splitmix64-expanded seed).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            // Expand through splitmix so nearby seeds diverge immediately;
            // avoid the all-zero xorshift fixed point.
            let state = splitmix64(&mut s) | 1;
            Self { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = SmallRng::seed_from_u64(seed);
            (0..16).map(|_| r.gen_range(0u64..100)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(0usize..5);
            assert!(v < 5);
            let w = r.gen_range(0u64..=24);
            assert!(w <= 24);
            let x = r.gen_range(-10i64..10);
            assert!((-10..10).contains(&x));
        }
    }

    #[test]
    fn inclusive_covers_endpoints() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
