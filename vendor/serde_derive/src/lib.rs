//! Derive macros for the vendored serde subset.
//!
//! Generates `serde::Serialize`/`serde::Deserialize` impls against the
//! concrete `serde::Value` data model. The item's token stream is parsed by
//! hand (no `syn`/`quote` — the build environment is offline), which is
//! enough for the shapes this workspace uses: non-generic structs (named,
//! tuple, unit) and enums with unit/tuple/struct variants, matching real
//! serde's externally-tagged JSON representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    let shape = parse_shape(item);
    gen_serialize(&shape)
        .parse()
        .expect("generated impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    let shape = parse_shape(item);
    gen_deserialize(&shape)
        .parse()
        .expect("generated impl parses")
}

// --- item model ------------------------------------------------------------

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Shape {
    name: String,
    kind: Kind,
}

// --- parsing ---------------------------------------------------------------

fn parse_shape(item: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types (deriving for `{name}`)");
    }
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_struct_body(&tokens, &mut i)),
        "enum" => Kind::Enum(parse_enum_body(&tokens, &mut i)),
        other => panic!("serde shim derive supports structs and enums, found `{other}`"),
    };
    Shape { name, kind }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            _ => panic!("malformed attribute"),
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

fn parse_struct_body(tokens: &[TokenTree], i: &mut usize) -> Fields {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("unexpected struct body: {other:?}"),
    }
}

/// Field names of a named-field body (struct or enum-variant braces).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        fields.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Number of fields in a tuple body `( ... )`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        count += 1;
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

/// Consumes a type (or any expression) up to the next top-level comma,
/// tracking angle-bracket depth so `Map<K, V>` stays one item.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_enum_body(tokens: &[TokenTree], i: &mut usize) -> Vec<Variant> {
    let body = match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("expected enum body, found {other:?}"),
    };
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&tokens, &mut i);
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// --- code generation -------------------------------------------------------

fn ser_named_object(fields: &[String], access_prefix: &str) -> String {
    let mut s = String::from("serde::Value::Object(vec![");
    for f in fields {
        let _ = write!(
            s,
            "(::std::string::String::from(\"{f}\"), serde::Serialize::to_value(&{access_prefix}{f})),"
        );
    }
    s.push_str("])");
    s
}

fn gen_serialize(shape: &Shape) -> String {
    let name = &shape.name;
    let body = match &shape.kind {
        Kind::Struct(Fields::Named(fields)) => ser_named_object(fields, "self."),
        Kind::Struct(Fields::Tuple(1)) => "serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let mut s = String::from("serde::Value::Array(vec![");
            for k in 0..*n {
                let _ = write!(s, "serde::Serialize::to_value(&self.{k}),");
            }
            s.push_str("])");
            s
        }
        Kind::Struct(Fields::Unit) => "serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut s = String::from("match self {");
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(
                            s,
                            "{name}::{vname} => serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        );
                    }
                    Fields::Tuple(1) => {
                        let _ = write!(
                            s,
                            "{name}::{vname}(f0) => serde::Value::Object(vec![(::std::string::String::from(\"{vname}\"), serde::Serialize::to_value(f0))]),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let _ = write!(
                            s,
                            "{name}::{vname}({}) => serde::Value::Object(vec![(::std::string::String::from(\"{vname}\"), serde::Value::Array(vec![{}]))]),",
                            binders.join(", "),
                            binders
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                    }
                    Fields::Named(fields) => {
                        let _ = write!(
                            s,
                            "{name}::{vname} {{ {} }} => serde::Value::Object(vec![(::std::string::String::from(\"{vname}\"), {})]),",
                            fields.join(", "),
                            ser_named_object(fields, "")
                        );
                    }
                }
            }
            s.push('}');
            if variants.is_empty() {
                s = "match *self {}".to_string();
            }
            s
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn de_named_fields(fields: &[String], pairs_expr: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!("{f}: serde::Deserialize::from_value(serde::field({pairs_expr}, \"{f}\")?)?,")
        })
        .collect()
}

fn gen_deserialize(shape: &Shape) -> String {
    let name = &shape.name;
    let body = match &shape.kind {
        Kind::Struct(Fields::Named(fields)) => {
            format!(
                "let pairs = v.as_object_slice().ok_or_else(|| serde::Error::custom(\"expected object for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                de_named_fields(fields, "pairs")
            )
        }
        Kind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let args: Vec<String> = (0..*n)
                .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "let items = serde::elements(v, {n})?;\nOk({name}({}))",
                args.join(", ")
            )
        }
        Kind::Struct(Fields::Unit) => format!("Ok({name})"),
        Kind::Enum(variants) => {
            let mut s = String::new();
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .collect();
            let data: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .collect();
            if !unit.is_empty() {
                s.push_str("if let serde::Value::Str(s) = v { match s.as_str() {");
                for v in &unit {
                    let _ = write!(s, "\"{0}\" => return Ok({name}::{0}),", v.name);
                }
                s.push_str("_ => {} } }\n");
            }
            if !data.is_empty() {
                s.push_str("if let Some((tag, inner)) = serde::variant(v) { match tag {");
                for v in &data {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => {
                            let _ = write!(
                                s,
                                "\"{vname}\" => return Ok({name}::{vname}(serde::Deserialize::from_value(inner)?)),"
                            );
                        }
                        Fields::Tuple(n) => {
                            let args: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                                .collect();
                            let _ = write!(
                                s,
                                "\"{vname}\" => {{ let items = serde::elements(inner, {n})?; return Ok({name}::{vname}({})); }}",
                                args.join(", ")
                            );
                        }
                        Fields::Named(fields) => {
                            let _ = write!(
                                s,
                                "\"{vname}\" => {{ let pairs = inner.as_object_slice().ok_or_else(|| serde::Error::custom(\"expected object for {name}::{vname}\"))?; return Ok({name}::{vname} {{ {} }}); }}",
                                de_named_fields(fields, "pairs")
                            );
                        }
                        Fields::Unit => unreachable!(),
                    }
                }
                s.push_str("_ => {} } }\n");
            }
            let _ = write!(
                s,
                "Err(serde::Error::custom(\"unrecognized value for {name}\"))"
            );
            s
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
