//! Offline, API-compatible subset of `proptest`.
//!
//! Implements the surface this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`boxed`, range/tuple/`Just`/`any`
//! strategies, `prop::collection::vec`, the `proptest!` runner macro with
//! `#![proptest_config(..)]`, `prop_oneof!`, and the `prop_assert*` family.
//!
//! Generation is a deterministic splitmix64-driven random walk; there is no
//! shrinking. Failures panic with the case seed so a run can be replayed by
//! reading the generated inputs under a debugger.

#![warn(rust_2018_idioms)]

pub mod test_runner {
    /// Error raised (or returned via `?`) from a property test body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        /// Alias kept for API compatibility with upstream `reject`.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generation source (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift reduction; bias is negligible for test generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// A generator of values of type `Self::Value`.
    ///
    /// `generate` takes `&self` so the trait stays object-safe; the
    /// combinators are `Sized`-gated for the same reason.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// A type-erased strategy, cloneable so `prop_oneof!` arms can be reused.
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (the `prop_oneof!` backend).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Debug + Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `Strategy::prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.abs_diff(self.start) as u64;
                    let off = rng.below(span);
                    // Wrapping add walks from start across the span even when
                    // the range straddles zero for signed types.
                    (self.start as u64).wrapping_add(off) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.abs_diff(lo) as u64;
                    let off = if span == u64::MAX {
                        rng.next_u64()
                    } else {
                        rng.below(span + 1)
                    };
                    (lo as u64).wrapping_add(off) as $t
                }
            }
        )*};
    }

    range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: std::fmt::Debug {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T` (`any::<i64>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    /// `prop::collection::vec(..)`-style paths.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions that run a body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Per-test stream: hash the test name so sibling tests diverge.
            let mut base: u64 = 0xcbf2_9ce4_8422_2325;
            for b in stringify!($name).bytes() {
                base = (base ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            for case in 0..config.cases as u64 {
                let mut rng =
                    $crate::test_runner::TestRng::from_seed(base.wrapping_add(case));
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {case} of {} failed: {e}",
                        stringify!($name)
                    );
                }
            }
        }
    )*};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition, returning a `TestCaseError` on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality, returning a `TestCaseError` on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Asserts inequality, returning a `TestCaseError` on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(i64),
        B(usize, usize),
        C,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            any::<i64>().prop_map(Op::A),
            (0usize..8, 0usize..8).prop_map(|(a, b)| Op::B(a, b)),
            Just(Op::C),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0usize..64, y in -100i64..100, s in 0u64..1000) {
            prop_assert!(x < 64);
            prop_assert!((-100..100).contains(&y), "y = {}", y);
            prop_assert!(s < 1000);
        }

        #[test]
        fn vec_lengths_in_bounds(xs in prop::collection::vec(op(), 0..120)) {
            prop_assert!(xs.len() < 120);
            for x in &xs {
                if let Op::B(a, b) = x {
                    prop_assert!(*a < 8 && *b < 8);
                }
            }
        }

        #[test]
        fn question_mark_propagates(x in 0u32..10) {
            let v: Result<u32, TestCaseError> = Ok(x);
            let got = v.map_err(|e| TestCaseError::fail(format!("bad: {e}")))?;
            prop_assert_eq!(got, x);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = prop::collection::vec(op(), 0..50);
        let a = strat.generate(&mut TestRng::from_seed(7));
        let b = strat.generate(&mut TestRng::from_seed(7));
        assert_eq!(a, b);
    }
}
