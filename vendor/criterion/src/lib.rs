//! Offline, API-compatible subset of `criterion`.
//!
//! Supports the surface this workspace's benches use: `benchmark_group`,
//! `sample_size`, `bench_with_input` with [`BenchmarkId`], `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros. Each
//! benchmark runs a short warm-up followed by `sample_size` timed samples and
//! prints mean ± standard deviation per iteration.
//!
//! Benches must be declared with `harness = false` (as upstream requires).

#![warn(rust_2018_idioms)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A `group/function/parameter` benchmark label.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Drives timed iterations of one benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        // Warm-up: find an iteration count that takes a measurable slice of
        // time, capped so slow benches still finish promptly.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b, input);
            if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }

        let mut per_iter = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b, input);
            per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
        }

        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let var = per_iter
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / (per_iter.len() - 1) as f64;
        println!(
            "{}/{:<40} time: [{} ± {}]  ({} samples × {} iters)",
            self.name,
            id.to_string(),
            format_time(mean),
            format_time(var.sqrt()),
            self.sample_size,
            iters,
        );
        self.criterion.benchmarks_run += 1;
        self
    }

    pub fn finish(self) {}
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// The benchmark driver handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 100,
        }
    }
}

/// Declares a benchmark group function list (upstream-compatible shape).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn runs_a_group() {
        let mut c = Criterion::default();
        trivial(&mut c);
        assert_eq!(c.benchmarks_run, 1);
    }

    #[test]
    fn id_formats() {
        assert_eq!(
            BenchmarkId::new("original", "FFT").to_string(),
            "original/FFT"
        );
    }
}
