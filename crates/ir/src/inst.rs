//! The instruction set.
//!
//! The instruction set mirrors the subset of LLVM bitcode that ConAir's
//! analyses are stated over: virtual-register arithmetic, loads/stores
//! distinguished by address space (global/heap vs stack slot), calls,
//! pthread-style locks, heap allocation, output, assertions and control
//! flow. Two instructions (`Checkpoint` and the `*Guard` family plus
//! `TimedLock`) only appear in *hardened* modules — they are emitted by
//! `conair-transform`, never written by front-ends.

use std::fmt;

use crate::types::{BlockId, FuncId, GlobalId, LocalId, LockId, PointId, Reg, SiteId};
use crate::value::{BinOpKind, CmpKind, Operand};

/// One IR instruction.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Inst {
    // ---- register computation -------------------------------------------
    /// `dst = value` — materialize a constant or copy a register.
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = op(lhs, rhs)` — wrapping integer arithmetic.
    BinOp {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: BinOpKind,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = cmp(lhs, rhs)` — comparison yielding 0/1.
    Cmp {
        /// Destination register.
        dst: Reg,
        /// Comparison operator.
        op: CmpKind,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },

    // ---- shared memory (globals + heap) ----------------------------------
    /// `dst = global` — read a shared global word. A *shared read* for the
    /// Section 4.2 optimization.
    LoadGlobal {
        /// Destination register.
        dst: Reg,
        /// Global variable read.
        global: GlobalId,
    },
    /// `global = value` — write a shared global word. Idempotency-destroying.
    StoreGlobal {
        /// Global variable written.
        global: GlobalId,
        /// Value stored.
        src: Operand,
    },
    /// `dst = &global` — take the address of a global word (the address of
    /// word 0 of the global's allocation).
    AddrOfGlobal {
        /// Destination register.
        dst: Reg,
        /// Global whose address is taken.
        global: GlobalId,
    },
    /// `dst = *ptr` — dereference a heap/global pointer. A potential
    /// segmentation-fault site (Section 3.1.1) and a shared read.
    LoadPtr {
        /// Destination register.
        dst: Reg,
        /// Pointer operand.
        ptr: Operand,
    },
    /// `*ptr = value` — store through a heap/global pointer.
    /// Idempotency-destroying and a potential segmentation-fault site.
    StorePtr {
        /// Pointer operand.
        ptr: Operand,
        /// Value stored.
        src: Operand,
    },

    // ---- stack slots ------------------------------------------------------
    /// `dst = local` — read a stack slot.
    LoadLocal {
        /// Destination register.
        dst: Reg,
        /// Stack slot read.
        local: LocalId,
    },
    /// `local = value` — write a stack slot. Stack slots are not part of the
    /// checkpointed register image, so this is idempotency-destroying
    /// (paper Figure 3b).
    StoreLocal {
        /// Stack slot written.
        local: LocalId,
        /// Value stored.
        src: Operand,
    },

    // ---- heap management --------------------------------------------------
    /// `dst = malloc(words)` — allocate a heap block. Allowed inside
    /// reexecution regions under the Section 4.1 extension (compensated by a
    /// `free` at the failure site).
    Alloc {
        /// Destination register receiving the block address.
        dst: Reg,
        /// Number of 64-bit words to allocate.
        words: Operand,
    },
    /// `free(ptr)` — release a heap block. Idempotency-destroying (cannot be
    /// compensated: the region may free a block allocated before it began).
    Free {
        /// Pointer to the block being freed.
        ptr: Operand,
    },

    // ---- synchronization ---------------------------------------------------
    /// `pthread_mutex_lock(lock)` — blocking acquisition. In hardened modules
    /// the transform rewrites recoverable ones to [`Inst::TimedLock`].
    Lock {
        /// The mutex acquired.
        lock: LockId,
    },
    /// `pthread_mutex_unlock(lock)`. Idempotency-destroying (may release a
    /// lock acquired before the region began).
    Unlock {
        /// The mutex released.
        lock: LockId,
    },
    /// `pthread_mutex_timedlock(lock)` — transform-generated deadlock failure
    /// site. On timeout the runtime attempts rollback recovery for `site`;
    /// when retries are exhausted it reports a deadlock failure.
    TimedLock {
        /// The mutex acquired.
        lock: LockId,
        /// The deadlock failure site this acquisition detects.
        site: SiteId,
    },

    // ---- I/O ---------------------------------------------------------------
    /// Emit one value on the program's output log, tagged with a label
    /// (the `printf` analog). Idempotency-destroying and a potential
    /// wrong-output site.
    Output {
        /// Output tag (format-string analog).
        label: String,
        /// Value emitted.
        value: Operand,
    },

    // ---- checks -------------------------------------------------------------
    /// `assert(cond)` — a potential assertion-violation failure site.
    Assert {
        /// Condition expected non-zero.
        cond: Operand,
        /// Message reported on violation.
        msg: String,
    },
    /// A developer-specified output-correctness oracle (paper Figure 5b):
    /// semantically an assertion, but classified as a wrong-output site.
    OutputAssert {
        /// Condition expected non-zero.
        cond: Operand,
        /// Message reported on violation.
        msg: String,
    },

    // ---- control flow --------------------------------------------------------
    /// Unconditional branch.
    Jump {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch: non-zero condition takes `then_bb`.
    Branch {
        /// Condition operand.
        cond: Operand,
        /// Target when the condition is non-zero.
        then_bb: BlockId,
        /// Target when the condition is zero.
        else_bb: BlockId,
    },
    /// Return from the current function.
    Return {
        /// Optional return value.
        value: Option<Operand>,
    },
    /// Direct call. Idempotency-destroying in the basic design
    /// (Section 3.2.1); the inter-procedural extension (Section 4.3) may
    /// place reexecution points in callers instead.
    Call {
        /// Register receiving the return value, if any.
        dst: Option<Reg>,
        /// Callee.
        callee: FuncId,
        /// Argument operands, bound to the callee's first registers.
        args: Vec<Operand>,
    },

    // ---- miscellany -------------------------------------------------------------
    /// A named no-op used by schedule scripts, fix-mode site selection and
    /// tests to name program locations.
    Marker {
        /// Marker name, unique within a module by convention.
        name: String,
    },
    /// No operation.
    Nop,

    // ---- transform-generated (hardened modules only) ----------------------------
    /// Reexecution point: save the frame's register image + continuation into
    /// the thread-local checkpoint slot and bump the compensation epoch
    /// (the `setjmp` analog, paper Figure 6 line 5).
    Checkpoint {
        /// The reexecution point identity (for dynamic counting).
        point: PointId,
    },
    /// Hardened failure check (the transformed `if (e) {} else { retry-loop;
    /// fail }` of paper Figure 6, with the retry loop folded into runtime
    /// semantics): if `cond` is zero, attempt rollback recovery for `site`;
    /// once retries are exhausted, report the failure.
    FailGuard {
        /// The failure kind checked (assertion or wrong output).
        kind: GuardKind,
        /// Condition expected non-zero.
        cond: Operand,
        /// The failure site identity.
        site: SiteId,
        /// Message reported on unrecovered failure.
        msg: String,
    },
    /// Hardened pointer sanity check inserted before a dereference
    /// (paper Figure 5c): if `ptr` is below the lower bound or not mapped,
    /// attempt rollback recovery for `site`.
    PtrGuard {
        /// Pointer operand validated.
        ptr: Operand,
        /// The failure site identity.
        site: SiteId,
    },
}

/// The two failure kinds a [`Inst::FailGuard`] can check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GuardKind {
    /// An `assert` site.
    Assert,
    /// An output-oracle site.
    WrongOutput,
}

impl Inst {
    /// Whether this instruction terminates a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Jump { .. } | Inst::Branch { .. } | Inst::Return { .. }
        )
    }

    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Copy { dst, .. }
            | Inst::BinOp { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::LoadGlobal { dst, .. }
            | Inst::AddrOfGlobal { dst, .. }
            | Inst::LoadPtr { dst, .. }
            | Inst::LoadLocal { dst, .. }
            | Inst::Alloc { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// All operands this instruction reads, in order.
    pub fn uses(&self) -> Vec<Operand> {
        match self {
            Inst::Copy { src, .. } => vec![*src],
            Inst::BinOp { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::LoadGlobal { .. }
            | Inst::AddrOfGlobal { .. }
            | Inst::LoadLocal { .. }
            | Inst::Lock { .. }
            | Inst::Unlock { .. }
            | Inst::TimedLock { .. }
            | Inst::Jump { .. }
            | Inst::Marker { .. }
            | Inst::Nop
            | Inst::Checkpoint { .. } => Vec::new(),
            Inst::StoreGlobal { src, .. } | Inst::StoreLocal { src, .. } => vec![*src],
            Inst::LoadPtr { ptr, .. } | Inst::Free { ptr } | Inst::PtrGuard { ptr, .. } => {
                vec![*ptr]
            }
            Inst::StorePtr { ptr, src } => vec![*ptr, *src],
            Inst::Alloc { words, .. } => vec![*words],
            Inst::Output { value, .. } => vec![*value],
            Inst::Assert { cond, .. }
            | Inst::OutputAssert { cond, .. }
            | Inst::Branch { cond, .. }
            | Inst::FailGuard { cond, .. } => vec![*cond],
            Inst::Return { value } => value.iter().copied().collect(),
            Inst::Call { args, .. } => args.clone(),
        }
    }

    /// The registers this instruction reads.
    pub fn used_regs(&self) -> Vec<Reg> {
        self.uses()
            .into_iter()
            .filter_map(Operand::as_reg)
            .collect()
    }

    /// Whether this instruction only appears in hardened (transformed)
    /// modules.
    pub fn is_transform_generated(&self) -> bool {
        matches!(
            self,
            Inst::Checkpoint { .. }
                | Inst::FailGuard { .. }
                | Inst::PtrGuard { .. }
                | Inst::TimedLock { .. }
        )
    }

    /// Dense opcode index for this instruction, `0..NUM_OPCODES`.
    /// `MNEMONICS[inst.opcode()] == inst.mnemonic()`.
    pub fn opcode(&self) -> usize {
        match self {
            Inst::Copy { .. } => 0,
            Inst::BinOp { .. } => 1,
            Inst::Cmp { .. } => 2,
            Inst::LoadGlobal { .. } => 3,
            Inst::StoreGlobal { .. } => 4,
            Inst::AddrOfGlobal { .. } => 5,
            Inst::LoadPtr { .. } => 6,
            Inst::StorePtr { .. } => 7,
            Inst::LoadLocal { .. } => 8,
            Inst::StoreLocal { .. } => 9,
            Inst::Alloc { .. } => 10,
            Inst::Free { .. } => 11,
            Inst::Lock { .. } => 12,
            Inst::Unlock { .. } => 13,
            Inst::TimedLock { .. } => 14,
            Inst::Output { .. } => 15,
            Inst::Assert { .. } => 16,
            Inst::OutputAssert { .. } => 17,
            Inst::Jump { .. } => 18,
            Inst::Branch { .. } => 19,
            Inst::Return { .. } => 20,
            Inst::Call { .. } => 21,
            Inst::Marker { .. } => 22,
            Inst::Nop => 23,
            Inst::Checkpoint { .. } => 24,
            Inst::FailGuard { .. } => 25,
            Inst::PtrGuard { .. } => 26,
        }
    }

    /// Short mnemonic used in printing and diagnostics.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Inst::Copy { .. } => "copy",
            Inst::BinOp { .. } => "binop",
            Inst::Cmp { .. } => "cmp",
            Inst::LoadGlobal { .. } => "ldg",
            Inst::StoreGlobal { .. } => "stg",
            Inst::AddrOfGlobal { .. } => "addrg",
            Inst::LoadPtr { .. } => "ldp",
            Inst::StorePtr { .. } => "stp",
            Inst::LoadLocal { .. } => "ldl",
            Inst::StoreLocal { .. } => "stl",
            Inst::Alloc { .. } => "alloc",
            Inst::Free { .. } => "free",
            Inst::Lock { .. } => "lock",
            Inst::Unlock { .. } => "unlock",
            Inst::TimedLock { .. } => "timedlock",
            Inst::Output { .. } => "output",
            Inst::Assert { .. } => "assert",
            Inst::OutputAssert { .. } => "oassert",
            Inst::Jump { .. } => "jump",
            Inst::Branch { .. } => "br",
            Inst::Return { .. } => "ret",
            Inst::Call { .. } => "call",
            Inst::Marker { .. } => "marker",
            Inst::Nop => "nop",
            Inst::Checkpoint { .. } => "checkpoint",
            Inst::FailGuard { .. } => "failguard",
            Inst::PtrGuard { .. } => "ptrguard",
        }
    }
}

/// Number of distinct [`Inst`] opcodes (the range of [`Inst::opcode`]).
pub const NUM_OPCODES: usize = 27;

/// Mnemonics indexed by [`Inst::opcode`].
pub const MNEMONICS: [&str; NUM_OPCODES] = [
    "copy",
    "binop",
    "cmp",
    "ldg",
    "stg",
    "addrg",
    "ldp",
    "stp",
    "ldl",
    "stl",
    "alloc",
    "free",
    "lock",
    "unlock",
    "timedlock",
    "output",
    "assert",
    "oassert",
    "jump",
    "br",
    "ret",
    "call",
    "marker",
    "nop",
    "checkpoint",
    "failguard",
    "ptrguard",
];

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Copy { dst, src } => write!(f, "{dst} = copy {src}"),
            Inst::BinOp { dst, op, lhs, rhs } => write!(f, "{dst} = {op} {lhs}, {rhs}"),
            Inst::Cmp { dst, op, lhs, rhs } => write!(f, "{dst} = cmp.{op} {lhs}, {rhs}"),
            Inst::LoadGlobal { dst, global } => write!(f, "{dst} = ldg {global}"),
            Inst::StoreGlobal { global, src } => write!(f, "stg {global}, {src}"),
            Inst::AddrOfGlobal { dst, global } => write!(f, "{dst} = addrg {global}"),
            Inst::LoadPtr { dst, ptr } => write!(f, "{dst} = ldp {ptr}"),
            Inst::StorePtr { ptr, src } => write!(f, "stp {ptr}, {src}"),
            Inst::LoadLocal { dst, local } => write!(f, "{dst} = ldl {local}"),
            Inst::StoreLocal { local, src } => write!(f, "stl {local}, {src}"),
            Inst::Alloc { dst, words } => write!(f, "{dst} = alloc {words}"),
            Inst::Free { ptr } => write!(f, "free {ptr}"),
            Inst::Lock { lock } => write!(f, "lock {lock}"),
            Inst::Unlock { lock } => write!(f, "unlock {lock}"),
            Inst::TimedLock { lock, site } => write!(f, "timedlock {lock} !{site}"),
            Inst::Output { label, value } => write!(f, "output \"{label}\", {value}"),
            Inst::Assert { cond, msg } => write!(f, "assert {cond}, \"{msg}\""),
            Inst::OutputAssert { cond, msg } => write!(f, "oassert {cond}, \"{msg}\""),
            Inst::Jump { target } => write!(f, "jump {target}"),
            Inst::Branch {
                cond,
                then_bb,
                else_bb,
            } => write!(f, "br {cond}, {then_bb}, {else_bb}"),
            Inst::Return { value: Some(v) } => write!(f, "ret {v}"),
            Inst::Return { value: None } => write!(f, "ret"),
            Inst::Call { dst, callee, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = call {callee}(")?;
                } else {
                    write!(f, "call {callee}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Inst::Marker { name } => write!(f, "marker \"{name}\""),
            Inst::Nop => write!(f, "nop"),
            Inst::Checkpoint { point } => write!(f, "checkpoint !{point}"),
            Inst::FailGuard {
                kind,
                cond,
                site,
                msg,
            } => {
                let k = match kind {
                    GuardKind::Assert => "assert",
                    GuardKind::WrongOutput => "output",
                };
                write!(f, "failguard.{k} {cond} !{site}, \"{msg}\"")
            }
            Inst::PtrGuard { ptr, site } => write!(f, "ptrguard {ptr} !{site}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminators_are_classified() {
        assert!(Inst::Jump { target: BlockId(0) }.is_terminator());
        assert!(Inst::Return { value: None }.is_terminator());
        assert!(Inst::Branch {
            cond: Operand::Const(1),
            then_bb: BlockId(0),
            else_bb: BlockId(1)
        }
        .is_terminator());
        assert!(!Inst::Nop.is_terminator());
        assert!(!Inst::Call {
            dst: None,
            callee: FuncId(0),
            args: vec![]
        }
        .is_terminator());
    }

    #[test]
    fn defs_and_uses_are_complete() {
        let i = Inst::BinOp {
            dst: Reg(2),
            op: BinOpKind::Add,
            lhs: Operand::Reg(Reg(0)),
            rhs: Operand::Const(1),
        };
        assert_eq!(i.def(), Some(Reg(2)));
        assert_eq!(i.used_regs(), vec![Reg(0)]);

        let st = Inst::StorePtr {
            ptr: Operand::Reg(Reg(1)),
            src: Operand::Reg(Reg(3)),
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.used_regs(), vec![Reg(1), Reg(3)]);

        let call = Inst::Call {
            dst: Some(Reg(5)),
            callee: FuncId(1),
            args: vec![Operand::Reg(Reg(4)), Operand::Const(9)],
        };
        assert_eq!(call.def(), Some(Reg(5)));
        assert_eq!(call.used_regs(), vec![Reg(4)]);
    }

    #[test]
    fn transform_generated_flags() {
        assert!(Inst::Checkpoint { point: PointId(0) }.is_transform_generated());
        assert!(Inst::TimedLock {
            lock: LockId(0),
            site: SiteId(0)
        }
        .is_transform_generated());
        assert!(!Inst::Lock { lock: LockId(0) }.is_transform_generated());
    }

    #[test]
    fn display_is_stable() {
        let i = Inst::FailGuard {
            kind: GuardKind::Assert,
            cond: Operand::Reg(Reg(1)),
            site: SiteId(4),
            msg: "e".into(),
        };
        assert_eq!(i.to_string(), "failguard.assert %r1 !site4, \"e\"");
        assert_eq!(
            Inst::Output {
                label: "balance".into(),
                value: Operand::Const(7)
            }
            .to_string(),
            "output \"balance\", 7"
        );
    }
}
