//! Core identifier newtypes shared by every IR entity.
//!
//! Every structural element of a [`crate::Module`] is referred to by a small
//! index newtype rather than by reference, which keeps the IR trivially
//! cloneable and serializable and lets analyses build dense side tables.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in a `u32`.
            pub fn from_index(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "id index overflow");
                Self(index as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

id_newtype!(
    /// Identifies a function within a [`crate::Module`].
    FuncId,
    "@f"
);
id_newtype!(
    /// Identifies a basic block within a [`crate::Function`].
    BlockId,
    "bb"
);
id_newtype!(
    /// Identifies a virtual register within a [`crate::Function`] frame.
    ///
    /// Virtual registers are the analog of LLVM SSA values: they live in the
    /// interpreter's per-frame register file, which is saved wholesale by a
    /// `Checkpoint` and restored on rollback. Consequently register writes
    /// never destroy idempotency (the `setjmp`/`longjmp` register-image
    /// analog from the paper, Section 3.2.1).
    Reg,
    "%r"
);
id_newtype!(
    /// Identifies a stack slot (a local **not** allocated to a virtual
    /// register). Stack slots are *not* restored on rollback, so a store to
    /// one is idempotency-destroying — the `-no-stack-slot-sharing` side of
    /// the paper's design.
    LocalId,
    "%s"
);
id_newtype!(
    /// Identifies a global variable (one or more shared memory words).
    GlobalId,
    "@g"
);
id_newtype!(
    /// Identifies a named mutex in the module's lock table.
    LockId,
    "@L"
);
id_newtype!(
    /// Identifies a potential failure site discovered by the analysis.
    SiteId,
    "site"
);
id_newtype!(
    /// Identifies a reexecution point (checkpoint) inserted by the transform.
    PointId,
    "pt"
);

/// A program location: one instruction inside one block of one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Loc {
    /// Containing function.
    pub func: FuncId,
    /// Containing basic block.
    pub block: BlockId,
    /// Instruction index inside the block.
    pub inst: usize,
}

impl Loc {
    /// Builds a location.
    pub fn new(func: FuncId, block: BlockId, inst: usize) -> Self {
        Self { func, block, inst }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.func, self.block, self.inst)
    }
}

/// The kind of failure a site can manifest (paper Section 3.1.1, Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FailureKind {
    /// `assert(e)` evaluated to false.
    AssertionViolation,
    /// An output-correctness oracle (developer-specified `Assert` before an
    /// output call) evaluated to false.
    WrongOutput,
    /// Dereference of an invalid heap/global pointer.
    SegFault,
    /// A lock acquisition timed out (time-out based deadlock detection).
    Deadlock,
}

impl FailureKind {
    /// All failure kinds, in the column order used by the paper's Table 4.
    pub const ALL: [FailureKind; 4] = [
        FailureKind::AssertionViolation,
        FailureKind::WrongOutput,
        FailureKind::SegFault,
        FailureKind::Deadlock,
    ];

    /// Whether this kind participates in the non-deadlock optimization of
    /// Section 4.2 (`true`) or in the deadlock optimization (`false`).
    pub fn is_non_deadlock(self) -> bool {
        !matches!(self, FailureKind::Deadlock)
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FailureKind::AssertionViolation => "assertion-violation",
            FailureKind::WrongOutput => "wrong-output",
            FailureKind::SegFault => "segmentation-fault",
            FailureKind::Deadlock => "deadlock",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_indices() {
        let f = FuncId::from_index(7);
        assert_eq!(f.index(), 7);
        assert_eq!(f, FuncId(7));
        assert_eq!(f.to_string(), "@f7");
    }

    #[test]
    fn loc_display_is_compact() {
        let loc = Loc::new(FuncId(1), BlockId(2), 3);
        assert_eq!(loc.to_string(), "@f1:bb2:3");
    }

    #[test]
    fn loc_ordering_is_lexicographic() {
        let a = Loc::new(FuncId(0), BlockId(1), 5);
        let b = Loc::new(FuncId(0), BlockId(2), 0);
        assert!(a < b);
    }

    #[test]
    fn failure_kind_classification() {
        assert!(FailureKind::AssertionViolation.is_non_deadlock());
        assert!(FailureKind::WrongOutput.is_non_deadlock());
        assert!(FailureKind::SegFault.is_non_deadlock());
        assert!(!FailureKind::Deadlock.is_non_deadlock());
    }

    #[test]
    #[should_panic(expected = "id index overflow")]
    fn id_overflow_panics() {
        let _ = FuncId::from_index(usize::MAX);
    }
}
