//! Flat instruction indexing: a dense, per-function numbering of every
//! instruction position, and bitsets keyed by it.
//!
//! Both the runtime's pre-lowered instruction table and the analyses'
//! region/visited sets index instructions the same way: blocks are laid
//! out in id order, so a position `(block, inst)` maps to the `u32`
//! `block_start(block) + inst`, and the entry instruction of a valid
//! function is always flat index `0`. Sharing one numbering lets a region
//! computed by the analysis be queried in O(words) by anything holding the
//! same [`FlatLayout`].

use crate::block::Function;
use crate::cfg::InstPos;
use crate::inst::{GuardKind, Inst};
use crate::types::BlockId;
use crate::value::{BinOpKind, CmpKind, Operand};

/// The flat numbering of one function's instruction positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatLayout {
    /// Flat index of each block's first instruction, plus a final sentinel
    /// holding the total instruction count.
    block_starts: Vec<u32>,
    /// Inverse map: flat index back to `(block, inst)`.
    pos: Vec<InstPos>,
}

impl FlatLayout {
    /// Numbers `func`'s instructions: blocks in id order, entry first.
    pub fn new(func: &Function) -> Self {
        let total: usize = func.num_insts();
        let mut block_starts = Vec::with_capacity(func.blocks.len() + 1);
        let mut pos = Vec::with_capacity(total);
        let mut next = 0u32;
        for (bi, block) in func.blocks.iter().enumerate() {
            block_starts.push(next);
            for ii in 0..block.insts.len() {
                pos.push(InstPos::new(BlockId::from_index(bi), ii));
            }
            next += block.insts.len() as u32;
        }
        block_starts.push(next);
        Self { block_starts, pos }
    }

    /// Total instructions in the function.
    pub fn num_insts(&self) -> usize {
        self.pos.len()
    }

    /// Flat index of a block's first instruction.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn block_start(&self, block: BlockId) -> u32 {
        self.block_starts[block.index()]
    }

    /// Flat index of a position.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the position is past its block's end.
    pub fn flat(&self, pos: InstPos) -> u32 {
        let f = self.block_starts[pos.block.index()] + pos.inst as u32;
        debug_assert!(
            f < self.block_starts[pos.block.index() + 1],
            "position {pos:?} past the end of its block"
        );
        f
    }

    /// The position at a flat index.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range.
    pub fn pos(&self, flat: u32) -> InstPos {
        self.pos[flat as usize]
    }

    /// An empty bitset sized for this function.
    pub fn empty_set(&self) -> InstSet {
        InstSet::new(self.num_insts())
    }
}

/// A dense bitset over one function's flat instruction indices.
///
/// Replaces the `HashSet<InstPos>` region/visited sets of the analyses:
/// membership is one shift-and-mask, and whole-set queries (subset,
/// intersection) are O(words) with no per-element hashing or iteration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InstSet {
    words: Vec<u64>,
}

impl InstSet {
    /// An empty set with capacity for `n` instructions.
    pub fn new(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts an index; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the capacity the set was created with.
    pub fn insert(&mut self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, i as usize % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Membership test (out-of-capacity indices are simply absent).
    pub fn contains(&self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, i as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of members (popcount over the words).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros();
                rest &= rest - 1;
                Some(wi as u32 * 64 + b)
            })
        })
    }

    /// Whether every member of `self` is in `other`.
    pub fn is_subset(&self, other: &InstSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Whether the sets share any member — O(words), no iteration.
    pub fn intersects(&self, other: &InstSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// Whether the sets share any member other than `skip` — the
    /// iteration-free form of "does the region contain a qualifying
    /// instruction besides the site itself".
    pub fn intersects_excluding(&self, other: &InstSet, skip: u32) -> bool {
        let (sw, sb) = (skip as usize / 64, skip as usize % 64);
        self.words
            .iter()
            .zip(&other.words)
            .enumerate()
            .any(|(i, (&a, &b))| {
                let mut both = a & b;
                if i == sw {
                    both &= !(1u64 << sb);
                }
                both != 0
            })
    }
}

impl FromIterator<u32> for InstSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let items: Vec<u32> = iter.into_iter().collect();
        let cap = items.iter().map(|&i| i as usize + 1).max().unwrap_or(0);
        let mut set = InstSet::new(cap);
        for i in items {
            set.insert(i);
        }
        set
    }
}

/// A decoded operand: a register index or an immediate, with the
/// [`Operand`]'s enum-of-newtypes flattened to raw scalars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DOp {
    /// Read the register with this index.
    R(u32),
    /// An immediate constant.
    C(i64),
}

impl DOp {
    fn of(op: Operand) -> DOp {
        match op {
            Operand::Reg(r) => DOp::R(r.0),
            Operand::Const(c) => DOp::C(c),
        }
    }
}

/// One pre-decoded instruction: a fixed-size (≤ 32-byte), `Copy`
/// enum-of-structs mirror of [`Inst`] with every operand resolved at
/// decode time — register numbers and ids flattened to raw indices,
/// strings interned into a side table, block targets resolved to flat
/// pcs, and the register/immediate shape of hot instructions split into
/// distinct variants so the interpreter's dispatch never re-inspects an
/// [`Operand`].
///
/// The last four variants are *superinstructions* produced by the fusion
/// pass ([`DecodedFunc::decode`]): the catalog's hottest adjacent pairs
/// collapsed into one dispatch. A fused variant only ever replaces the
/// *head* slot of its pair — the tail slot keeps its plain decoding, so
/// jumps that land mid-pair still execute correctly.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // field-by-field docs would just restate `Inst`'s
pub enum DecodedInst {
    /// `dst = imm` — the copy-of-constant superinstruction (no operand
    /// inspection, no register read).
    CopyC {
        dst: u32,
        imm: i64,
    },
    /// `dst = regs[src]`.
    CopyR {
        dst: u32,
        src: u32,
    },
    /// `dst = op(regs[lhs], regs[rhs])` — the eval-free two-register
    /// binop.
    BinRR {
        dst: u32,
        op: BinOpKind,
        lhs: u32,
        rhs: u32,
    },
    BinRC {
        dst: u32,
        op: BinOpKind,
        lhs: u32,
        imm: i64,
    },
    BinCR {
        dst: u32,
        op: BinOpKind,
        imm: i64,
        rhs: u32,
    },
    CmpRR {
        dst: u32,
        op: CmpKind,
        lhs: u32,
        rhs: u32,
    },
    CmpRC {
        dst: u32,
        op: CmpKind,
        lhs: u32,
        imm: i64,
    },
    CmpCR {
        dst: u32,
        op: CmpKind,
        imm: i64,
        rhs: u32,
    },
    LoadGlobal {
        dst: u32,
        global: u32,
    },
    StoreGlobal {
        global: u32,
        src: DOp,
    },
    AddrOfGlobal {
        dst: u32,
        global: u32,
    },
    LoadPtr {
        dst: u32,
        ptr: DOp,
    },
    StorePtrRR {
        ptr: u32,
        src: u32,
    },
    StorePtrRC {
        ptr: u32,
        imm: i64,
    },
    StorePtrCR {
        addr: i64,
        src: u32,
    },
    StorePtrCC {
        addr: i64,
        imm: i64,
    },
    LoadLocal {
        dst: u32,
        local: u32,
    },
    StoreLocal {
        local: u32,
        src: DOp,
    },
    Alloc {
        dst: u32,
        words: DOp,
    },
    Free {
        ptr: DOp,
    },
    Lock {
        lock: u32,
    },
    TimedLock {
        lock: u32,
        site: u32,
    },
    Unlock {
        lock: u32,
    },
    /// `str_idx` indexes the [`DecodedFunc`]'s string side table.
    Output {
        str_idx: u32,
        value: DOp,
    },
    Assert {
        cond: DOp,
        str_idx: u32,
    },
    OutputAssert {
        cond: DOp,
        str_idx: u32,
    },
    /// Unconditional jump to a *flat pc* (block target resolved at
    /// decode time). Also produced by folding a constant-condition
    /// `Branch`.
    Jump {
        pc: u32,
    },
    Branch {
        cond: u32,
        then_pc: u32,
        else_pc: u32,
    },
    RetN,
    RetR {
        src: u32,
    },
    RetC {
        imm: i64,
    },
    /// `dst == u32::MAX` encodes "no destination"; `args_start/args_len`
    /// index the flattened call-argument side table.
    Call {
        dst: u32,
        callee: u32,
        args_start: u32,
        args_len: u32,
    },
    /// `id` is the runtime's interned marker id, patched in by the
    /// lowering layer (decode leaves the [`MARKER_UNPATCHED`] sentinel).
    Marker {
        id: u32,
    },
    Nop,
    Checkpoint,
    FailGuard {
        kind: GuardKind,
        cond: DOp,
        site: u32,
        str_idx: u32,
    },
    PtrGuard {
        ptr: DOp,
        site: u32,
    },

    // ---- superinstructions (fusion pass) --------------------------------
    /// `Cmp` + `Branch` on the freshly computed flag. The comparison
    /// result is still written to `dst` through the interpreter's logged
    /// register-write path before the branch resolves — fusion collapses
    /// dispatch, never checkpoint-visible state.
    CmpBranchRR {
        op: CmpKind,
        dst: u32,
        lhs: u32,
        rhs: u32,
        then_pc: u32,
        else_pc: u32,
    },
    CmpBranchRC {
        op: CmpKind,
        dst: u32,
        lhs: u32,
        imm: i64,
        then_pc: u32,
        else_pc: u32,
    },
    /// `LoadGlobal` + `BinOp` whose left operand is the loaded register.
    /// The loaded value is likewise written to `gdst` before the binop
    /// executes.
    LoadGlobalBinRR {
        global: u32,
        gdst: u32,
        op: BinOpKind,
        dst: u32,
        rhs: u32,
    },
    LoadGlobalBinRC {
        global: u32,
        gdst: u32,
        op: BinOpKind,
        dst: u32,
        imm: i64,
    },
}

/// Sentinel in [`DecodedInst::Marker`] until the runtime patches in its
/// module-wide interned marker id.
pub const MARKER_UNPATCHED: u32 = u32::MAX;

/// One function's pre-decoded instruction streams plus their side tables.
///
/// `code` holds the plain decoding, one fixed-size entry per flat pc.
/// `fused` is the same stream with each fusable pair's head slot replaced
/// by its superinstruction; interpreters that cannot legally execute two
/// logical steps in one dispatch (e.g. consult-every-step scheduling)
/// fetch from `code` instead.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFunc<'p> {
    code: Vec<DecodedInst>,
    fused: Vec<DecodedInst>,
    /// Flattened `Call` argument lists, indexed by `args_start..+args_len`.
    call_args: Vec<DOp>,
    /// Interned output labels and assertion/guard messages.
    strs: Vec<&'p str>,
    fused_pairs: usize,
}

impl<'p> DecodedFunc<'p> {
    /// Decodes `func` against its flat numbering, then runs the fusion
    /// pass over adjacent same-block pairs.
    pub fn decode(func: &'p Function, layout: &FlatLayout) -> Self {
        let mut strs: Vec<&'p str> = Vec::new();
        let mut call_args: Vec<DOp> = Vec::new();
        let intern = |s: &'p str, strs: &mut Vec<&'p str>| -> u32 {
            if let Some(i) = strs.iter().position(|x| *x == s) {
                return i as u32;
            }
            strs.push(s);
            (strs.len() - 1) as u32
        };
        let mut code: Vec<DecodedInst> = Vec::with_capacity(layout.num_insts());
        for block in &func.blocks {
            for inst in &block.insts {
                use DecodedInst as D;
                let d = match inst {
                    Inst::Copy { dst, src } => match DOp::of(*src) {
                        DOp::C(imm) => D::CopyC { dst: dst.0, imm },
                        DOp::R(src) => D::CopyR { dst: dst.0, src },
                    },
                    Inst::BinOp { dst, op, lhs, rhs } => {
                        match (DOp::of(*lhs), DOp::of(*rhs)) {
                            (DOp::R(lhs), DOp::R(rhs)) => D::BinRR {
                                dst: dst.0,
                                op: *op,
                                lhs,
                                rhs,
                            },
                            (DOp::R(lhs), DOp::C(imm)) => D::BinRC {
                                dst: dst.0,
                                op: *op,
                                lhs,
                                imm,
                            },
                            (DOp::C(imm), DOp::R(rhs)) => D::BinCR {
                                dst: dst.0,
                                op: *op,
                                imm,
                                rhs,
                            },
                            // Constant-fold: both operands immediate.
                            (DOp::C(a), DOp::C(b)) => D::CopyC {
                                dst: dst.0,
                                imm: op.apply(a, b),
                            },
                        }
                    }
                    Inst::Cmp { dst, op, lhs, rhs } => match (DOp::of(*lhs), DOp::of(*rhs)) {
                        (DOp::R(lhs), DOp::R(rhs)) => D::CmpRR {
                            dst: dst.0,
                            op: *op,
                            lhs,
                            rhs,
                        },
                        (DOp::R(lhs), DOp::C(imm)) => D::CmpRC {
                            dst: dst.0,
                            op: *op,
                            lhs,
                            imm,
                        },
                        (DOp::C(imm), DOp::R(rhs)) => D::CmpCR {
                            dst: dst.0,
                            op: *op,
                            imm,
                            rhs,
                        },
                        (DOp::C(a), DOp::C(b)) => D::CopyC {
                            dst: dst.0,
                            imm: op.apply(a, b),
                        },
                    },
                    Inst::LoadGlobal { dst, global } => D::LoadGlobal {
                        dst: dst.0,
                        global: global.0,
                    },
                    Inst::StoreGlobal { global, src } => D::StoreGlobal {
                        global: global.0,
                        src: DOp::of(*src),
                    },
                    Inst::AddrOfGlobal { dst, global } => D::AddrOfGlobal {
                        dst: dst.0,
                        global: global.0,
                    },
                    Inst::LoadPtr { dst, ptr } => D::LoadPtr {
                        dst: dst.0,
                        ptr: DOp::of(*ptr),
                    },
                    Inst::StorePtr { ptr, src } => match (DOp::of(*ptr), DOp::of(*src)) {
                        (DOp::R(ptr), DOp::R(src)) => D::StorePtrRR { ptr, src },
                        (DOp::R(ptr), DOp::C(imm)) => D::StorePtrRC { ptr, imm },
                        (DOp::C(addr), DOp::R(src)) => D::StorePtrCR { addr, src },
                        (DOp::C(addr), DOp::C(imm)) => D::StorePtrCC { addr, imm },
                    },
                    Inst::LoadLocal { dst, local } => D::LoadLocal {
                        dst: dst.0,
                        local: local.0,
                    },
                    Inst::StoreLocal { local, src } => D::StoreLocal {
                        local: local.0,
                        src: DOp::of(*src),
                    },
                    Inst::Alloc { dst, words } => D::Alloc {
                        dst: dst.0,
                        words: DOp::of(*words),
                    },
                    Inst::Free { ptr } => D::Free { ptr: DOp::of(*ptr) },
                    Inst::Lock { lock } => D::Lock { lock: lock.0 },
                    Inst::TimedLock { lock, site } => D::TimedLock {
                        lock: lock.0,
                        site: site.0,
                    },
                    Inst::Unlock { lock } => D::Unlock { lock: lock.0 },
                    Inst::Output { label, value } => D::Output {
                        str_idx: intern(label.as_str(), &mut strs),
                        value: DOp::of(*value),
                    },
                    Inst::Assert { cond, msg } => D::Assert {
                        cond: DOp::of(*cond),
                        str_idx: intern(msg.as_str(), &mut strs),
                    },
                    Inst::OutputAssert { cond, msg } => D::OutputAssert {
                        cond: DOp::of(*cond),
                        str_idx: intern(msg.as_str(), &mut strs),
                    },
                    Inst::Jump { target } => D::Jump {
                        pc: layout.block_start(*target),
                    },
                    Inst::Branch {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        let (then_pc, else_pc) =
                            (layout.block_start(*then_bb), layout.block_start(*else_bb));
                        match DOp::of(*cond) {
                            DOp::R(cond) => D::Branch {
                                cond,
                                then_pc,
                                else_pc,
                            },
                            // Constant-fold a decided branch to a jump.
                            DOp::C(c) => D::Jump {
                                pc: if c != 0 { then_pc } else { else_pc },
                            },
                        }
                    }
                    Inst::Return { value } => match value.map(DOp::of) {
                        None => D::RetN,
                        Some(DOp::R(src)) => D::RetR { src },
                        Some(DOp::C(imm)) => D::RetC { imm },
                    },
                    Inst::Call { dst, callee, args } => {
                        let args_start = call_args.len() as u32;
                        call_args.extend(args.iter().map(|a| DOp::of(*a)));
                        D::Call {
                            dst: dst.map_or(u32::MAX, |r| r.0),
                            callee: callee.0,
                            args_start,
                            args_len: args.len() as u32,
                        }
                    }
                    Inst::Marker { .. } => D::Marker {
                        id: MARKER_UNPATCHED,
                    },
                    Inst::Nop => D::Nop,
                    Inst::Checkpoint { .. } => D::Checkpoint,
                    Inst::FailGuard {
                        kind,
                        cond,
                        site,
                        msg,
                    } => D::FailGuard {
                        kind: *kind,
                        cond: DOp::of(*cond),
                        site: site.0,
                        str_idx: intern(msg.as_str(), &mut strs),
                    },
                    Inst::PtrGuard { ptr, site } => D::PtrGuard {
                        ptr: DOp::of(*ptr),
                        site: site.0,
                    },
                };
                code.push(d);
            }
        }
        debug_assert_eq!(code.len(), layout.num_insts());
        let (fused, fused_pairs) = Self::fuse(&code, layout);
        Self {
            code,
            fused,
            call_args,
            strs,
            fused_pairs,
        }
    }

    /// The fusion pass: replaces each fusable pair's head slot with a
    /// superinstruction. A pair fuses only when both halves sit in the
    /// same basic block (flat fallthrough across a block boundary is not
    /// adjacency — the second slot is a jump target) and the tail consumes
    /// exactly the head's destination.
    fn fuse(code: &[DecodedInst], layout: &FlatLayout) -> (Vec<DecodedInst>, usize) {
        use DecodedInst as D;
        let mut fused = code.to_vec();
        let mut pairs = 0usize;
        for pc in 0..code.len().saturating_sub(1) {
            let (head, tail) = (code[pc], code[pc + 1]);
            if layout.pos(pc as u32).block != layout.pos(pc as u32 + 1).block {
                continue;
            }
            let sup = match (head, tail) {
                (
                    D::CmpRR { dst, op, lhs, rhs },
                    D::Branch {
                        cond,
                        then_pc,
                        else_pc,
                    },
                ) if cond == dst => Some(D::CmpBranchRR {
                    op,
                    dst,
                    lhs,
                    rhs,
                    then_pc,
                    else_pc,
                }),
                (
                    D::CmpRC { dst, op, lhs, imm },
                    D::Branch {
                        cond,
                        then_pc,
                        else_pc,
                    },
                ) if cond == dst => Some(D::CmpBranchRC {
                    op,
                    dst,
                    lhs,
                    imm,
                    then_pc,
                    else_pc,
                }),
                (D::LoadGlobal { dst: gdst, global }, D::BinRR { dst, op, lhs, rhs })
                    if lhs == gdst =>
                {
                    Some(D::LoadGlobalBinRR {
                        global,
                        gdst,
                        op,
                        dst,
                        rhs,
                    })
                }
                (D::LoadGlobal { dst: gdst, global }, D::BinRC { dst, op, lhs, imm })
                    if lhs == gdst =>
                {
                    Some(D::LoadGlobalBinRC {
                        global,
                        gdst,
                        op,
                        dst,
                        imm,
                    })
                }
                _ => None,
            };
            if let Some(sup) = sup {
                fused[pc] = sup;
                pairs += 1;
            }
        }
        (fused, pairs)
    }

    /// The plain decoded instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn code(&self, pc: u32) -> DecodedInst {
        self.code[pc as usize]
    }

    /// The fused-stream instruction at `pc` (a superinstruction on pair
    /// heads, the plain decoding everywhere else).
    #[inline]
    pub fn fused(&self, pc: u32) -> DecodedInst {
        self.fused[pc as usize]
    }

    /// One flattened call argument.
    #[inline]
    pub fn call_arg(&self, i: u32) -> DOp {
        self.call_args[i as usize]
    }

    /// An interned string (output label / assertion message). The
    /// reference borrows the *function* (`'p`), not this table.
    #[inline]
    pub fn str_at(&self, i: u32) -> &'p str {
        self.strs[i as usize]
    }

    /// How many pairs the fusion pass collapsed.
    pub fn fused_pairs(&self) -> usize {
        self.fused_pairs
    }

    /// Patches the interned marker id into the `Marker` slot at `pc`
    /// (both streams). The runtime owns marker interning — decode leaves
    /// [`MARKER_UNPATCHED`].
    ///
    /// # Panics
    ///
    /// Panics if the slot at `pc` is not a `Marker`.
    pub fn patch_marker_id(&mut self, pc: u32, id: u32) {
        match &mut self.code[pc as usize] {
            DecodedInst::Marker { id: slot } => *slot = id,
            other => panic!("patch_marker_id at pc {pc}: not a marker ({other:?})"),
        }
        match &mut self.fused[pc as usize] {
            DecodedInst::Marker { id: slot } => *slot = id,
            other => panic!("patch_marker_id at pc {pc}: not a marker ({other:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    fn two_block_func() -> Function {
        let mut f = Function::new("t", 0);
        f.block_mut(BlockId(0)).insts.push(Inst::Nop);
        f.block_mut(BlockId(0))
            .insts
            .push(Inst::Jump { target: BlockId(1) });
        let b1 = f.add_block();
        f.block_mut(b1).insts.push(Inst::Nop);
        f.block_mut(b1).insts.push(Inst::Nop);
        f.block_mut(b1).insts.push(Inst::Return { value: None });
        f
    }

    #[test]
    fn layout_roundtrips_positions() {
        let f = two_block_func();
        let layout = FlatLayout::new(&f);
        assert_eq!(layout.num_insts(), 5);
        assert_eq!(layout.block_start(BlockId(0)), 0);
        assert_eq!(layout.block_start(BlockId(1)), 2);
        for flat in 0..5u32 {
            assert_eq!(layout.flat(layout.pos(flat)), flat);
        }
        assert_eq!(layout.flat(InstPos::new(BlockId(1), 2)), 4);
    }

    #[test]
    fn entry_instruction_is_flat_zero() {
        let f = two_block_func();
        let layout = FlatLayout::new(&f);
        assert_eq!(layout.flat(InstPos::new(BlockId(0), 0)), 0);
    }

    #[test]
    fn set_insert_contains_len() {
        let mut s = InstSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(!s.insert(0), "reinsert is not fresh");
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        assert!(!s.contains(65));
        assert!(!s.contains(10_000), "beyond capacity is absent");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn subset_and_intersection() {
        let a: InstSet = [1u32, 70].into_iter().collect();
        let b: InstSet = [1u32, 70, 100].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.intersects(&b));
        let c: InstSet = [2u32, 71].into_iter().collect();
        assert!(!a.intersects(&c));
        // Differently-sized word vectors compare correctly.
        let small: InstSet = [1u32].into_iter().collect();
        assert!(small.is_subset(&b));
        assert!(small.intersects(&b));
    }

    #[test]
    fn intersects_excluding_masks_the_site_bit() {
        let region: InstSet = [3u32, 64].into_iter().collect();
        let locks: InstSet = [3u32].into_iter().collect();
        assert!(region.intersects(&locks));
        assert!(
            !region.intersects_excluding(&locks, 3),
            "the site itself does not count"
        );
        let locks2: InstSet = [3u32, 64].into_iter().collect();
        assert!(region.intersects_excluding(&locks2, 3));
    }

    // ---- decoded-stream tests ------------------------------------------

    use crate::types::{GlobalId, Reg};
    use crate::value::{BinOpKind, CmpKind};

    #[test]
    fn decoded_inst_stays_compact() {
        // The whole point of the pre-decoded table is a fixed-size,
        // cache-friendly entry: one 32-byte slot per instruction.
        assert!(std::mem::size_of::<DecodedInst>() <= 32);
    }

    #[test]
    fn decode_resolves_operands_and_targets() {
        let mut f = Function::new("t", 0);
        let b0 = BlockId(0);
        f.block_mut(b0).insts.push(Inst::Copy {
            dst: Reg(0),
            src: Operand::Const(7),
        });
        f.block_mut(b0).insts.push(Inst::BinOp {
            dst: Reg(1),
            op: BinOpKind::Add,
            lhs: Operand::Reg(Reg(0)),
            rhs: Operand::Const(1),
        });
        // Constant-foldable binop and cmp.
        f.block_mut(b0).insts.push(Inst::BinOp {
            dst: Reg(2),
            op: BinOpKind::Mul,
            lhs: Operand::Const(6),
            rhs: Operand::Const(7),
        });
        f.block_mut(b0).insts.push(Inst::Cmp {
            dst: Reg(3),
            op: CmpKind::Lt,
            lhs: Operand::Const(1),
            rhs: Operand::Const(2),
        });
        // Constant-condition branch folds to a jump.
        let b1 = f.add_block();
        f.block_mut(b0).insts.push(Inst::Branch {
            cond: Operand::Const(1),
            then_bb: b1,
            else_bb: b0,
        });
        f.block_mut(b1).insts.push(Inst::Return { value: None });
        let layout = FlatLayout::new(&f);
        let d = DecodedFunc::decode(&f, &layout);
        assert_eq!(d.code(0), DecodedInst::CopyC { dst: 0, imm: 7 });
        assert_eq!(
            d.code(1),
            DecodedInst::BinRC {
                dst: 1,
                op: BinOpKind::Add,
                lhs: 0,
                imm: 1
            }
        );
        assert_eq!(d.code(2), DecodedInst::CopyC { dst: 2, imm: 42 });
        assert_eq!(d.code(3), DecodedInst::CopyC { dst: 3, imm: 1 });
        assert_eq!(
            d.code(4),
            DecodedInst::Jump {
                pc: layout.block_start(b1)
            }
        );
        assert_eq!(d.code(5), DecodedInst::RetN);
    }

    #[test]
    fn decode_interns_strings_and_call_args() {
        use crate::types::{FuncId, SiteId};
        let mut f = Function::new("t", 0);
        let b0 = BlockId(0);
        f.block_mut(b0).insts.push(Inst::Output {
            label: "x".into(),
            value: Operand::Const(1),
        });
        f.block_mut(b0).insts.push(Inst::Output {
            label: "x".into(),
            value: Operand::Reg(Reg(0)),
        });
        f.block_mut(b0).insts.push(Inst::Call {
            dst: Some(Reg(1)),
            callee: FuncId(3),
            args: vec![Operand::Const(9), Operand::Reg(Reg(0))],
        });
        f.block_mut(b0).insts.push(Inst::PtrGuard {
            ptr: Operand::Reg(Reg(1)),
            site: SiteId(5),
        });
        f.block_mut(b0).insts.push(Inst::Return { value: None });
        let layout = FlatLayout::new(&f);
        let d = DecodedFunc::decode(&f, &layout);
        // Duplicate labels share one string slot.
        let (i0, i1) = match (d.code(0), d.code(1)) {
            (
                DecodedInst::Output {
                    str_idx: a,
                    value: DOp::C(1),
                },
                DecodedInst::Output {
                    str_idx: b,
                    value: DOp::R(0),
                },
            ) => (a, b),
            other => panic!("unexpected decode: {other:?}"),
        };
        assert_eq!(i0, i1);
        assert_eq!(d.str_at(i0), "x");
        match d.code(2) {
            DecodedInst::Call {
                dst: 1,
                callee: 3,
                args_start,
                args_len: 2,
            } => {
                assert_eq!(d.call_arg(args_start), DOp::C(9));
                assert_eq!(d.call_arg(args_start + 1), DOp::R(0));
            }
            other => panic!("unexpected decode: {other:?}"),
        }
        assert_eq!(
            d.code(3),
            DecodedInst::PtrGuard {
                ptr: DOp::R(1),
                site: 5
            }
        );
    }

    #[test]
    fn fusion_forms_pairs_within_blocks_only() {
        let mut f = Function::new("t", 0);
        let b0 = BlockId(0);
        let g = GlobalId(2);
        // ldg r0 ; add r1 = r0, 1  -> LoadGlobalBinRC
        f.block_mut(b0).insts.push(Inst::LoadGlobal {
            dst: Reg(0),
            global: g,
        });
        f.block_mut(b0).insts.push(Inst::BinOp {
            dst: Reg(1),
            op: BinOpKind::Add,
            lhs: Operand::Reg(Reg(0)),
            rhs: Operand::Const(1),
        });
        // cmp r2 = r1 < r0 ; br r2 -> CmpBranchRR
        let b1 = f.add_block();
        let b2 = f.add_block();
        f.block_mut(b0).insts.push(Inst::Cmp {
            dst: Reg(2),
            op: CmpKind::Lt,
            lhs: Operand::Reg(Reg(1)),
            rhs: Operand::Reg(Reg(0)),
        });
        f.block_mut(b0).insts.push(Inst::Branch {
            cond: Operand::Reg(Reg(2)),
            then_bb: b1,
            else_bb: b2,
        });
        // b1 ends with a Cmp whose Branch lives in b2: must NOT fuse
        // across the block boundary even though the pcs are adjacent.
        f.block_mut(b1).insts.push(Inst::Cmp {
            dst: Reg(3),
            op: CmpKind::Eq,
            lhs: Operand::Reg(Reg(0)),
            rhs: Operand::Const(0),
        });
        f.block_mut(b2).insts.push(Inst::Branch {
            cond: Operand::Reg(Reg(3)),
            then_bb: b1,
            else_bb: b2,
        });
        let layout = FlatLayout::new(&f);
        let d = DecodedFunc::decode(&f, &layout);
        assert_eq!(d.fused_pairs(), 2);
        assert_eq!(
            d.fused(0),
            DecodedInst::LoadGlobalBinRC {
                global: 2,
                gdst: 0,
                op: BinOpKind::Add,
                dst: 1,
                imm: 1
            }
        );
        // Tail slots keep their plain decoding so mid-pair jump targets work.
        assert_eq!(d.fused(1), d.code(1));
        assert!(matches!(d.fused(2), DecodedInst::CmpBranchRR { .. }));
        assert_eq!(d.fused(3), d.code(3));
        // The cross-block pair stayed plain.
        assert_eq!(d.fused(4), d.code(4));
        assert!(matches!(d.fused(4), DecodedInst::CmpRC { .. }));
    }

    #[test]
    fn fusion_requires_tail_to_consume_head_dst() {
        let mut f = Function::new("t", 0);
        let b0 = BlockId(0);
        let b1 = f.add_block();
        // cmp r0 ; br r5 — branch reads a different register: no fusion.
        f.block_mut(b0).insts.push(Inst::Cmp {
            dst: Reg(0),
            op: CmpKind::Eq,
            lhs: Operand::Reg(Reg(1)),
            rhs: Operand::Const(0),
        });
        f.block_mut(b0).insts.push(Inst::Branch {
            cond: Operand::Reg(Reg(5)),
            then_bb: b0,
            else_bb: b1,
        });
        f.block_mut(b1).insts.push(Inst::Return { value: None });
        let layout = FlatLayout::new(&f);
        let d = DecodedFunc::decode(&f, &layout);
        assert_eq!(d.fused_pairs(), 0);
        assert_eq!(d.fused(0), d.code(0));
    }

    #[test]
    fn marker_patching_updates_both_streams() {
        let mut f = Function::new("t", 0);
        f.block_mut(BlockId(0))
            .insts
            .push(Inst::Marker { name: "m".into() });
        f.block_mut(BlockId(0))
            .insts
            .push(Inst::Return { value: None });
        let layout = FlatLayout::new(&f);
        let mut d = DecodedFunc::decode(&f, &layout);
        assert_eq!(
            d.code(0),
            DecodedInst::Marker {
                id: MARKER_UNPATCHED
            }
        );
        d.patch_marker_id(0, 4);
        assert_eq!(d.code(0), DecodedInst::Marker { id: 4 });
        assert_eq!(d.fused(0), DecodedInst::Marker { id: 4 });
    }
}
