//! Flat instruction indexing: a dense, per-function numbering of every
//! instruction position, and bitsets keyed by it.
//!
//! Both the runtime's pre-lowered instruction table and the analyses'
//! region/visited sets index instructions the same way: blocks are laid
//! out in id order, so a position `(block, inst)` maps to the `u32`
//! `block_start(block) + inst`, and the entry instruction of a valid
//! function is always flat index `0`. Sharing one numbering lets a region
//! computed by the analysis be queried in O(words) by anything holding the
//! same [`FlatLayout`].

use crate::block::Function;
use crate::cfg::InstPos;
use crate::types::BlockId;

/// The flat numbering of one function's instruction positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatLayout {
    /// Flat index of each block's first instruction, plus a final sentinel
    /// holding the total instruction count.
    block_starts: Vec<u32>,
    /// Inverse map: flat index back to `(block, inst)`.
    pos: Vec<InstPos>,
}

impl FlatLayout {
    /// Numbers `func`'s instructions: blocks in id order, entry first.
    pub fn new(func: &Function) -> Self {
        let total: usize = func.num_insts();
        let mut block_starts = Vec::with_capacity(func.blocks.len() + 1);
        let mut pos = Vec::with_capacity(total);
        let mut next = 0u32;
        for (bi, block) in func.blocks.iter().enumerate() {
            block_starts.push(next);
            for ii in 0..block.insts.len() {
                pos.push(InstPos::new(BlockId::from_index(bi), ii));
            }
            next += block.insts.len() as u32;
        }
        block_starts.push(next);
        Self { block_starts, pos }
    }

    /// Total instructions in the function.
    pub fn num_insts(&self) -> usize {
        self.pos.len()
    }

    /// Flat index of a block's first instruction.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn block_start(&self, block: BlockId) -> u32 {
        self.block_starts[block.index()]
    }

    /// Flat index of a position.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the position is past its block's end.
    pub fn flat(&self, pos: InstPos) -> u32 {
        let f = self.block_starts[pos.block.index()] + pos.inst as u32;
        debug_assert!(
            f < self.block_starts[pos.block.index() + 1],
            "position {pos:?} past the end of its block"
        );
        f
    }

    /// The position at a flat index.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range.
    pub fn pos(&self, flat: u32) -> InstPos {
        self.pos[flat as usize]
    }

    /// An empty bitset sized for this function.
    pub fn empty_set(&self) -> InstSet {
        InstSet::new(self.num_insts())
    }
}

/// A dense bitset over one function's flat instruction indices.
///
/// Replaces the `HashSet<InstPos>` region/visited sets of the analyses:
/// membership is one shift-and-mask, and whole-set queries (subset,
/// intersection) are O(words) with no per-element hashing or iteration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InstSet {
    words: Vec<u64>,
}

impl InstSet {
    /// An empty set with capacity for `n` instructions.
    pub fn new(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts an index; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the capacity the set was created with.
    pub fn insert(&mut self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, i as usize % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Membership test (out-of-capacity indices are simply absent).
    pub fn contains(&self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, i as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of members (popcount over the words).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros();
                rest &= rest - 1;
                Some(wi as u32 * 64 + b)
            })
        })
    }

    /// Whether every member of `self` is in `other`.
    pub fn is_subset(&self, other: &InstSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Whether the sets share any member — O(words), no iteration.
    pub fn intersects(&self, other: &InstSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// Whether the sets share any member other than `skip` — the
    /// iteration-free form of "does the region contain a qualifying
    /// instruction besides the site itself".
    pub fn intersects_excluding(&self, other: &InstSet, skip: u32) -> bool {
        let (sw, sb) = (skip as usize / 64, skip as usize % 64);
        self.words
            .iter()
            .zip(&other.words)
            .enumerate()
            .any(|(i, (&a, &b))| {
                let mut both = a & b;
                if i == sw {
                    both &= !(1u64 << sb);
                }
                both != 0
            })
    }
}

impl FromIterator<u32> for InstSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let items: Vec<u32> = iter.into_iter().collect();
        let cap = items.iter().map(|&i| i as usize + 1).max().unwrap_or(0);
        let mut set = InstSet::new(cap);
        for i in items {
            set.insert(i);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    fn two_block_func() -> Function {
        let mut f = Function::new("t", 0);
        f.block_mut(BlockId(0)).insts.push(Inst::Nop);
        f.block_mut(BlockId(0))
            .insts
            .push(Inst::Jump { target: BlockId(1) });
        let b1 = f.add_block();
        f.block_mut(b1).insts.push(Inst::Nop);
        f.block_mut(b1).insts.push(Inst::Nop);
        f.block_mut(b1).insts.push(Inst::Return { value: None });
        f
    }

    #[test]
    fn layout_roundtrips_positions() {
        let f = two_block_func();
        let layout = FlatLayout::new(&f);
        assert_eq!(layout.num_insts(), 5);
        assert_eq!(layout.block_start(BlockId(0)), 0);
        assert_eq!(layout.block_start(BlockId(1)), 2);
        for flat in 0..5u32 {
            assert_eq!(layout.flat(layout.pos(flat)), flat);
        }
        assert_eq!(layout.flat(InstPos::new(BlockId(1), 2)), 4);
    }

    #[test]
    fn entry_instruction_is_flat_zero() {
        let f = two_block_func();
        let layout = FlatLayout::new(&f);
        assert_eq!(layout.flat(InstPos::new(BlockId(0), 0)), 0);
    }

    #[test]
    fn set_insert_contains_len() {
        let mut s = InstSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(!s.insert(0), "reinsert is not fresh");
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        assert!(!s.contains(65));
        assert!(!s.contains(10_000), "beyond capacity is absent");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn subset_and_intersection() {
        let a: InstSet = [1u32, 70].into_iter().collect();
        let b: InstSet = [1u32, 70, 100].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.intersects(&b));
        let c: InstSet = [2u32, 71].into_iter().collect();
        assert!(!a.intersects(&c));
        // Differently-sized word vectors compare correctly.
        let small: InstSet = [1u32].into_iter().collect();
        assert!(small.is_subset(&b));
        assert!(small.intersects(&b));
    }

    #[test]
    fn intersects_excluding_masks_the_site_bit() {
        let region: InstSet = [3u32, 64].into_iter().collect();
        let locks: InstSet = [3u32].into_iter().collect();
        assert!(region.intersects(&locks));
        assert!(
            !region.intersects_excluding(&locks, 3),
            "the site itself does not count"
        );
        let locks2: InstSet = [3u32, 64].into_iter().collect();
        assert!(region.intersects_excluding(&locks2, 3));
    }
}
