//! Basic blocks and functions.

use std::fmt;

use crate::inst::Inst;
use crate::types::{BlockId, FuncId, LocalId, Reg};

/// A straight-line sequence of instructions ending in a terminator.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BasicBlock {
    /// Optional human-readable name (used by the printer).
    pub name: Option<String>,
    /// Instructions; the final one must be a terminator in a valid module.
    pub insts: Vec<Inst>,
}

impl BasicBlock {
    /// Creates an empty, unnamed block.
    pub fn new() -> Self {
        Self::default()
    }

    /// The terminator instruction, if the block has one.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|i| i.is_terminator())
    }

    /// Successor blocks of this block's terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self.terminator() {
            Some(Inst::Jump { target }) => vec![*target],
            Some(Inst::Branch {
                then_bb, else_bb, ..
            }) => {
                if then_bb == else_bb {
                    vec![*then_bb]
                } else {
                    vec![*then_bb, *else_bb]
                }
            }
            _ => Vec::new(),
        }
    }
}

/// A function: parameters, register/stack-slot counts and basic blocks.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Function {
    /// Function name, unique within the module.
    pub name: String,
    /// Number of parameters; arguments are bound to registers `0..num_params`.
    pub num_params: usize,
    /// Size of the virtual register file.
    pub num_regs: usize,
    /// Number of stack slots.
    pub num_locals: usize,
    /// Basic blocks; `BlockId(0)` is the entry block.
    pub blocks: Vec<BasicBlock>,
}

impl Function {
    /// Creates a function with one empty entry block.
    pub fn new(name: impl Into<String>, num_params: usize) -> Self {
        Self {
            name: name.into(),
            num_params,
            num_regs: num_params,
            num_locals: 0,
            blocks: vec![BasicBlock::new()],
        }
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Looks up a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Mutable block lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(BasicBlock::new());
        BlockId::from_index(self.blocks.len() - 1)
    }

    /// Allocates a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg::from_index(self.num_regs);
        self.num_regs += 1;
        r
    }

    /// Allocates a fresh stack slot.
    pub fn new_local(&mut self) -> LocalId {
        let l = LocalId::from_index(self.num_locals);
        self.num_locals += 1;
        l
    }

    /// Iterates over `(BlockId, &BasicBlock)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::from_index(i), b))
    }

    /// Total instruction count across all blocks.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fn {}(params={}, regs={}, locals={}) {{",
            self.name, self.num_params, self.num_regs, self.num_locals
        )?;
        for (id, block) in self.iter_blocks() {
            match &block.name {
                Some(n) => writeln!(f, "{id} ({n}):")?,
                None => writeln!(f, "{id}:")?,
            }
            for inst in &block.insts {
                writeln!(f, "    {inst}")?;
            }
        }
        writeln!(f, "}}")
    }
}

/// A reference to a function paired with its id — handy for diagnostics.
#[derive(Debug, Clone, Copy)]
pub struct FuncRef<'a> {
    /// The function's id in its module.
    pub id: FuncId,
    /// The function.
    pub func: &'a Function,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Operand;

    #[test]
    fn successors_of_terminators() {
        let mut b = BasicBlock::new();
        assert!(b.terminator().is_none());
        assert!(b.successors().is_empty());

        b.insts.push(Inst::Jump { target: BlockId(3) });
        assert_eq!(b.successors(), vec![BlockId(3)]);

        b.insts.pop();
        b.insts.push(Inst::Branch {
            cond: Operand::Const(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        });
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);

        b.insts.pop();
        b.insts.push(Inst::Branch {
            cond: Operand::Const(1),
            then_bb: BlockId(1),
            else_bb: BlockId(1),
        });
        assert_eq!(b.successors(), vec![BlockId(1)], "duplicate edges collapse");

        b.insts.pop();
        b.insts.push(Inst::Return { value: None });
        assert!(b.successors().is_empty());
    }

    #[test]
    fn function_allocators() {
        let mut f = Function::new("test", 2);
        assert_eq!(f.num_regs, 2, "params occupy the first registers");
        let r = f.new_reg();
        assert_eq!(r, Reg(2));
        let l = f.new_local();
        assert_eq!(l, LocalId(0));
        let b = f.add_block();
        assert_eq!(b, BlockId(1));
        assert_eq!(f.blocks.len(), 2);
        assert_eq!(f.entry(), BlockId(0));
    }

    #[test]
    fn num_insts_counts_all_blocks() {
        let mut f = Function::new("t", 0);
        f.block_mut(BlockId(0)).insts.push(Inst::Nop);
        let b1 = f.add_block();
        f.block_mut(b1).insts.push(Inst::Nop);
        f.block_mut(b1).insts.push(Inst::Return { value: None });
        assert_eq!(f.num_insts(), 3);
    }
}
