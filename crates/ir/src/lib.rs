//! # conair-ir
//!
//! The SSA-style compiler intermediate representation used by the ConAir
//! reproduction — the analog of the LLVM bitcode the original system
//! analyzed and transformed.
//!
//! The IR models exactly the program properties ConAir's algorithms are
//! stated over:
//!
//! * **Virtual registers** ([`Reg`]) vs **stack slots** ([`LocalId`]):
//!   a `Checkpoint` (the `setjmp` analog) saves the whole per-frame register
//!   file, so register writes never destroy idempotency, while stack-slot
//!   writes do (the paper's "writes to local variables that are not
//!   allocated in virtual registers").
//! * **Shared memory**: globals ([`GlobalId`]) and the heap, written by
//!   [`Inst::StoreGlobal`] / [`Inst::StorePtr`] — always
//!   idempotency-destroying, and the memory whose reads drive the
//!   Section 4.2 optimization.
//! * **Synchronization, allocation, I/O and checks** as first-class
//!   instructions so the failure-site identification of Section 3.1 is a
//!   simple classification.
//!
//! ## Example
//!
//! ```rust
//! use conair_ir::{FuncBuilder, ModuleBuilder, CmpKind, validate};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let flag = mb.global("flag", 0);
//! let mut fb = FuncBuilder::new("main", 0);
//! let v = fb.load_global(flag);
//! let ok = fb.cmp(CmpKind::Ge, v, 0);
//! fb.assert(ok, "flag must be non-negative");
//! fb.ret();
//! mb.function(fb.finish());
//! let module = mb.finish();
//! assert!(validate(&module).is_ok());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod block;
mod builder;
pub mod cfg;
pub mod flat;
mod inst;
mod module;
mod parse;
mod types;
mod validate;
mod value;

pub use block::{BasicBlock, FuncRef, Function};
pub use builder::{FuncBuilder, ModuleBuilder};
pub use cfg::{dominates, immediate_dominators, Cfg, InstPos};
pub use flat::{DOp, DecodedFunc, DecodedInst, FlatLayout, InstSet, MARKER_UNPATCHED};
pub use inst::{GuardKind, Inst, MNEMONICS, NUM_OPCODES};
pub use module::{GlobalDecl, LockDecl, Module};
pub use parse::{parse_module, ParseError};
pub use types::{
    BlockId, FailureKind, FuncId, GlobalId, Loc, LocalId, LockId, PointId, Reg, SiteId,
};
pub use validate::{validate, validate_hardened, validate_with, ValidateError, ValidateOptions};
pub use value::{BinOpKind, CmpKind, Operand};
