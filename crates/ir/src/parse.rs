//! Textual IR parser.
//!
//! Parses exactly the format produced by the `Display` impls, so that
//! `parse(&module.to_string())` roundtrips. The format is line-oriented:
//!
//! ```text
//! module demo {
//! global flag [1 x i64] = 0
//! lock m
//! fn main(params=0, regs=2, locals=0) {
//! bb0:
//!     %r0 = ldg @g0
//!     %r1 = cmp.ne %r0, 0
//!     assert %r1, "flag set"
//!     ret
//! }
//! }
//! ```

use std::fmt;

use crate::block::Function;
use crate::inst::{GuardKind, Inst};
use crate::module::Module;
use crate::types::{BlockId, FuncId, GlobalId, LocalId, LockId, PointId, Reg, SiteId};
use crate::value::{BinOpKind, CmpKind, Operand};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a module from its textual form.
///
/// # Errors
///
/// Returns the first syntax error encountered with its line number.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    Parser::new(text).module()
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with(';'))
            .collect();
        Self { lines, pos: 0 }
    }

    fn err(&self, line: usize, msg: impl Into<String>) -> ParseError {
        ParseError {
            line,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    fn expect_line(&mut self, what: &str) -> Result<(usize, &'a str), ParseError> {
        self.next().ok_or_else(|| {
            self.err(
                self.lines.last().map_or(0, |l| l.0),
                format!("expected {what}, found end of input"),
            )
        })
    }

    fn module(&mut self) -> Result<Module, ParseError> {
        let (ln, header) = self.expect_line("module header")?;
        let name = header
            .strip_prefix("module ")
            .and_then(|r| r.strip_suffix('{'))
            .map(str::trim)
            .ok_or_else(|| self.err(ln, "expected `module <name> {`"))?;
        let mut module = Module::new(name);
        loop {
            let (ln, line) = self.expect_line("module item or `}`")?;
            if line == "}" {
                return Ok(module);
            }
            if let Some(rest) = line.strip_prefix("global ") {
                // `<name> [<words> x i64] = <init>`
                let (gname, rest) = rest
                    .split_once(" [")
                    .ok_or_else(|| self.err(ln, "malformed global"))?;
                let (words, rest) = rest
                    .split_once(" x i64] = ")
                    .ok_or_else(|| self.err(ln, "malformed global"))?;
                let words: usize = words
                    .parse()
                    .map_err(|_| self.err(ln, "bad global word count"))?;
                let init: i64 = rest.parse().map_err(|_| self.err(ln, "bad global init"))?;
                module.add_global_array(gname.trim(), words, init);
            } else if let Some(rest) = line.strip_prefix("lock ") {
                module.add_lock(rest.trim());
            } else if line.starts_with("fn ") {
                let func = self.function(ln, line)?;
                module.add_function(func);
            } else {
                return Err(self.err(ln, format!("unexpected line `{line}`")));
            }
        }
    }

    fn function(&mut self, ln: usize, header: &str) -> Result<Function, ParseError> {
        // `fn <name>(params=P, regs=R, locals=L) {`
        let rest = header
            .strip_prefix("fn ")
            .and_then(|r| r.strip_suffix('{'))
            .map(str::trim)
            .ok_or_else(|| self.err(ln, "expected `fn <name>(...) {`"))?;
        let (name, args) = rest
            .split_once('(')
            .ok_or_else(|| self.err(ln, "malformed function header"))?;
        let args = args
            .strip_suffix(')')
            .ok_or_else(|| self.err(ln, "malformed function header"))?;
        let mut params = 0;
        let mut regs = 0;
        let mut locals = 0;
        for part in args.split(',') {
            let (k, v) = part
                .trim()
                .split_once('=')
                .ok_or_else(|| self.err(ln, "malformed header field"))?;
            let v: usize = v.parse().map_err(|_| self.err(ln, "bad header number"))?;
            match k {
                "params" => params = v,
                "regs" => regs = v,
                "locals" => locals = v,
                _ => return Err(self.err(ln, format!("unknown header field `{k}`"))),
            }
        }
        let mut func = Function::new(name.trim(), params);
        func.num_regs = regs.max(params);
        func.num_locals = locals;
        func.blocks.clear();

        loop {
            let (ln, line) = self.expect_line("block label, instruction or `}`")?;
            if line == "}" {
                if func.blocks.is_empty() {
                    func.blocks.push(crate::block::BasicBlock::new());
                }
                return Ok(func);
            }
            if let Some(label) = line.strip_suffix(':') {
                // `bbN` or `bbN (name)`
                let (id_part, bname) = match label.split_once(" (") {
                    Some((id, n)) => (id, n.strip_suffix(')').map(str::to_owned)),
                    None => (label, None),
                };
                let idx: usize = id_part
                    .strip_prefix("bb")
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| self.err(ln, "bad block label"))?;
                if idx != func.blocks.len() {
                    return Err(self.err(ln, "block labels must be dense and in order"));
                }
                let mut b = crate::block::BasicBlock::new();
                b.name = bname;
                func.blocks.push(b);
            } else {
                let inst = parse_inst(line).map_err(|m| self.err(ln, m))?;
                let block = func
                    .blocks
                    .last_mut()
                    .ok_or_else(|| self.err(ln, "instruction before first block label"))?;
                block.insts.push(inst);
            }
        }
    }
}

fn parse_operand(tok: &str) -> Result<Operand, String> {
    let tok = tok.trim();
    if let Some(r) = tok.strip_prefix("%r") {
        let n: u32 = r.parse().map_err(|_| format!("bad register `{tok}`"))?;
        return Ok(Operand::Reg(Reg(n)));
    }
    tok.parse::<i64>()
        .map(Operand::Const)
        .map_err(|_| format!("bad operand `{tok}`"))
}

fn parse_reg(tok: &str) -> Result<Reg, String> {
    match parse_operand(tok)? {
        Operand::Reg(r) => Ok(r),
        Operand::Const(_) => Err(format!("expected register, found `{tok}`")),
    }
}

fn parse_id<T: From<u32>>(tok: &str, prefix: &str) -> Result<T, String> {
    tok.trim()
        .strip_prefix(prefix)
        .and_then(|n| n.parse::<u32>().ok())
        .map(T::from)
        .ok_or_else(|| format!("expected `{prefix}N`, found `{tok}`"))
}

fn parse_string(tok: &str) -> Result<String, String> {
    let t = tok.trim();
    t.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_owned)
        .ok_or_else(|| format!("expected quoted string, found `{tok}`"))
}

/// Splits `a, b` into two comma-separated pieces (the second may itself
/// contain commas only when it is a final quoted string — handled by
/// splitting at the first comma).
fn split2(s: &str) -> Result<(&str, &str), String> {
    s.split_once(',')
        .map(|(a, b)| (a.trim(), b.trim()))
        .ok_or_else(|| format!("expected two comma-separated operands in `{s}`"))
}

fn parse_inst(line: &str) -> Result<Inst, String> {
    // `%rN = <op> ...` or `<op> ...`
    if let Some((dst, rest)) = line.split_once(" = ") {
        let dst = parse_reg(dst)?;
        let (op, args) = rest.split_once(' ').unwrap_or((rest, ""));
        return match op {
            "copy" => Ok(Inst::Copy {
                dst,
                src: parse_operand(args)?,
            }),
            "ldg" => Ok(Inst::LoadGlobal {
                dst,
                global: parse_id::<GlobalId>(args, "@g")?,
            }),
            "addrg" => Ok(Inst::AddrOfGlobal {
                dst,
                global: parse_id::<GlobalId>(args, "@g")?,
            }),
            "ldp" => Ok(Inst::LoadPtr {
                dst,
                ptr: parse_operand(args)?,
            }),
            "ldl" => Ok(Inst::LoadLocal {
                dst,
                local: parse_id::<LocalId>(args, "%s")?,
            }),
            "alloc" => Ok(Inst::Alloc {
                dst,
                words: parse_operand(args)?,
            }),
            "call" => parse_call(Some(dst), args),
            _ if op.starts_with("cmp.") => {
                let kind = CmpKind::from_mnemonic(&op[4..])
                    .ok_or_else(|| format!("unknown comparison `{op}`"))?;
                let (l, r) = split2(args)?;
                Ok(Inst::Cmp {
                    dst,
                    op: kind,
                    lhs: parse_operand(l)?,
                    rhs: parse_operand(r)?,
                })
            }
            _ => {
                let kind =
                    BinOpKind::from_mnemonic(op).ok_or_else(|| format!("unknown opcode `{op}`"))?;
                let (l, r) = split2(args)?;
                Ok(Inst::BinOp {
                    dst,
                    op: kind,
                    lhs: parse_operand(l)?,
                    rhs: parse_operand(r)?,
                })
            }
        };
    }

    let (op, args) = line.split_once(' ').unwrap_or((line, ""));
    match op {
        "stg" => {
            let (g, v) = split2(args)?;
            Ok(Inst::StoreGlobal {
                global: parse_id::<GlobalId>(g, "@g")?,
                src: parse_operand(v)?,
            })
        }
        "stp" => {
            let (p, v) = split2(args)?;
            Ok(Inst::StorePtr {
                ptr: parse_operand(p)?,
                src: parse_operand(v)?,
            })
        }
        "stl" => {
            let (l, v) = split2(args)?;
            Ok(Inst::StoreLocal {
                local: parse_id::<LocalId>(l, "%s")?,
                src: parse_operand(v)?,
            })
        }
        "free" => Ok(Inst::Free {
            ptr: parse_operand(args)?,
        }),
        "lock" => Ok(Inst::Lock {
            lock: parse_id::<LockId>(args, "@L")?,
        }),
        "unlock" => Ok(Inst::Unlock {
            lock: parse_id::<LockId>(args, "@L")?,
        }),
        "timedlock" => {
            let (l, s) = args
                .split_once(" !")
                .ok_or_else(|| "malformed timedlock".to_string())?;
            Ok(Inst::TimedLock {
                lock: parse_id::<LockId>(l, "@L")?,
                site: parse_id::<SiteId>(s, "site")?,
            })
        }
        "output" => {
            let (label, v) = split2(args)?;
            Ok(Inst::Output {
                label: parse_string(label)?,
                value: parse_operand(v)?,
            })
        }
        "assert" => {
            let (c, m) = split2(args)?;
            Ok(Inst::Assert {
                cond: parse_operand(c)?,
                msg: parse_string(m)?,
            })
        }
        "oassert" => {
            let (c, m) = split2(args)?;
            Ok(Inst::OutputAssert {
                cond: parse_operand(c)?,
                msg: parse_string(m)?,
            })
        }
        "jump" => Ok(Inst::Jump {
            target: parse_id::<BlockId>(args, "bb")?,
        }),
        "br" => {
            let mut parts = args.splitn(3, ',').map(str::trim);
            let cond = parse_operand(parts.next().ok_or("missing branch cond")?)?;
            let t = parse_id::<BlockId>(parts.next().ok_or("missing then target")?, "bb")?;
            let e = parse_id::<BlockId>(parts.next().ok_or("missing else target")?, "bb")?;
            Ok(Inst::Branch {
                cond,
                then_bb: t,
                else_bb: e,
            })
        }
        "ret" => {
            if args.is_empty() {
                Ok(Inst::Return { value: None })
            } else {
                Ok(Inst::Return {
                    value: Some(parse_operand(args)?),
                })
            }
        }
        "call" => parse_call(None, args),
        "marker" => Ok(Inst::Marker {
            name: parse_string(args)?,
        }),
        "nop" => Ok(Inst::Nop),
        "checkpoint" => Ok(Inst::Checkpoint {
            point: parse_id::<PointId>(args.trim_start_matches('!'), "pt")?,
        }),
        "ptrguard" => {
            let (p, s) = args
                .split_once(" !")
                .ok_or_else(|| "malformed ptrguard".to_string())?;
            Ok(Inst::PtrGuard {
                ptr: parse_operand(p)?,
                site: parse_id::<SiteId>(s, "site")?,
            })
        }
        _ if op.starts_with("failguard.") => {
            let kind = match &op[10..] {
                "assert" => GuardKind::Assert,
                "output" => GuardKind::WrongOutput,
                other => return Err(format!("unknown failguard kind `{other}`")),
            };
            let (c, rest) = args
                .split_once(" !")
                .ok_or_else(|| "malformed failguard".to_string())?;
            let (s, m) = split2(rest)?;
            Ok(Inst::FailGuard {
                kind,
                cond: parse_operand(c)?,
                site: parse_id::<SiteId>(s, "site")?,
                msg: parse_string(m)?,
            })
        }
        _ => Err(format!("unknown opcode `{op}`")),
    }
}

fn parse_call(dst: Option<Reg>, args: &str) -> Result<Inst, String> {
    // `@fN(a, b, c)`
    let (callee, rest) = args
        .split_once('(')
        .ok_or_else(|| "malformed call".to_string())?;
    let rest = rest
        .strip_suffix(')')
        .ok_or_else(|| "malformed call".to_string())?;
    let callee = parse_id::<FuncId>(callee, "@f")?;
    let mut parsed_args = Vec::new();
    if !rest.trim().is_empty() {
        for a in rest.split(',') {
            parsed_args.push(parse_operand(a)?);
        }
    }
    Ok(Inst::Call {
        dst,
        callee,
        args: parsed_args,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FuncBuilder, ModuleBuilder};
    use crate::value::CmpKind;

    fn roundtrip(m: &Module) {
        let text = m.to_string();
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        assert_eq!(&parsed, m, "roundtrip mismatch for:\n{text}");
    }

    #[test]
    fn roundtrip_rich_module() {
        let mut mb = ModuleBuilder::new("demo");
        let g = mb.global("flag", 0);
        let arr = mb.global_array("buf", 8, -1);
        let l = mb.lock("m");
        let helper = mb.declare_function("helper", 2);

        let mut fb = FuncBuilder::new("main", 0);
        fb.name_block("entry");
        fb.marker("start");
        let v = fb.load_global(g);
        let c = fb.cmp(CmpKind::Ne, v, 0);
        let then_bb = fb.new_block();
        let else_bb = fb.new_block();
        fb.branch(c, then_bb, else_bb);
        fb.switch_to(then_bb);
        let a = fb.addr_of_global(arr);
        let p = fb.add(a, 2);
        let x = fb.load_ptr(p);
        fb.store_ptr(p, x);
        fb.lock(l);
        let h = fb.alloc(4);
        fb.free(h);
        fb.unlock(l);
        fb.output("result", x);
        fb.assert(c, "flag nonzero");
        fb.output_assert(c, "output ok");
        let r = fb.call(helper, vec![Operand::Reg(x), Operand::Const(7)]);
        fb.ret_value(r);
        fb.switch_to(else_bb);
        let slot = fb.local();
        fb.store_local(slot, 3);
        let lv = fb.load_local(slot);
        fb.call_void(helper, vec![Operand::Reg(lv), Operand::Const(0)]);
        fb.nop();
        fb.ret();
        mb.function(fb.finish());
        roundtrip(&mb.finish());
    }

    #[test]
    fn roundtrip_hardened_insts() {
        let mut m = Module::new("h");
        m.add_lock("l");
        let mut f = Function::new("main", 0);
        f.num_regs = 2;
        f.blocks[0].insts = vec![
            Inst::Checkpoint { point: PointId(3) },
            Inst::TimedLock {
                lock: LockId(0),
                site: SiteId(1),
            },
            Inst::FailGuard {
                kind: GuardKind::Assert,
                cond: Operand::Reg(Reg(0)),
                site: SiteId(2),
                msg: "cond".into(),
            },
            Inst::PtrGuard {
                ptr: Operand::Reg(Reg(1)),
                site: SiteId(0),
            },
            Inst::Return { value: None },
        ];
        m.add_function(f);
        roundtrip(&m);
    }

    #[test]
    fn parse_errors_carry_lines() {
        let err = parse_module("module x {\nbogus line\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unexpected line"));
    }

    #[test]
    fn parse_rejects_bad_opcode() {
        let text = "module x {\nfn main(params=0, regs=0, locals=0) {\nbb0:\n    frobnicate\n}\n}";
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("unknown opcode"));
    }

    #[test]
    fn parse_rejects_sparse_blocks() {
        let text = "module x {\nfn main(params=0, regs=0, locals=0) {\nbb1:\n    ret\n}\n}";
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("dense"));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "; leading comment\nmodule x {\n\n; another\nfn main(params=0, regs=0, locals=0) {\nbb0:\n    ret\n}\n}";
        let m = parse_module(text).expect("parses");
        assert_eq!(m.functions.len(), 1);
    }
}
