//! Module validation.
//!
//! A valid module is one the interpreter can execute without internal
//! panics: all ids in range, all blocks terminated (with the terminator the
//! final instruction), markers unique, and hardened-only instructions absent
//! unless explicitly allowed.

use std::collections::HashSet;
use std::fmt;

use crate::inst::Inst;
use crate::module::Module;
use crate::types::{BlockId, FuncId, Loc};
use crate::value::Operand;

/// A single validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Where the error was found (block-granular when `inst` is the block's
    /// length).
    pub loc: Loc,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.loc, self.message)
    }
}

impl std::error::Error for ValidateError {}

/// Options for [`validate_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidateOptions {
    /// Allow transform-generated instructions (checkpoints, guards,
    /// timed locks). Set for hardened modules.
    pub allow_hardened: bool,
}

/// Validates `module` with default options (front-end modules: no
/// transform-generated instructions allowed).
///
/// # Errors
///
/// Returns every violation found, not only the first.
pub fn validate(module: &Module) -> Result<(), Vec<ValidateError>> {
    validate_with(module, ValidateOptions::default())
}

/// Validates a hardened module (transform-generated instructions allowed).
///
/// # Errors
///
/// Returns every violation found.
pub fn validate_hardened(module: &Module) -> Result<(), Vec<ValidateError>> {
    validate_with(
        module,
        ValidateOptions {
            allow_hardened: true,
        },
    )
}

/// Validates `module` under `options`.
///
/// # Errors
///
/// Returns every violation found.
pub fn validate_with(module: &Module, options: ValidateOptions) -> Result<(), Vec<ValidateError>> {
    let mut errors = Vec::new();
    let mut seen_markers: HashSet<&str> = HashSet::new();
    let mut seen_funcs: HashSet<&str> = HashSet::new();

    for (fi, func) in module.functions.iter().enumerate() {
        let fid = FuncId::from_index(fi);
        if !seen_funcs.insert(func.name.as_str()) {
            errors.push(ValidateError {
                loc: Loc::new(fid, BlockId(0), 0),
                message: format!("duplicate function name `{}`", func.name),
            });
        }
        if func.num_params > func.num_regs {
            errors.push(ValidateError {
                loc: Loc::new(fid, BlockId(0), 0),
                message: format!(
                    "num_params ({}) exceeds num_regs ({})",
                    func.num_params, func.num_regs
                ),
            });
        }
        if func.blocks.is_empty() {
            errors.push(ValidateError {
                loc: Loc::new(fid, BlockId(0), 0),
                message: "function has no blocks".into(),
            });
            continue;
        }
        for (bi, block) in func.blocks.iter().enumerate() {
            let bid = BlockId::from_index(bi);
            match block.insts.last() {
                Some(t) if t.is_terminator() => {}
                _ => errors.push(ValidateError {
                    loc: Loc::new(fid, bid, block.insts.len()),
                    message: "block does not end in a terminator".into(),
                }),
            }
            for (ii, inst) in block.insts.iter().enumerate() {
                let loc = Loc::new(fid, bid, ii);
                if inst.is_terminator() && ii + 1 != block.insts.len() {
                    errors.push(ValidateError {
                        loc,
                        message: "terminator not at end of block".into(),
                    });
                }
                if inst.is_transform_generated() && !options.allow_hardened {
                    errors.push(ValidateError {
                        loc,
                        message: format!(
                            "transform-generated instruction `{}` in front-end module",
                            inst.mnemonic()
                        ),
                    });
                }
                if let Some(d) = inst.def() {
                    if d.index() >= func.num_regs {
                        errors.push(ValidateError {
                            loc,
                            message: format!("register {d} out of range"),
                        });
                    }
                }
                for u in inst.uses() {
                    if let Operand::Reg(r) = u {
                        if r.index() >= func.num_regs {
                            errors.push(ValidateError {
                                loc,
                                message: format!("register {r} out of range"),
                            });
                        }
                    }
                }
                match inst {
                    Inst::LoadGlobal { global, .. }
                    | Inst::StoreGlobal { global, .. }
                    | Inst::AddrOfGlobal { global, .. }
                        if global.index() >= module.globals.len() =>
                    {
                        errors.push(ValidateError {
                            loc,
                            message: format!("global {global} out of range"),
                        });
                    }
                    Inst::LoadLocal { local, .. } | Inst::StoreLocal { local, .. }
                        if local.index() >= func.num_locals =>
                    {
                        errors.push(ValidateError {
                            loc,
                            message: format!("local {local} out of range"),
                        });
                    }
                    Inst::Lock { lock } | Inst::Unlock { lock } | Inst::TimedLock { lock, .. }
                        if lock.index() >= module.locks.len() =>
                    {
                        errors.push(ValidateError {
                            loc,
                            message: format!("lock {lock} out of range"),
                        });
                    }
                    Inst::Jump { target } if target.index() >= func.blocks.len() => {
                        errors.push(ValidateError {
                            loc,
                            message: format!("jump target {target} out of range"),
                        });
                    }
                    Inst::Branch {
                        then_bb, else_bb, ..
                    } => {
                        for t in [then_bb, else_bb] {
                            if t.index() >= func.blocks.len() {
                                errors.push(ValidateError {
                                    loc,
                                    message: format!("branch target {t} out of range"),
                                });
                            }
                        }
                    }
                    Inst::Call { callee, args, .. } => {
                        if callee.index() >= module.functions.len() {
                            errors.push(ValidateError {
                                loc,
                                message: format!("callee {callee} out of range"),
                            });
                        } else {
                            let want = module.func(*callee).num_params;
                            if args.len() != want {
                                errors.push(ValidateError {
                                    loc,
                                    message: format!(
                                        "call to `{}` passes {} args, expects {}",
                                        module.func(*callee).name,
                                        args.len(),
                                        want
                                    ),
                                });
                            }
                        }
                    }
                    Inst::Marker { name } if !seen_markers.insert(name.as_str()) => {
                        errors.push(ValidateError {
                            loc,
                            message: format!("duplicate marker `{name}`"),
                        });
                    }
                    _ => {}
                }
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Function;
    use crate::types::{GlobalId, LocalId, LockId, PointId, Reg};

    fn module_with(insts: Vec<Inst>) -> Module {
        let mut m = Module::new("t");
        let mut f = Function::new("main", 0);
        f.num_regs = 8;
        f.num_locals = 2;
        f.blocks[0].insts = insts;
        m.add_function(f);
        m
    }

    #[test]
    fn valid_module_passes() {
        let m = module_with(vec![Inst::Nop, Inst::Return { value: None }]);
        assert!(validate(&m).is_ok());
    }

    #[test]
    fn missing_terminator_rejected() {
        let m = module_with(vec![Inst::Nop]);
        let errs = validate(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("terminator")));
    }

    #[test]
    fn terminator_mid_block_rejected() {
        let m = module_with(vec![
            Inst::Return { value: None },
            Inst::Nop,
            Inst::Return { value: None },
        ]);
        let errs = validate(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("terminator not at end")));
    }

    #[test]
    fn out_of_range_ids_rejected() {
        let m = module_with(vec![
            Inst::LoadGlobal {
                dst: Reg(0),
                global: GlobalId(5),
            },
            Inst::StoreLocal {
                local: LocalId(9),
                src: Operand::Const(0),
            },
            Inst::Lock { lock: LockId(0) },
            Inst::Jump { target: BlockId(7) },
        ]);
        let errs = validate(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("global")));
        assert!(errs.iter().any(|e| e.message.contains("local")));
        assert!(errs.iter().any(|e| e.message.contains("lock")));
        assert!(errs.iter().any(|e| e.message.contains("jump target")));
    }

    #[test]
    fn register_range_checked() {
        let m = module_with(vec![
            Inst::Copy {
                dst: Reg(100),
                src: Operand::Reg(Reg(99)),
            },
            Inst::Return { value: None },
        ]);
        let errs = validate(&m).unwrap_err();
        assert_eq!(
            errs.iter()
                .filter(|e| e.message.contains("out of range"))
                .count(),
            2
        );
    }

    #[test]
    fn call_arity_checked() {
        let mut m = module_with(vec![
            Inst::Call {
                dst: None,
                callee: FuncId(1),
                args: vec![Operand::Const(1)],
            },
            Inst::Return { value: None },
        ]);
        let mut callee = Function::new("two_params", 2);
        callee.blocks[0].insts.push(Inst::Return { value: None });
        m.add_function(callee);
        let errs = validate(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("expects 2")));
    }

    #[test]
    fn hardened_insts_gated() {
        let m = module_with(vec![
            Inst::Checkpoint { point: PointId(0) },
            Inst::Return { value: None },
        ]);
        assert!(validate(&m).is_err());
        assert!(validate_hardened(&m).is_ok());
    }

    #[test]
    fn duplicate_markers_rejected() {
        let m = module_with(vec![
            Inst::Marker { name: "a".into() },
            Inst::Marker { name: "a".into() },
            Inst::Return { value: None },
        ]);
        let errs = validate(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("duplicate marker")));
    }

    #[test]
    fn duplicate_function_names_rejected() {
        let mut m = module_with(vec![Inst::Return { value: None }]);
        let mut f = Function::new("main", 0);
        f.blocks[0].insts.push(Inst::Return { value: None });
        m.add_function(f);
        let errs = validate(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("duplicate function name")));
    }
}
