//! Ergonomic construction of functions and modules.
//!
//! [`FuncBuilder`] maintains a cursor (current block) and exposes one method
//! per instruction; every method that produces a value allocates and returns
//! a fresh virtual register. Workloads in `conair-workloads` are written
//! entirely against this API.

use crate::block::Function;
use crate::inst::Inst;
use crate::module::Module;
use crate::types::{BlockId, FuncId, GlobalId, LocalId, LockId, Reg};
use crate::value::{BinOpKind, CmpKind, Operand};

/// Incremental builder for one [`Function`].
#[derive(Debug)]
pub struct FuncBuilder {
    func: Function,
    cursor: BlockId,
}

impl FuncBuilder {
    /// Starts a function with `num_params` parameters bound to the first
    /// registers.
    pub fn new(name: impl Into<String>, num_params: usize) -> Self {
        Self {
            func: Function::new(name, num_params),
            cursor: BlockId(0),
        }
    }

    /// The `i`-th parameter register.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> Reg {
        assert!(i < self.func.num_params, "parameter index out of range");
        Reg::from_index(i)
    }

    /// Creates a new (empty) block without moving the cursor.
    pub fn new_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Moves the cursor: subsequent instructions append to `block`.
    pub fn switch_to(&mut self, block: BlockId) -> &mut Self {
        assert!(
            block.index() < self.func.blocks.len(),
            "switch_to: unknown block"
        );
        self.cursor = block;
        self
    }

    /// The block the cursor is currently in.
    pub fn current_block(&self) -> BlockId {
        self.cursor
    }

    /// Names the current block (printer cosmetics).
    pub fn name_block(&mut self, name: impl Into<String>) -> &mut Self {
        self.func.block_mut(self.cursor).name = Some(name.into());
        self
    }

    /// Allocates a stack slot.
    pub fn local(&mut self) -> LocalId {
        self.func.new_local()
    }

    /// Appends a raw instruction at the cursor.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        let cur = self.cursor;
        self.func.block_mut(cur).insts.push(inst);
        self
    }

    fn fresh(&mut self) -> Reg {
        self.func.new_reg()
    }

    // ---- value-producing instructions -------------------------------------

    /// `dst = src` (constant or register copy).
    pub fn copy(&mut self, src: impl Into<Operand>) -> Reg {
        let dst = self.fresh();
        self.push(Inst::Copy {
            dst,
            src: src.into(),
        });
        dst
    }

    /// `dst = op(lhs, rhs)`.
    pub fn binop(
        &mut self,
        op: BinOpKind,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> Reg {
        let dst = self.fresh();
        self.push(Inst::BinOp {
            dst,
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
        dst
    }

    /// `dst = lhs + rhs`.
    pub fn add(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binop(BinOpKind::Add, lhs, rhs)
    }

    /// `dst = lhs - rhs`.
    pub fn sub(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binop(BinOpKind::Sub, lhs, rhs)
    }

    /// `dst = lhs * rhs`.
    pub fn mul(&mut self, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        self.binop(BinOpKind::Mul, lhs, rhs)
    }

    /// `dst = cmp(lhs, rhs)`.
    pub fn cmp(&mut self, op: CmpKind, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        let dst = self.fresh();
        self.push(Inst::Cmp {
            dst,
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
        dst
    }

    /// `dst = global`.
    pub fn load_global(&mut self, global: GlobalId) -> Reg {
        let dst = self.fresh();
        self.push(Inst::LoadGlobal { dst, global });
        dst
    }

    /// `dst = &global`.
    pub fn addr_of_global(&mut self, global: GlobalId) -> Reg {
        let dst = self.fresh();
        self.push(Inst::AddrOfGlobal { dst, global });
        dst
    }

    /// `dst = *ptr`.
    pub fn load_ptr(&mut self, ptr: impl Into<Operand>) -> Reg {
        let dst = self.fresh();
        self.push(Inst::LoadPtr {
            dst,
            ptr: ptr.into(),
        });
        dst
    }

    /// `dst = local`.
    pub fn load_local(&mut self, local: LocalId) -> Reg {
        let dst = self.fresh();
        self.push(Inst::LoadLocal { dst, local });
        dst
    }

    /// `dst = malloc(words)`.
    pub fn alloc(&mut self, words: impl Into<Operand>) -> Reg {
        let dst = self.fresh();
        self.push(Inst::Alloc {
            dst,
            words: words.into(),
        });
        dst
    }

    /// `dst = call callee(args)`.
    pub fn call(&mut self, callee: FuncId, args: Vec<Operand>) -> Reg {
        let dst = self.fresh();
        self.push(Inst::Call {
            dst: Some(dst),
            callee,
            args,
        });
        dst
    }

    // ---- effect instructions ------------------------------------------------

    /// `global = src`.
    pub fn store_global(&mut self, global: GlobalId, src: impl Into<Operand>) -> &mut Self {
        self.push(Inst::StoreGlobal {
            global,
            src: src.into(),
        })
    }

    /// `*ptr = src`.
    pub fn store_ptr(&mut self, ptr: impl Into<Operand>, src: impl Into<Operand>) -> &mut Self {
        self.push(Inst::StorePtr {
            ptr: ptr.into(),
            src: src.into(),
        })
    }

    /// `local = src`.
    pub fn store_local(&mut self, local: LocalId, src: impl Into<Operand>) -> &mut Self {
        self.push(Inst::StoreLocal {
            local,
            src: src.into(),
        })
    }

    /// `free(ptr)`.
    pub fn free(&mut self, ptr: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Free { ptr: ptr.into() })
    }

    /// `pthread_mutex_lock(lock)`.
    pub fn lock(&mut self, lock: LockId) -> &mut Self {
        self.push(Inst::Lock { lock })
    }

    /// `pthread_mutex_unlock(lock)`.
    pub fn unlock(&mut self, lock: LockId) -> &mut Self {
        self.push(Inst::Unlock { lock })
    }

    /// Emit `value` on the output log under `label`.
    pub fn output(&mut self, label: impl Into<String>, value: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Output {
            label: label.into(),
            value: value.into(),
        })
    }

    /// `assert(cond)`.
    pub fn assert(&mut self, cond: impl Into<Operand>, msg: impl Into<String>) -> &mut Self {
        self.push(Inst::Assert {
            cond: cond.into(),
            msg: msg.into(),
        })
    }

    /// Output-correctness oracle (wrong-output failure site).
    pub fn output_assert(&mut self, cond: impl Into<Operand>, msg: impl Into<String>) -> &mut Self {
        self.push(Inst::OutputAssert {
            cond: cond.into(),
            msg: msg.into(),
        })
    }

    /// `call callee(args)` discarding the result.
    pub fn call_void(&mut self, callee: FuncId, args: Vec<Operand>) -> &mut Self {
        self.push(Inst::Call {
            dst: None,
            callee,
            args,
        })
    }

    /// Named no-op for schedule scripts / fix-mode site selection.
    pub fn marker(&mut self, name: impl Into<String>) -> &mut Self {
        self.push(Inst::Marker { name: name.into() })
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }

    // ---- control flow --------------------------------------------------------

    /// Unconditional jump; leaves the cursor unchanged.
    pub fn jump(&mut self, target: BlockId) -> &mut Self {
        self.push(Inst::Jump { target })
    }

    /// Conditional branch; leaves the cursor unchanged.
    pub fn branch(
        &mut self,
        cond: impl Into<Operand>,
        then_bb: BlockId,
        else_bb: BlockId,
    ) -> &mut Self {
        self.push(Inst::Branch {
            cond: cond.into(),
            then_bb,
            else_bb,
        })
    }

    /// `ret` (no value).
    pub fn ret(&mut self) -> &mut Self {
        self.push(Inst::Return { value: None })
    }

    /// `ret value`.
    pub fn ret_value(&mut self, value: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Return {
            value: Some(value.into()),
        })
    }

    /// Builds a counted loop: calls `body` once to emit the loop body, with
    /// the induction register counting `0..count`. The cursor ends in the
    /// block following the loop. Returns the induction register.
    pub fn counted_loop(
        &mut self,
        count: impl Into<Operand>,
        body: impl FnOnce(&mut Self, Reg),
    ) -> Reg {
        let count = count.into();
        // Induction variable lives in a stack slot so the loop is genuinely
        // non-idempotent (as real loops compiled without SSA registers are);
        // the current value is re-loaded into a register each iteration.
        let slot = self.local();
        let i_reg = self.fresh();
        self.store_local(slot, 0);
        let head = self.new_block();
        let body_bb = self.new_block();
        let exit = self.new_block();
        self.jump(head);
        self.switch_to(head);
        self.push(Inst::LoadLocal {
            dst: i_reg,
            local: slot,
        });
        let cond = self.cmp(CmpKind::Lt, i_reg, count);
        self.branch(cond, body_bb, exit);
        self.switch_to(body_bb);
        body(self, i_reg);
        let next = self.add(i_reg, 1);
        self.store_local(slot, next);
        self.jump(head);
        self.switch_to(exit);
        i_reg
    }

    /// Finishes the function.
    pub fn finish(self) -> Function {
        self.func
    }
}

/// Convenience wrapper for building a module and registering functions.
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Starts an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            module: Module::new(name),
        }
    }

    /// Declares a single-word global.
    pub fn global(&mut self, name: impl Into<String>, init: i64) -> GlobalId {
        self.module.add_global(name, init)
    }

    /// Declares a multi-word global.
    pub fn global_array(&mut self, name: impl Into<String>, words: usize, init: i64) -> GlobalId {
        self.module.add_global_array(name, words, init)
    }

    /// Declares a mutex.
    pub fn lock(&mut self, name: impl Into<String>) -> LockId {
        self.module.add_lock(name)
    }

    /// Reserves a function id before its body exists, enabling (mutual)
    /// recursion and forward references. The placeholder body is a bare
    /// `ret`.
    pub fn declare_function(&mut self, name: impl Into<String>, num_params: usize) -> FuncId {
        let mut f = Function::new(name, num_params);
        f.blocks[0].insts.push(Inst::Return { value: None });
        self.module.add_function(f)
    }

    /// Replaces a declared function's body with a built one.
    ///
    /// # Panics
    ///
    /// Panics if the names disagree — that is almost always a wiring bug.
    pub fn define_function(&mut self, id: FuncId, func: Function) {
        assert_eq!(
            self.module.func(id).name,
            func.name,
            "define_function: name mismatch"
        );
        *self.module.func_mut(id) = func;
    }

    /// Adds a finished function.
    pub fn function(&mut self, func: Function) -> FuncId {
        self.module.add_function(func)
    }

    /// Finishes the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn straight_line_function_builds() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("x", 5);
        let mut fb = FuncBuilder::new("main", 0);
        let v = fb.load_global(g);
        let w = fb.add(v, 1);
        fb.store_global(g, w);
        fb.ret();
        mb.function(fb.finish());
        let m = mb.finish();
        assert!(validate(&m).is_ok(), "built module validates");
        assert_eq!(m.num_insts(), 4);
    }

    #[test]
    fn counted_loop_shape() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("acc", 0);
        let mut fb = FuncBuilder::new("main", 0);
        fb.counted_loop(10, |b, i| {
            let cur = b.load_global(g);
            let nxt = b.add(cur, i);
            b.store_global(g, nxt);
        });
        fb.ret();
        mb.function(fb.finish());
        let m = mb.finish();
        validate(&m).expect("loop module validates");
        // entry + head + body + exit
        assert_eq!(m.func(FuncId(0)).blocks.len(), 4);
    }

    #[test]
    fn declare_then_define() {
        let mut mb = ModuleBuilder::new("m");
        let callee = mb.declare_function("helper", 1);
        let mut main = FuncBuilder::new("main", 0);
        let r = main.call(callee, vec![Operand::Const(3)]);
        main.ret_value(r);
        mb.function(main.finish());
        let mut helper = FuncBuilder::new("helper", 1);
        let p = helper.param(0);
        let d = helper.mul(p, 2);
        helper.ret_value(d);
        mb.define_function(callee, helper.finish());
        let m = mb.finish();
        validate(&m).expect("module validates");
        assert_eq!(m.func(callee).num_insts(), 2);
    }

    #[test]
    #[should_panic(expected = "name mismatch")]
    fn define_function_checks_names() {
        let mut mb = ModuleBuilder::new("m");
        let id = mb.declare_function("a", 0);
        mb.define_function(id, Function::new("b", 0));
    }

    #[test]
    #[should_panic(expected = "parameter index out of range")]
    fn param_bounds_checked() {
        let fb = FuncBuilder::new("f", 1);
        let _ = fb.param(1);
    }
}
