//! Modules: the compilation unit consumed by the analyses.

use std::collections::HashMap;
use std::fmt;

use crate::block::Function;
use crate::inst::Inst;
use crate::types::{FuncId, GlobalId, Loc, LockId};

/// A global variable declaration: a named block of shared memory words.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GlobalDecl {
    /// Name, unique within the module.
    pub name: String,
    /// Number of 64-bit words.
    pub words: usize,
    /// Initial value of every word.
    pub init: i64,
}

/// A mutex declaration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LockDecl {
    /// Name, unique within the module.
    pub name: String,
}

/// A compilation unit: functions, globals and locks.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Module {
    /// Module name (diagnostics only).
    pub name: String,
    /// Functions; indexed by [`FuncId`].
    pub functions: Vec<Function>,
    /// Global variables; indexed by [`GlobalId`].
    pub globals: Vec<GlobalDecl>,
    /// Mutexes; indexed by [`LockId`].
    pub locks: Vec<LockDecl>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Adds a function and returns its id.
    pub fn add_function(&mut self, func: Function) -> FuncId {
        self.functions.push(func);
        FuncId::from_index(self.functions.len() - 1)
    }

    /// Adds a single-word global initialized to `init`.
    pub fn add_global(&mut self, name: impl Into<String>, init: i64) -> GlobalId {
        self.add_global_array(name, 1, init)
    }

    /// Adds a `words`-word global, each word initialized to `init`.
    pub fn add_global_array(
        &mut self,
        name: impl Into<String>,
        words: usize,
        init: i64,
    ) -> GlobalId {
        self.globals.push(GlobalDecl {
            name: name.into(),
            words: words.max(1),
            init,
        });
        GlobalId::from_index(self.globals.len() - 1)
    }

    /// Adds a mutex and returns its id.
    pub fn add_lock(&mut self, name: impl Into<String>) -> LockId {
        self.locks.push(LockDecl { name: name.into() });
        LockId::from_index(self.locks.len() - 1)
    }

    /// Looks up a function by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable function lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Finds a function id by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(FuncId::from_index)
    }

    /// Finds a global id by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(GlobalId::from_index)
    }

    /// Finds a lock id by name.
    pub fn lock_by_name(&self, name: &str) -> Option<LockId> {
        self.locks
            .iter()
            .position(|l| l.name == name)
            .map(LockId::from_index)
    }

    /// Iterates over every instruction with its location.
    pub fn iter_insts(&self) -> impl Iterator<Item = (Loc, &Inst)> {
        self.functions.iter().enumerate().flat_map(|(fi, f)| {
            f.blocks.iter().enumerate().flat_map(move |(bi, b)| {
                b.insts.iter().enumerate().map(move |(ii, inst)| {
                    (
                        Loc {
                            func: FuncId::from_index(fi),
                            block: crate::types::BlockId::from_index(bi),
                            inst: ii,
                        },
                        inst,
                    )
                })
            })
        })
    }

    /// The instruction at `loc`, if it exists.
    pub fn inst_at(&self, loc: Loc) -> Option<&Inst> {
        self.functions
            .get(loc.func.index())?
            .blocks
            .get(loc.block.index())?
            .insts
            .get(loc.inst)
    }

    /// Total static instruction count — the paper's "LOC" analog used for
    /// workload sizing.
    pub fn num_insts(&self) -> usize {
        self.functions.iter().map(Function::num_insts).sum()
    }

    /// The location of every [`Inst::Marker`] keyed by marker name.
    ///
    /// Duplicate names keep the first occurrence.
    pub fn marker_index(&self) -> HashMap<String, Loc> {
        let mut map = HashMap::new();
        for (loc, inst) in self.iter_insts() {
            if let Inst::Marker { name } = inst {
                map.entry(name.clone()).or_insert(loc);
            }
        }
        map
    }

    /// Finds the location of a marker by name.
    pub fn marker(&self, name: &str) -> Option<Loc> {
        self.iter_insts().find_map(|(loc, inst)| match inst {
            Inst::Marker { name: n } if n == name => Some(loc),
            _ => None,
        })
    }

    /// Collects all call sites of `callee` across the module.
    pub fn call_sites_of(&self, callee: FuncId) -> Vec<Loc> {
        self.iter_insts()
            .filter_map(|(loc, inst)| match inst {
                Inst::Call { callee: c, .. } if *c == callee => Some(loc),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module {} {{", self.name)?;
        for g in &self.globals {
            writeln!(f, "global {} [{} x i64] = {}", g.name, g.words, g.init)?;
        }
        for l in &self.locks {
            writeln!(f, "lock {}", l.name)?;
        }
        for func in &self.functions {
            write!(f, "{func}")?;
        }
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Operand;

    fn sample() -> Module {
        let mut m = Module::new("m");
        let g = m.add_global("flag", 0);
        let mut f = Function::new("main", 0);
        let r = f.new_reg();
        f.blocks[0].insts.push(Inst::Marker { name: "top".into() });
        f.blocks[0]
            .insts
            .push(Inst::LoadGlobal { dst: r, global: g });
        f.blocks[0].insts.push(Inst::Return {
            value: Some(Operand::Reg(r)),
        });
        m.add_function(f);
        m
    }

    #[test]
    fn lookup_by_name() {
        let m = sample();
        assert_eq!(m.func_by_name("main"), Some(FuncId(0)));
        assert_eq!(m.func_by_name("nope"), None);
        assert_eq!(m.global_by_name("flag"), Some(GlobalId(0)));
        assert_eq!(m.global_by_name("nope"), None);
    }

    #[test]
    fn marker_lookup() {
        let m = sample();
        let loc = m.marker("top").expect("marker exists");
        assert_eq!(loc.inst, 0);
        assert!(m.marker("absent").is_none());
        assert_eq!(m.marker_index().len(), 1);
    }

    #[test]
    fn inst_iteration_and_counts() {
        let m = sample();
        assert_eq!(m.num_insts(), 3);
        assert_eq!(m.iter_insts().count(), 3);
        let loc = Loc::new(FuncId(0), crate::types::BlockId(0), 1);
        assert!(matches!(m.inst_at(loc), Some(Inst::LoadGlobal { .. })));
        assert!(m
            .inst_at(Loc::new(FuncId(9), crate::types::BlockId(0), 0))
            .is_none());
    }

    #[test]
    fn call_sites_are_found() {
        let mut m = sample();
        let main = FuncId(0);
        let mut f2 = Function::new("caller", 0);
        f2.blocks[0].insts.push(Inst::Call {
            dst: None,
            callee: main,
            args: vec![],
        });
        f2.blocks[0].insts.push(Inst::Return { value: None });
        m.add_function(f2);
        let sites = m.call_sites_of(main);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].func, FuncId(1));
    }
}
