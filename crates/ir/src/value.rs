//! Operands: the values instructions consume.

use std::fmt;

use crate::types::Reg;

/// An instruction operand: either a virtual register or an immediate.
///
/// All values in the IR are 64-bit signed integers; pointers are encoded as
/// addresses in the same space (see `conair-runtime`'s memory layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Operand {
    /// The current value of a virtual register.
    Reg(Reg),
    /// An immediate constant.
    Const(i64),
}

impl Operand {
    /// Returns the register if this operand reads one.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Const(_) => None,
        }
    }

    /// Returns the constant if this operand is immediate.
    pub fn as_const(self) -> Option<i64> {
        match self {
            Operand::Reg(_) => None,
            Operand::Const(c) => Some(c),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(c: i64) -> Self {
        Operand::Const(c)
    }
}

impl From<i32> for Operand {
    fn from(c: i32) -> Self {
        Operand::Const(c as i64)
    }
}

impl From<bool> for Operand {
    fn from(b: bool) -> Self {
        Operand::Const(b as i64)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Binary arithmetic/logical operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BinOpKind {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; division by zero yields 0 (the interpreter is total).
    Div,
    /// Remainder; remainder by zero yields 0.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (modulo 64).
    Shl,
    /// Arithmetic shift right (modulo 64).
    Shr,
}

impl BinOpKind {
    /// Applies the operator to two values with total (never-trapping)
    /// semantics.
    pub fn apply(self, lhs: i64, rhs: i64) -> i64 {
        match self {
            BinOpKind::Add => lhs.wrapping_add(rhs),
            BinOpKind::Sub => lhs.wrapping_sub(rhs),
            BinOpKind::Mul => lhs.wrapping_mul(rhs),
            BinOpKind::Div => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_div(rhs)
                }
            }
            BinOpKind::Rem => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_rem(rhs)
                }
            }
            BinOpKind::And => lhs & rhs,
            BinOpKind::Or => lhs | rhs,
            BinOpKind::Xor => lhs ^ rhs,
            BinOpKind::Shl => lhs.wrapping_shl(rhs as u32 % 64),
            BinOpKind::Shr => lhs.wrapping_shr(rhs as u32 % 64),
        }
    }

    /// The textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOpKind::Add => "add",
            BinOpKind::Sub => "sub",
            BinOpKind::Mul => "mul",
            BinOpKind::Div => "div",
            BinOpKind::Rem => "rem",
            BinOpKind::And => "and",
            BinOpKind::Or => "or",
            BinOpKind::Xor => "xor",
            BinOpKind::Shl => "shl",
            BinOpKind::Shr => "shr",
        }
    }

    /// Parses a mnemonic produced by [`BinOpKind::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "add" => BinOpKind::Add,
            "sub" => BinOpKind::Sub,
            "mul" => BinOpKind::Mul,
            "div" => BinOpKind::Div,
            "rem" => BinOpKind::Rem,
            "and" => BinOpKind::And,
            "or" => BinOpKind::Or,
            "xor" => BinOpKind::Xor,
            "shl" => BinOpKind::Shl,
            "shr" => BinOpKind::Shr,
            _ => return None,
        })
    }
}

impl fmt::Display for BinOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Comparison operators; results are 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpKind {
    /// Applies the comparison, yielding 1 (true) or 0 (false).
    pub fn apply(self, lhs: i64, rhs: i64) -> i64 {
        let v = match self {
            CmpKind::Eq => lhs == rhs,
            CmpKind::Ne => lhs != rhs,
            CmpKind::Lt => lhs < rhs,
            CmpKind::Le => lhs <= rhs,
            CmpKind::Gt => lhs > rhs,
            CmpKind::Ge => lhs >= rhs,
        };
        v as i64
    }

    /// The textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpKind::Eq => "eq",
            CmpKind::Ne => "ne",
            CmpKind::Lt => "lt",
            CmpKind::Le => "le",
            CmpKind::Gt => "gt",
            CmpKind::Ge => "ge",
        }
    }

    /// Parses a mnemonic produced by [`CmpKind::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "eq" => CmpKind::Eq,
            "ne" => CmpKind::Ne,
            "lt" => CmpKind::Lt,
            "le" => CmpKind::Le,
            "gt" => CmpKind::Gt,
            "ge" => CmpKind::Ge,
            _ => return None,
        })
    }
}

impl fmt::Display for CmpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg(3)).as_reg(), Some(Reg(3)));
        assert_eq!(Operand::from(42i64).as_const(), Some(42));
        assert_eq!(Operand::from(true).as_const(), Some(1));
        assert_eq!(Operand::Reg(Reg(0)).as_const(), None);
        assert_eq!(Operand::Const(1).as_reg(), None);
    }

    #[test]
    fn binop_total_semantics() {
        assert_eq!(BinOpKind::Add.apply(i64::MAX, 1), i64::MIN);
        assert_eq!(BinOpKind::Div.apply(10, 0), 0);
        assert_eq!(BinOpKind::Rem.apply(10, 0), 0);
        assert_eq!(BinOpKind::Div.apply(10, 3), 3);
        assert_eq!(BinOpKind::Shl.apply(1, 65), 2);
    }

    #[test]
    fn cmp_yields_bool_ints() {
        assert_eq!(CmpKind::Lt.apply(1, 2), 1);
        assert_eq!(CmpKind::Ge.apply(1, 2), 0);
        assert_eq!(CmpKind::Eq.apply(5, 5), 1);
        assert_eq!(CmpKind::Ne.apply(5, 5), 0);
    }

    #[test]
    fn mnemonics_roundtrip() {
        for op in [
            BinOpKind::Add,
            BinOpKind::Sub,
            BinOpKind::Mul,
            BinOpKind::Div,
            BinOpKind::Rem,
            BinOpKind::And,
            BinOpKind::Or,
            BinOpKind::Xor,
            BinOpKind::Shl,
            BinOpKind::Shr,
        ] {
            assert_eq!(BinOpKind::from_mnemonic(op.mnemonic()), Some(op));
        }
        for op in [
            CmpKind::Eq,
            CmpKind::Ne,
            CmpKind::Lt,
            CmpKind::Le,
            CmpKind::Gt,
            CmpKind::Ge,
        ] {
            assert_eq!(CmpKind::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(BinOpKind::from_mnemonic("bogus"), None);
        assert_eq!(CmpKind::from_mnemonic("bogus"), None);
    }
}
