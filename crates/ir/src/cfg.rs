//! Control-flow-graph utilities at block and instruction granularity.
//!
//! ConAir's reexecution-point search (paper Section 3.2.2) walks the CFG
//! *backwards at instruction granularity*: the predecessor of instruction
//! `i > 0` in a block is instruction `i - 1`; the predecessors of the first
//! instruction of a block are the terminators of all predecessor blocks.
//! [`InstPos`] and [`Cfg::inst_predecessors`] provide exactly that view.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::block::Function;
use crate::types::BlockId;

/// Block-level control-flow graph of one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
}

/// An instruction position inside one function (block + index).
///
/// Unlike [`crate::Loc`] this does not carry the function id — CFG walks are
/// always intra-procedural.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstPos {
    /// Containing block.
    pub block: BlockId,
    /// Instruction index within the block.
    pub inst: usize,
}

impl InstPos {
    /// Builds a position.
    pub fn new(block: BlockId, inst: usize) -> Self {
        Self { block, inst }
    }
}

impl Cfg {
    /// Builds the CFG of `func`.
    pub fn build(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (id, block) in func.iter_blocks() {
            for s in block.successors() {
                succs[id.index()].push(s);
                preds[s.index()].push(id);
            }
        }
        Self { succs, preds }
    }

    /// Successor blocks of `b`.
    pub fn successors(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessor blocks of `b`.
    pub fn predecessors(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    /// Instruction-level predecessors of `pos` (see module docs).
    pub fn inst_predecessors(&self, func: &Function, pos: InstPos) -> Vec<InstPos> {
        if pos.inst > 0 {
            return vec![InstPos::new(pos.block, pos.inst - 1)];
        }
        self.predecessors(pos.block)
            .iter()
            .map(|&p| {
                let len = func.block(p).insts.len();
                InstPos::new(p, len.saturating_sub(1))
            })
            .collect()
    }

    /// Instruction-level successors of `pos`.
    pub fn inst_successors(&self, func: &Function, pos: InstPos) -> Vec<InstPos> {
        let block = func.block(pos.block);
        if pos.inst + 1 < block.insts.len() {
            return vec![InstPos::new(pos.block, pos.inst + 1)];
        }
        self.successors(pos.block)
            .iter()
            .map(|&s| InstPos::new(s, 0))
            .collect()
    }

    /// Blocks reachable from the entry block.
    pub fn reachable_blocks(&self) -> HashSet<BlockId> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        let entry = BlockId(0);
        seen.insert(entry);
        queue.push_back(entry);
        while let Some(b) = queue.pop_front() {
            for &s in self.successors(b) {
                if seen.insert(s) {
                    queue.push_back(s);
                }
            }
        }
        seen
    }

    /// Reverse post-order of reachable blocks (a topological order for
    /// acyclic regions; stable for iterative dataflow).
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.num_blocks()];
        let mut post = Vec::with_capacity(self.num_blocks());
        // Iterative DFS with an explicit stack holding (block, next-child).
        let mut stack: Vec<(BlockId, usize)> = Vec::new();
        let entry = BlockId(0);
        if self.num_blocks() == 0 {
            return post;
        }
        visited[entry.index()] = true;
        stack.push((entry, 0));
        while let Some(&mut (b, ref mut idx)) = stack.last_mut() {
            if *idx < self.succs[b.index()].len() {
                let child = self.succs[b.index()][*idx];
                *idx += 1;
                if !visited[child.index()] {
                    visited[child.index()] = true;
                    stack.push((child, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

/// Computes immediate dominators for reachable blocks using the classic
/// Cooper–Harvey–Kennedy iterative algorithm.
///
/// The entry block dominates itself; unreachable blocks are absent from the
/// returned map.
pub fn immediate_dominators(cfg: &Cfg) -> HashMap<BlockId, BlockId> {
    let rpo = cfg.reverse_postorder();
    let mut rpo_index = HashMap::new();
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index.insert(b, i);
    }
    let entry = BlockId(0);
    let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
    idom.insert(entry, entry);

    let intersect = |idom: &HashMap<BlockId, BlockId>,
                     rpo_index: &HashMap<BlockId, usize>,
                     mut a: BlockId,
                     mut b: BlockId| {
        while a != b {
            while rpo_index[&a] > rpo_index[&b] {
                a = idom[&a];
            }
            while rpo_index[&b] > rpo_index[&a] {
                b = idom[&b];
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in cfg.predecessors(b) {
                if !rpo_index.contains_key(&p) {
                    continue; // unreachable predecessor
                }
                if idom.contains_key(&p) {
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
            }
            if let Some(ni) = new_idom {
                if idom.get(&b) != Some(&ni) {
                    idom.insert(b, ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

/// Returns true if `a` dominates `b` given an idom map from
/// [`immediate_dominators`].
pub fn dominates(idom: &HashMap<BlockId, BlockId>, a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom.get(&cur) {
            Some(&d) if d != cur => cur = d,
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::value::CmpKind;

    /// Diamond: entry -> (then | else) -> merge.
    fn diamond() -> Function {
        let mut fb = FuncBuilder::new("d", 1);
        let then_bb = fb.new_block();
        let else_bb = fb.new_block();
        let merge = fb.new_block();
        let c = fb.cmp(CmpKind::Gt, fb.param(0), 0);
        fb.branch(c, then_bb, else_bb);
        fb.switch_to(then_bb);
        fb.nop();
        fb.jump(merge);
        fb.switch_to(else_bb);
        fb.nop();
        fb.jump(merge);
        fb.switch_to(merge);
        fb.ret();
        fb.finish()
    }

    #[test]
    fn diamond_edges() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.successors(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.predecessors(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.reachable_blocks().len(), 4);
    }

    #[test]
    fn inst_predecessors_cross_blocks() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        // First inst of merge block has two predecessors: the jumps.
        let preds = cfg.inst_predecessors(&f, InstPos::new(BlockId(3), 0));
        assert_eq!(preds.len(), 2);
        for p in &preds {
            assert!(f.block(p.block).insts[p.inst].is_terminator());
        }
        // Within-block predecessor.
        let preds = cfg.inst_predecessors(&f, InstPos::new(BlockId(0), 1));
        assert_eq!(preds, vec![InstPos::new(BlockId(0), 0)]);
        // Entry's first instruction has no predecessors.
        assert!(cfg
            .inst_predecessors(&f, InstPos::new(BlockId(0), 0))
            .is_empty());
    }

    #[test]
    fn inst_successors_cross_blocks() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let succs = cfg.inst_successors(&f, InstPos::new(BlockId(0), 1));
        assert_eq!(
            succs,
            vec![InstPos::new(BlockId(1), 0), InstPos::new(BlockId(2), 0)]
        );
    }

    #[test]
    fn rpo_starts_at_entry() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[3], BlockId(3), "merge block last in RPO");
    }

    #[test]
    fn dominators_of_diamond() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let idom = immediate_dominators(&cfg);
        assert_eq!(idom[&BlockId(1)], BlockId(0));
        assert_eq!(idom[&BlockId(2)], BlockId(0));
        assert_eq!(
            idom[&BlockId(3)],
            BlockId(0),
            "merge dominated by entry only"
        );
        assert!(dominates(&idom, BlockId(0), BlockId(3)));
        assert!(!dominates(&idom, BlockId(1), BlockId(3)));
        assert!(dominates(&idom, BlockId(3), BlockId(3)));
    }

    #[test]
    fn loop_cfg_dominators() {
        // entry -> head; head -> body|exit; body -> head
        let mut fb = FuncBuilder::new("l", 0);
        fb.counted_loop(5, |b, _| {
            b.nop();
        });
        fb.ret();
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        let idom = immediate_dominators(&cfg);
        // head (bb1) dominates body (bb2) and exit (bb3).
        assert!(dominates(&idom, BlockId(1), BlockId(2)));
        assert!(dominates(&idom, BlockId(1), BlockId(3)));
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
    }
}
