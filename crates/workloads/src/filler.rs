//! Application-scale filler code.
//!
//! The paper's benchmarks are real applications (1.2K–693K LOC); their bug
//! kernels are tiny, but survival-mode ConAir hardens *every* potential
//! failure site in the whole program (Table 4: 7–19,185 sites). The filler
//! generator reproduces that shape: it deterministically emits benign
//! functions containing a configured mix of potential failure sites plus a
//! site-free compute kernel that dominates dynamic execution, keeping the
//! hardened overhead under 1% exactly as in the paper.
//!
//! Site counts are scaled down ~10× from Table 4 (documented in
//! EXPERIMENTS.md); the *proportions* per failure kind are preserved.

use conair_ir::{CmpKind, FuncBuilder, FuncId, ModuleBuilder, Operand};

/// The mix of potential failure sites emitted for one application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteProfile {
    /// Assertions with shared-read conditions (never optimized away).
    pub asserts: usize,
    /// Assertions with constant conditions (removed by the Section 4.2
    /// optimization — they contribute to Table 6's non-deadlock column).
    pub const_asserts: usize,
    /// Plain output calls whose value derives from a shared read.
    pub outputs: usize,
    /// Heap/global-pointer dereferences (never optimized away).
    pub derefs: usize,
    /// Nested lock pairs: the inner acquisition is a *recoverable* deadlock
    /// site (Figure 7b).
    pub lock_pairs: usize,
    /// Lone lock acquisitions behind a destroying op: *unrecoverable*
    /// deadlock sites, removed by the optimization (Figure 7a, Table 6's
    /// deadlock column).
    pub lone_locks: usize,
}

impl SiteProfile {
    /// Total potential failure sites this profile emits
    /// (each lock pair contributes two deadlock sites: outer + inner).
    pub fn total_sites(&self) -> usize {
        self.asserts
            + self.const_asserts
            + self.outputs
            + self.derefs
            + 2 * self.lock_pairs
            + self.lone_locks
    }

    /// Sites that survive the optimization (inner locks of pairs; shared
    /// asserts, outputs and derefs).
    pub fn recoverable_sites(&self) -> usize {
        self.asserts + self.outputs + self.derefs + self.lock_pairs
    }
}

/// How much benign work the application performs dynamically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkProfile {
    /// Iterations of the site-free arithmetic kernel per driver call
    /// (each iteration ≈ 8 instructions).
    pub compute_iters: i64,
    /// Fraction (percent) of filler functions invoked once per run — the
    /// "cold" initialization phase.
    pub cold_call_percent: usize,
    /// How many site-bearing functions the hot loop re-invokes…
    pub hot_funcs: usize,
    /// …and how many times each.
    pub hot_iters: i64,
}

impl Default for WorkProfile {
    fn default() -> Self {
        Self {
            compute_iters: 2_000,
            cold_call_percent: 100,
            hot_funcs: 2,
            hot_iters: 16,
        }
    }
}

/// Handles to the filler code inside a module under construction.
#[derive(Debug, Clone)]
pub struct Filler {
    /// The driver: call once from one application thread; runs the cold
    /// phase, the hot loop and the compute kernel.
    pub driver: FuncId,
    /// The initializer: call at the start of *every* application thread
    /// before any filler site can execute (publishes the valid pointer the
    /// dereference sites read).
    pub init: FuncId,
    /// Number of filler functions emitted.
    pub functions: usize,
}

/// Number of sites emitted per filler function (small functions, many of
/// them — like real code).
const SITES_PER_FUNC: usize = 4;

/// Emits a site-free busy-wait loop of roughly `5 * iters` instructions
/// directly into `fb` — used by workload kernels to model initialization
/// phases whose duration controls retry counts (paper Section 6.3: the
/// failing thread "has to wait for thread 2's progress").
pub fn emit_delay(fb: &mut FuncBuilder, iters: i64) {
    fb.counted_loop(iters, |b, _| {
        b.nop();
    });
}

/// Emits filler into `mb` according to `sites` and `work`.
///
/// The generated code is benign: every assert condition is true at run
/// time, every dereference is valid once `init` has run, and nested locks
/// are always acquired in a global order.
pub fn emit_filler(mb: &mut ModuleBuilder, sites: SiteProfile, work: WorkProfile) -> Filler {
    // Shared state the sites read.
    let cfg = mb.global("filler_cfg", 3);
    let data = mb.global_array("filler_data", 8, 11);
    let ptr_cell = mb.global("filler_ptr", 0);
    let scratch = mb.global("filler_scratch", 0);

    // init: publish &filler_data into filler_ptr (idempotent, any thread).
    let init = {
        let mut fb = FuncBuilder::new("filler_init", 0);
        let addr = fb.addr_of_global(data);
        fb.store_global(ptr_cell, addr);
        fb.ret();
        mb.function(fb.finish())
    };

    // compute kernel: pure arithmetic over a stack slot, no sites.
    let compute = {
        let mut fb = FuncBuilder::new("filler_compute", 1);
        let n = fb.param(0);
        let acc = fb.local();
        fb.store_local(acc, 1);
        fb.counted_loop(n, |b, i| {
            let cur = b.load_local(acc);
            let x = b.mul(cur, 1_103_515_245i64);
            let y = b.add(x, i);
            let z = b.binop(conair_ir::BinOpKind::Xor, y, 0x5DEECE66Di64);
            b.store_local(acc, z);
        });
        let out = fb.load_local(acc);
        fb.ret_value(out);
        mb.function(fb.finish())
    };

    // Site-bearing functions. Each carries SITES_PER_FUNC sites of one
    // category, preceded by a destroying op (a scratch store) so regions
    // stay local and lone locks are provably unrecoverable.
    let mut site_funcs: Vec<FuncId> = Vec::new();
    let mut counter = 0usize;

    let mut emit_batch = |mb: &mut ModuleBuilder,
                          total: usize,
                          kind: &str,
                          body: &dyn Fn(&mut FuncBuilder, usize)| {
        let mut remaining = total;
        while remaining > 0 {
            let here = remaining.min(SITES_PER_FUNC);
            let mut fb = FuncBuilder::new(format!("filler_{kind}_{counter}"), 0);
            counter += 1;
            for k in 0..here {
                body(&mut fb, k);
            }
            fb.ret();
            site_funcs.push(mb.function(fb.finish()));
            remaining -= here;
        }
    };

    emit_batch(mb, sites.asserts, "assert", &|fb, _| {
        let v = fb.load_global(cfg);
        let c = fb.cmp(CmpKind::Ge, v, 0);
        fb.assert(c, "filler config non-negative");
    });
    emit_batch(mb, sites.const_asserts, "cassert", &|fb, _| {
        // Destroying op first, then a constant-condition assert: the slice
        // has no shared read, so the optimization removes the site.
        fb.store_global(scratch, 1);
        let c = fb.copy(1);
        fb.assert(c, "structurally true");
    });
    emit_batch(mb, sites.outputs, "output", &|fb, _| {
        let v = fb.load_global(cfg);
        fb.output("trace", v);
    });
    emit_batch(mb, sites.derefs, "deref", &|fb, k| {
        let p = fb.load_global(ptr_cell);
        let q = fb.add(p, (k % 8) as i64);
        let _ = fb.load_ptr(q);
    });

    // Lock pairs: a per-pair lock couple, acquired in a fixed global order.
    for i in 0..sites.lock_pairs {
        let outer = mb.lock(format!("filler_outer_{i}"));
        let inner = mb.lock(format!("filler_inner_{i}"));
        let mut fb = FuncBuilder::new(format!("filler_lockpair_{i}"), 0);
        fb.store_global(scratch, 2); // keep the outer site's region empty
        fb.lock(outer);
        fb.lock(inner); // recoverable deadlock site (Figure 7b)
        let v = fb.load_global(cfg);
        fb.store_global(scratch, v);
        fb.unlock(inner);
        fb.unlock(outer);
        fb.ret();
        site_funcs.push(mb.function(fb.finish()));
    }
    for i in 0..sites.lone_locks {
        let l = mb.lock(format!("filler_lone_{i}"));
        let mut fb = FuncBuilder::new(format!("filler_lonelock_{i}"), 0);
        fb.store_global(scratch, 3); // destroying op: Figure 7a shape
        fb.lock(l);
        fb.unlock(l);
        fb.ret();
        site_funcs.push(mb.function(fb.finish()));
    }

    // Driver: cold phase + hot loop + compute kernel.
    let driver = {
        let mut fb = FuncBuilder::new("filler_driver", 0);
        fb.call_void(init, vec![]);
        // Cold phase: call the configured fraction once each.
        let cold = site_funcs.len() * work.cold_call_percent / 100;
        for f in site_funcs.iter().take(cold) {
            fb.call_void(*f, vec![]);
        }
        // Hot loop: re-invoke a small rotating subset.
        if work.hot_funcs > 0 && !site_funcs.is_empty() {
            let subset: Vec<FuncId> = site_funcs.iter().copied().take(work.hot_funcs).collect();
            fb.counted_loop(work.hot_iters, |b, _| {
                for f in &subset {
                    b.call_void(*f, vec![]);
                }
            });
        }
        let checksum = fb.call(compute, vec![Operand::Const(work.compute_iters)]);
        // Publish the checksum so the compute kernel stays observable
        // without introducing an extra failure site.
        fb.store_global(scratch, checksum);
        fb.ret();
        mb.function(fb.finish())
    };

    Filler {
        driver,
        init,
        functions: site_funcs.len() + 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::validate;
    use conair_runtime::{run_once, MachineConfig, Program};

    fn build(sites: SiteProfile, work: WorkProfile) -> Program {
        let mut mb = ModuleBuilder::new("filler_test");
        let filler = emit_filler(&mut mb, sites, work);
        let mut main = FuncBuilder::new("main", 0);
        main.call_void(filler.driver, vec![]);
        main.ret();
        mb.function(main.finish());
        let module = mb.finish();
        validate(&module).expect("filler module validates");
        Program::from_entry_names(module, &["main"])
    }

    fn small_sites() -> SiteProfile {
        SiteProfile {
            asserts: 6,
            const_asserts: 2,
            outputs: 3,
            derefs: 7,
            lock_pairs: 2,
            lone_locks: 3,
        }
    }

    #[test]
    fn profile_arithmetic() {
        let p = small_sites();
        assert_eq!(p.total_sites(), 6 + 2 + 3 + 7 + 4 + 3);
        assert_eq!(p.recoverable_sites(), 6 + 3 + 7 + 2);
    }

    #[test]
    fn filler_is_benign() {
        let program = build(small_sites(), WorkProfile::default());
        let r = run_once(&program, &MachineConfig::default(), 7);
        assert!(r.outcome.is_completed(), "{:?}", r.outcome);
        // Outputs from the output sites appear.
        assert!(!r.outputs_for("trace").is_empty());
    }

    #[test]
    fn site_counts_match_profile() {
        use conair_analysis::{identify_sites, SiteSelection};
        use conair_ir::FailureKind;
        let program = build(small_sites(), WorkProfile::default());
        let table = identify_sites(&program.module, &SiteSelection::Survival);
        let p = small_sites();
        assert_eq!(
            table.count_of(FailureKind::AssertionViolation),
            p.asserts + p.const_asserts,
        );
        assert_eq!(table.count_of(FailureKind::WrongOutput), p.outputs);
        assert_eq!(table.count_of(FailureKind::SegFault), p.derefs);
        assert_eq!(
            table.count_of(FailureKind::Deadlock),
            2 * p.lock_pairs + p.lone_locks
        );
    }

    #[test]
    fn optimization_removes_exactly_the_planted_unrecoverables() {
        use conair_analysis::{analyze, AnalysisConfig};
        let program = build(small_sites(), WorkProfile::default());
        let plan = analyze(&program.module, &AnalysisConfig::survival_defaults());
        let p = small_sites();
        assert_eq!(plan.stats.removed_non_deadlock_sites, p.const_asserts);
        // Lone locks and the outer lock of each pair are unrecoverable.
        assert_eq!(
            plan.stats.removed_deadlock_sites,
            p.lone_locks + p.lock_pairs
        );
    }

    #[test]
    fn hardened_filler_still_benign_with_low_overhead() {
        use conair_analysis::{analyze, AnalysisConfig};
        use conair_transform::harden;
        let program = build(
            small_sites(),
            WorkProfile {
                compute_iters: 6_000,
                ..WorkProfile::default()
            },
        );
        let plan = analyze(&program.module, &AnalysisConfig::survival_defaults());
        let hardened = harden(program.module.clone(), &plan);
        let hp = program.with_module(hardened.module);
        let report =
            conair_runtime::measure_overhead(&program, &hp, &MachineConfig::default(), 0, 3);
        assert!(
            report.inst_overhead < 0.02,
            "filler overhead should be small, got {:.3}%",
            report.inst_overhead * 100.0
        );
        assert!(report.dynamic_points > 0.0);
    }
}
