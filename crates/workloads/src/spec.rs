//! The [`Workload`] type: one benchmark application ready to run.

use conair_runtime::{Program, RunResult, ScheduleScript};

use crate::meta::WorkloadMeta;

/// A complete benchmark: program, bug-forcing script and correctness
/// criteria.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Table-2 metadata.
    pub meta: &'static WorkloadMeta,
    /// The (unhardened) program.
    pub program: Program,
    /// Gates forcing the failure-inducing interleaving — the analog of the
    /// sleeps the paper injects into buggy code regions (Section 5).
    pub bug_script: ScheduleScript,
    /// Gates forcing a *correct* interleaving, used for overhead
    /// measurement (the paper's "no sleep is inserted and software never
    /// fails during the run-time overhead measurement").
    pub benign_script: ScheduleScript,
    /// Marker names identifying the observed failure, for fix mode.
    pub fix_markers: Vec<String>,
    /// Expected output values per label on a correct run (labels absent
    /// here — e.g. the filler's "trace" — are not checked).
    pub expected: Vec<(String, Vec<i64>)>,
}

impl Workload {
    /// Verifies a run's outputs against [`Workload::expected`].
    ///
    /// Returns `Err` with a description of the first mismatch.
    pub fn verify_outputs(&self, result: &RunResult) -> Result<(), String> {
        for (label, want) in &self.expected {
            let got = result.outputs_for(label);
            if &got != want {
                return Err(format!("output `{label}`: expected {want:?}, got {got:?}"));
            }
        }
        Ok(())
    }

    /// Whether a run both completed and produced correct outputs — the
    /// paper's recovery-success criterion.
    pub fn run_is_correct(&self, result: &RunResult) -> bool {
        result.outcome.is_completed() && self.verify_outputs(result).is_ok()
    }
}
