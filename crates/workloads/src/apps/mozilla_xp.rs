//! Mozilla XPCOM: segmentation fault from an order violation, requiring
//! **inter-procedural** recovery (paper Figure 10).
//!
//! `GetState(thd)` dereferences its parameter inside a leaf function; the
//! invalid pointer arrives from the caller `Get()`, which loads the shared
//! `mThd` before `InitThd()` has created the thread object. The reexecution
//! point must therefore sit in `Get` (before the `mThd` load) — the callee
//! region alone can never change the parameter. This is one of the two
//! benchmarks the paper reports as needing Section 4.3, and its recovery is
//! the slowest (thousands of retries while thread 2 catches up).

use conair_ir::{FuncBuilder, ModuleBuilder, Operand};
use conair_runtime::{Gate, Program, ScheduleScript};

use crate::filler::{emit_delay, emit_filler, SiteProfile, WorkProfile};
use crate::meta::meta_by_name;
use crate::spec::Workload;

const THREAD_DETACHED: i64 = 0xff;

/// Builds the MozillaXP workload.
pub fn build() -> Workload {
    let mut mb = ModuleBuilder::new("mozilla_xp");
    let sites = SiteProfile {
        asserts: 1,
        const_asserts: 0,
        outputs: 12,
        derefs: 678, // kernel adds 1 → 679
        lock_pairs: 0,
        lone_locks: 0,
    };
    let filler = emit_filler(
        &mut mb,
        sites,
        WorkProfile {
            compute_iters: 50_000,
            hot_funcs: 6,
            hot_iters: 30,
            ..WorkProfile::default()
        },
    );

    let mthd = mb.global("mThd", 0); // NULL before InitThd
    let stat = mb.global("xp_call_count", 0);

    // GetState(thd): return thd->state & THREAD_DETACHED (Figure 10).
    let get_state = {
        let mut fb = FuncBuilder::new("GetState", 1);
        let thd = fb.param(0);
        fb.marker("xp_deref");
        let state = fb.load_ptr(thd); // the segfault site
        let masked = fb.binop(conair_ir::BinOpKind::And, state, THREAD_DETACHED);
        fb.ret_value(masked);
        mb.function(fb.finish())
    };

    // Get(): tmp = GetState(mThd). The call-count bump before the load is
    // the destroying op that anchors the caller-side reexecution point
    // inside Get (matching the paper's "reexecution point inside Get").
    let get = {
        let mut fb = FuncBuilder::new("Get", 0);
        let n = fb.load_global(stat);
        let n1 = fb.add(n, 1);
        fb.store_global(stat, n1);
        let ptr = fb.load_global(mthd);
        let tmp = fb.call(get_state, vec![Operand::Reg(ptr)]);
        fb.ret_value(tmp);
        mb.function(fb.finish())
    };

    // Thread 1: the XPCOM client calling Get().
    let mut t1 = FuncBuilder::new("xp_client", 0);
    t1.call_void(filler.init, vec![]);
    // The client carries the XPCOM session work (redone on restart).
    t1.call_void(filler.driver, vec![]);
    t1.marker("client_started");
    let state = t1.call(get, vec![]);
    t1.output("thread_state", state);
    t1.ret();
    mb.function(t1.finish());

    // Thread 2: InitThd() — CreateThd allocates the thread object, then the
    // publication makes it visible (Figure 10 right).
    let mut t2 = FuncBuilder::new("xp_init_thd", 0);
    t2.call_void(filler.init, vec![]);
    t2.marker("before_create");
    // Thread creation takes a while after the gate releases: the client's
    // guard rolls back throughout (the paper observed >8000 retries here).
    emit_delay(&mut t2, 10_000);
    let obj = t2.alloc(2);
    t2.store_ptr(obj, 0x1ff); // thd->state
    t2.store_global(mthd, obj);
    t2.marker("mthd_published");
    t2.ret();
    mb.function(t2.finish());

    let program = Program::from_entry_names(mb.finish(), &["xp_client", "xp_init_thd"]);
    // The initializer runs the big filler driver behind a gate released
    // only once the client is already running — so the client's guard
    // rolls back for a long time (the paper observed >8000 retries here).
    let bug_script =
        ScheduleScript::with_gates(vec![Gate::new(1, "before_create", "client_started")]);

    let benign_script =
        ScheduleScript::with_gates(vec![Gate::new(0, "client_started", "mthd_published")]);

    Workload {
        meta: meta_by_name("MozillaXP").expect("MozillaXP in Table 2"),
        program,
        bug_script,
        benign_script,
        fix_markers: vec!["xp_deref".into()],
        expected: vec![("thread_state".into(), vec![0x1ff & THREAD_DETACHED])],
    }
}
