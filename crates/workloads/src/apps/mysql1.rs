//! MySQL bug 1: wrong output from a WAW atomicity violation (paper
//! Figure 2a).
//!
//! The logging thread flips the shared `log` state CLOSE→OPEN in two
//! writes that should be atomic with respect to readers; a query thread
//! observing the transient CLOSE emits a wrong "log disabled" result. With
//! an output oracle (`log == OPEN`) the reader's rollback re-reads the
//! state until the writer's second store lands — recovery by serializing
//! the reader after the writer pair.

use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};
use conair_runtime::{Gate, Program, ScheduleScript};

use crate::filler::{emit_filler, SiteProfile, WorkProfile};
use crate::meta::meta_by_name;
use crate::spec::Workload;

const CLOSE: i64 = 0;
const OPEN: i64 = 1;

/// Builds the MySQL1 workload.
pub fn build() -> Workload {
    let mut mb = ModuleBuilder::new("mysql1");
    // Table 4 row ×1/10: the largest site population of the suite.
    let sites = SiteProfile {
        asserts: 10,
        const_asserts: 2,
        outputs: 324,
        derefs: 1_579,
        lock_pairs: 2,
        lone_locks: 15,
    };
    let filler = emit_filler(
        &mut mb,
        sites,
        WorkProfile {
            compute_iters: 120_000,
            hot_funcs: 10,
            hot_iters: 60,
            ..WorkProfile::default()
        },
    );

    let log_state = mb.global("log_state", OPEN);
    let queries = mb.global("queries_served", 0);

    // Thread 1: log rotation — the WAW pair that must look atomic.
    let mut rotator = FuncBuilder::new("mysql_log_rotate", 0);
    rotator.call_void(filler.init, vec![]);
    rotator.store_global(log_state, CLOSE);
    rotator.marker("rotate_start");
    rotator.marker("between_waw");
    rotator.store_global(log_state, OPEN);
    rotator.marker("rotate_finished");
    rotator.output("rotated", 1);
    rotator.ret();
    mb.function(rotator.finish());

    // Thread 2: a query observing the log state.
    let mut query = FuncBuilder::new("mysql_query", 0);
    query.call_void(filler.init, vec![]);
    query.call_void(filler.driver, vec![]);
    query.marker("query_reads_log");
    let state = query.load_global(log_state);
    query.marker("query_read_done");
    let is_open = query.cmp(CmpKind::Eq, state, OPEN);
    query.marker("mysql1_failure");
    query.output_assert(is_open, "query must observe an open log");
    query.output("log_state_seen", state);
    let q = query.load_global(queries);
    let q1 = query.add(q, 1);
    query.store_global(queries, q1);
    query.ret();
    mb.function(query.finish());

    let program = Program::from_entry_names(mb.finish(), &["mysql_log_rotate", "mysql_query"]);
    // Force the unserializable interleaving: the rotator closes the log,
    // then stalls between its two writes until the query has read.
    let bug_script = ScheduleScript::with_gates(vec![
        Gate::new(0, "between_waw", "query_read_done"),
        Gate::new(1, "query_reads_log", "rotate_start"),
    ]);

    let benign_script =
        ScheduleScript::with_gates(vec![Gate::new(1, "query_reads_log", "rotate_finished")]);

    Workload {
        meta: meta_by_name("MySQL1").expect("MySQL1 in Table 2"),
        program,
        bug_script,
        benign_script,
        fix_markers: vec!["mysql1_failure".into()],
        expected: vec![
            ("rotated".into(), vec![1]),
            ("log_state_seen".into(), vec![OPEN]),
        ],
    }
}
