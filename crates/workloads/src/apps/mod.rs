//! The ten Table-2 benchmark applications.
//!
//! Each module reproduces one real-world bug kernel — the code shape the
//! paper documents (root cause, failure symptom, recoverability) — embedded
//! in application-scale filler whose site profile follows the app's Table-4
//! row (scaled ~10×; see EXPERIMENTS.md).

pub mod fft;
pub mod hawknl;
pub mod httrack;
pub mod mozilla_js;
pub mod mozilla_xp;
pub mod mysql1;
pub mod mysql2;
pub mod sqlite;
pub mod transmission;
pub mod zsnes;
