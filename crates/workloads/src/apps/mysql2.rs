//! MySQL bug 2: assertion violation from a RAR atomicity violation
//! (paper Figure 2c shape).
//!
//! A query thread reads the shared table-cache state twice — once to decide
//! it can proceed and once inside a consistency assertion. A concurrent
//! flush thread invalidates the cache between the two reads, so the
//! assertion observes a state that contradicts the earlier read. Rollback
//! re-executes both reads; they now agree, so this is the paper's fastest
//! recovery (one retry, ~8 µs).

use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};
use conair_runtime::{Gate, Program, ScheduleScript};

use crate::filler::{emit_filler, SiteProfile, WorkProfile};
use crate::meta::meta_by_name;
use crate::spec::Workload;

/// Builds the MySQL2 workload.
pub fn build() -> Workload {
    let mut mb = ModuleBuilder::new("mysql2");
    let sites = SiteProfile {
        asserts: 51, // kernel adds 1 → 52
        const_asserts: 1,
        outputs: 285,
        derefs: 1_550,
        lock_pairs: 2,
        lone_locks: 20,
    };
    let filler = emit_filler(
        &mut mb,
        sites,
        WorkProfile {
            compute_iters: 110_000,
            hot_funcs: 10,
            hot_iters: 60,
            ..WorkProfile::default()
        },
    );

    let cache_state = mb.global("table_cache_state", 1); // 1 = valid
    let served = mb.global("served", 0);

    // Thread 1: the query path with the RAR pair.
    let mut query = FuncBuilder::new("mysql_cached_query", 0);
    query.call_void(filler.init, vec![]);
    query.call_void(filler.driver, vec![]);
    let first = query.load_global(cache_state); // read 1
    query.marker("between_rar");
    query.marker("query_gate");
    let second = query.load_global(cache_state); // read 2
    let consistent = query.cmp(CmpKind::Eq, first, second);
    query.marker("mysql2_failure");
    query.assert(consistent, "cache state must not change mid-query");
    let s = query.load_global(served);
    let s1 = query.add(s, 1);
    query.store_global(served, s1);
    query.marker("query_done");
    query.output("served", s1);
    query.ret();
    mb.function(query.finish());

    // Thread 2: the cache flush that sneaks between the two reads.
    let mut flush = FuncBuilder::new("mysql_flush_tables", 0);
    flush.call_void(filler.init, vec![]);
    flush.marker("flush_point");
    flush.store_global(cache_state, 0);
    flush.marker("flush_done");
    flush.output("flushed", 1);
    flush.ret();
    mb.function(flush.finish());

    let program =
        Program::from_entry_names(mb.finish(), &["mysql_cached_query", "mysql_flush_tables"]);
    // Hold the flush until the query sits between its two reads, and hold
    // the query's second read until the flush has landed — the violation
    // then manifests in every schedule.
    let bug_script = ScheduleScript::with_gates(vec![
        Gate::new(1, "flush_point", "between_rar"),
        Gate::new(0, "query_gate", "flush_done"),
    ]);

    let benign_script = ScheduleScript::with_gates(vec![Gate::new(1, "flush_point", "query_done")]);

    Workload {
        meta: meta_by_name("MySQL2").expect("MySQL2 in Table 2"),
        program,
        bug_script,
        benign_script,
        fix_markers: vec!["mysql2_failure".into()],
        expected: vec![("served".into(), vec![1]), ("flushed".into(), vec![1])],
    }
}
