//! HawkNL (network library): hang from an AB/BA lock-order deadlock
//! (paper Figure 11).
//!
//! `Close()` takes `nlock`, calls into the driver (a destroying operation),
//! then takes `slock`. `Shutdown()` takes `slock`, inspects the socket
//! table, then takes `nlock`. The driver call truncates `Close`'s
//! reexecution region, so its `slock` site is statically unrecoverable and
//! ConAir reverts it to a plain lock (Section 4.2); `Shutdown`'s `nlock`
//! site keeps a region reaching back before its `slock` acquisition, so a
//! timed lock + rollback releases `slock` and breaks the cycle — exactly
//! the paper's account of this bug.

use conair_ir::{FuncBuilder, ModuleBuilder};
use conair_runtime::{Gate, Program, ScheduleScript};

use crate::filler::{emit_filler, SiteProfile, WorkProfile};
use crate::meta::meta_by_name;
use crate::spec::Workload;

/// Builds the HawkNL workload.
pub fn build() -> Workload {
    let mut mb = ModuleBuilder::new("hawknl");
    let sites = SiteProfile {
        asserts: 0,
        const_asserts: 0,
        outputs: 0,
        derefs: 5,
        lock_pairs: 1, // second recoverable deadlock site (Table 4: 2)
        lone_locks: 1,
    };
    let filler = emit_filler(
        &mut mb,
        sites,
        WorkProfile {
            compute_iters: 4_000,
            ..WorkProfile::default()
        },
    );

    let nlock = mb.lock("nlock");
    let slock = mb.lock("slock");
    let driver_state = mb.global("driver_state", 1);
    let n_sockets = mb.global("nSockets", 3);
    let closed = mb.global("closed_count", 0);

    // driver->Close(): mutates driver state — the idempotency-destroying
    // call between Close()'s two acquisitions.
    let driver_close = {
        let mut fb = FuncBuilder::new("driver_close", 0);
        fb.store_global(driver_state, 0);
        fb.ret();
        mb.function(fb.finish())
    };

    // Thread 1: Close() (Figure 11 left).
    let mut t1 = FuncBuilder::new("hawknl_close", 0);
    t1.call_void(filler.init, vec![]);
    t1.call_void(filler.driver, vec![]);
    t1.lock(nlock);
    t1.marker("close_has_nlock");
    t1.marker("close_gate");
    t1.call_void(driver_close, vec![]);
    t1.marker("close_slock_site");
    t1.lock(slock); // unrecoverable deadlock site
    let c = t1.load_global(closed);
    let c1 = t1.add(c, 1);
    t1.store_global(closed, c1);
    t1.unlock(slock);
    t1.unlock(nlock);
    t1.output("closed", c1);
    t1.marker("close_done");
    t1.ret();
    mb.function(t1.finish());

    // Thread 2: Shutdown() (Figure 11 right).
    let mut t2 = FuncBuilder::new("hawknl_shutdown", 0);
    t2.call_void(filler.init, vec![]);
    t2.marker("shutdown_entry");
    t2.lock(slock);
    t2.marker("shutdown_has_slock");
    t2.marker("shutdown_gate");
    let ns = t2.load_global(n_sockets);
    let nonzero = t2.cmp(conair_ir::CmpKind::Ne, ns, 0);
    let locked_bb = t2.new_block();
    let done_bb = t2.new_block();
    t2.branch(nonzero, locked_bb, done_bb);
    t2.switch_to(locked_bb);
    t2.marker("shutdown_nlock_site");
    t2.lock(nlock); // recoverable deadlock site (region reaches the slock)
    t2.store_global(n_sockets, 0);
    t2.unlock(nlock);
    t2.jump(done_bb);
    t2.switch_to(done_bb);
    t2.unlock(slock);
    t2.output("shutdown_done", 1);
    t2.ret();
    mb.function(t2.finish());

    let program = Program::from_entry_names(mb.finish(), &["hawknl_close", "hawknl_shutdown"]);
    // Force the AB/BA interleaving: each thread announces its first
    // acquisition, then waits until the other has announced.
    let bug_script = ScheduleScript::with_gates(vec![
        Gate::new(0, "close_gate", "shutdown_has_slock"),
        Gate::new(1, "shutdown_gate", "close_has_nlock"),
    ]);

    let benign_script =
        ScheduleScript::with_gates(vec![Gate::new(1, "shutdown_entry", "close_done")]);

    Workload {
        meta: meta_by_name("HawkNL").expect("HawkNL in Table 2"),
        program,
        bug_script,
        benign_script,
        fix_markers: vec!["shutdown_nlock_site".into()],
        expected: vec![
            ("closed".into(), vec![1]),
            ("shutdown_done".into(), vec![1]),
        ],
    }
}
