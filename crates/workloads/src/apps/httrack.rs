//! HTTrack (web crawler): segmentation fault from an order violation.
//!
//! A worker thread dereferences the shared `opt` options pointer before the
//! main thread has allocated and published it (the real bug: a background
//! thread used `global_opt` before `httrack_main` initialized it). The
//! pointer load sits in an idempotent region, so the hardened worker spins
//! on the pointer guard until the publication lands.

use conair_ir::{FuncBuilder, ModuleBuilder};
use conair_runtime::{Gate, Program, ScheduleScript};

use crate::filler::{emit_delay, emit_filler, SiteProfile, WorkProfile};
use crate::meta::meta_by_name;
use crate::spec::Workload;

/// Builds the HTTrack workload.
pub fn build() -> Workload {
    let mut mb = ModuleBuilder::new("httrack");
    // Table 4 row (×1/10): many developer assertions, outputs, and a large
    // dereference population.
    let sites = SiteProfile {
        asserts: 40,
        const_asserts: 26,
        outputs: 50,
        derefs: 314, // kernel adds 1 → 315
        lock_pairs: 0,
        lone_locks: 0,
    };
    let filler = emit_filler(
        &mut mb,
        sites,
        WorkProfile {
            compute_iters: 24_000,
            hot_funcs: 8,
            hot_iters: 40,
            ..WorkProfile::default()
        },
    );

    let opt_g = mb.global("global_opt", 0); // NULL until published
    let depth_field = 2i64; // opt->depth lives at word 2

    // Worker: reads opt->depth to decide crawling depth.
    let mut worker = FuncBuilder::new("httrack_worker", 0);
    worker.call_void(filler.init, vec![]);
    // The worker carries the crawl work: a restart must redo all of it.
    worker.call_void(filler.driver, vec![]);
    worker.marker("worker_started");
    let p = worker.load_global(opt_g);
    let field = worker.add(p, depth_field);
    worker.marker("httrack_deref");
    let depth = worker.load_ptr(field); // the segfault site
    worker.output("crawl_depth", depth);
    worker.ret();
    mb.function(worker.finish());

    // Main: allocates the options block, fills it, publishes it.
    let mut main = FuncBuilder::new("httrack_main", 0);
    main.call_void(filler.init, vec![]);
    main.marker("before_publish");
    // Option parsing runs after the gate releases: its duration sets the
    // number of guard retries the hardened worker performs.
    emit_delay(&mut main, 600);
    let block = main.alloc(4);
    let f = main.add(block, depth_field);
    main.store_ptr(f, 5); // opt->depth = 5
    main.store_global(opt_g, block);
    main.marker("opt_published");
    main.output("published", 1);
    main.ret();
    mb.function(main.finish());

    let program = Program::from_entry_names(mb.finish(), &["httrack_worker", "httrack_main"]);
    let bug_script =
        ScheduleScript::with_gates(vec![Gate::new(1, "before_publish", "worker_started")]);

    // The benign gate holds the worker *before* it reads the shared
    // pointer — holding at the dereference would be too late, the stale
    // NULL would already be in a register.
    let benign_script =
        ScheduleScript::with_gates(vec![Gate::new(0, "worker_started", "opt_published")]);

    Workload {
        meta: meta_by_name("HTTrack").expect("HTTrack in Table 2"),
        program,
        bug_script,
        benign_script,
        fix_markers: vec!["httrack_deref".into()],
        expected: vec![
            ("crawl_depth".into(), vec![5]),
            ("published".into(), vec![1]),
        ],
    }
}
