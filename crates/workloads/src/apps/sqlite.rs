//! SQLite: hang from a deadlock between the database handle mutex and the
//! shared b-tree mutex.
//!
//! As in HawkNL, only one side is statically recoverable: the checkpointing
//! thread performs a page flush (a shared write) between its two
//! acquisitions, so its inner site is reverted to a plain lock; the reader
//! thread's nested acquisition keeps a clean region and a timed lock, and
//! its rollback releases the b-tree mutex to break the cycle (Table 4
//! reports exactly one recoverable deadlock site for SQLite).

use conair_ir::{FuncBuilder, ModuleBuilder};
use conair_runtime::{Gate, Program, ScheduleScript};

use crate::filler::{emit_filler, SiteProfile, WorkProfile};
use crate::meta::meta_by_name;
use crate::spec::Workload;

/// Builds the SQLite workload.
pub fn build() -> Workload {
    let mut mb = ModuleBuilder::new("sqlite");
    let sites = SiteProfile {
        asserts: 0,
        const_asserts: 1,
        outputs: 25,
        derefs: 47,
        lock_pairs: 0, // the kernel provides the single recoverable site
        lone_locks: 2,
    };
    let filler = emit_filler(
        &mut mb,
        sites,
        WorkProfile {
            compute_iters: 7_000,
            ..WorkProfile::default()
        },
    );

    let db_mutex = mb.lock("db_mutex");
    let btree_mutex = mb.lock("btree_mutex");
    let page_cache = mb.global("page_cache", 0);
    let rows = mb.global("rows_read", 0);

    // Thread 1: checkpointer — db_mutex, page flush (destroying), then
    // btree_mutex: its inner site is unrecoverable.
    let mut ckpt = FuncBuilder::new("sqlite_checkpointer", 0);
    ckpt.call_void(filler.init, vec![]);
    ckpt.call_void(filler.driver, vec![]);
    ckpt.lock(db_mutex);
    ckpt.marker("ckpt_has_db");
    ckpt.marker("ckpt_gate");
    ckpt.store_global(page_cache, 1); // flush: destroys the region
    ckpt.lock(btree_mutex);
    ckpt.store_global(page_cache, 2);
    ckpt.unlock(btree_mutex);
    ckpt.unlock(db_mutex);
    ckpt.output("checkpointed", 1);
    ckpt.marker("ckpt_done");
    ckpt.ret();
    mb.function(ckpt.finish());

    // Thread 2: reader — btree_mutex, then db_mutex with a clean region:
    // the recoverable site.
    let mut reader = FuncBuilder::new("sqlite_reader", 0);
    reader.call_void(filler.init, vec![]);
    reader.marker("reader_entry");
    reader.lock(btree_mutex);
    reader.marker("reader_has_btree");
    reader.marker("reader_gate");
    reader.marker("sqlite_site");
    reader.lock(db_mutex);
    let r = reader.load_global(rows);
    let r1 = reader.add(r, 1);
    reader.store_global(rows, r1);
    reader.unlock(db_mutex);
    reader.unlock(btree_mutex);
    reader.output("rows", r1);
    reader.ret();
    mb.function(reader.finish());

    let program = Program::from_entry_names(mb.finish(), &["sqlite_checkpointer", "sqlite_reader"]);
    let bug_script = ScheduleScript::with_gates(vec![
        Gate::new(0, "ckpt_gate", "reader_has_btree"),
        Gate::new(1, "reader_gate", "ckpt_has_db"),
    ]);

    let benign_script = ScheduleScript::with_gates(vec![Gate::new(1, "reader_entry", "ckpt_done")]);

    Workload {
        meta: meta_by_name("SQLite").expect("SQLite in Table 2"),
        program,
        bug_script,
        benign_script,
        fix_markers: vec!["sqlite_site".into()],
        expected: vec![("checkpointed".into(), vec![1]), ("rows".into(), vec![1])],
    }
}
