//! FFT (SPLASH-2 style scientific kernel): wrong-output failure from a
//! combined atomicity/order violation (paper Figure 9).
//!
//! The reporting thread reads the shared `End` timestamp before the timer
//! thread has written it, so the printed "Total" is wrong. The
//! developer-supplied output oracle (`End > 0`) lets ConAir detect the
//! failure; the checkpoint right before the read lets rollback re-read
//! until the timer thread catches up.
//!
//! The compute side is a real (fixed-point, iterative Cooley–Tukey style)
//! butterfly loop so the workload has genuine FFT-shaped dynamic work.

use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};
use conair_runtime::{Gate, Program, ScheduleScript};

use crate::filler::{emit_delay, emit_filler, SiteProfile, WorkProfile};
use crate::meta::meta_by_name;
use crate::spec::Workload;

const INIT_TICKS: i64 = 1;
const END_TICKS: i64 = 42;
/// log2 of the transform size (8-point FFT: 3 stages).
const LOG2_N: i64 = 3;

/// Builds the FFT workload.
pub fn build() -> Workload {
    let mut mb = ModuleBuilder::new("fft");
    let sites = SiteProfile {
        asserts: 4,
        const_asserts: 1,
        outputs: 30,
        derefs: 14,
        lock_pairs: 0,
        lone_locks: 0,
    };
    let filler = emit_filler(
        &mut mb,
        sites,
        WorkProfile {
            compute_iters: 1_200,
            ..WorkProfile::default()
        },
    );

    let init_g = mb.global("Init", INIT_TICKS);
    let end_g = mb.global("End", 0); // 0 until the timer thread writes it
    let signal = mb.global_array("signal", 8, 0);

    // The butterfly kernel: an in-place pass over the signal array for each
    // of the LOG2_N stages (integer add/sub butterflies — enough to model
    // the memory/arithmetic shape without complex arithmetic).
    let butterfly = {
        let mut fb = FuncBuilder::new("fft_butterfly", 0);
        let base = fb.addr_of_global(signal);
        // Seed the signal deterministically.
        for i in 0..8 {
            let p = fb.add(base, i);
            fb.store_ptr(p, (i * 3 + 1) as i64);
        }
        fb.counted_loop(LOG2_N, |b, stage| {
            let one = b.copy(1);
            let half = b.binop(conair_ir::BinOpKind::Shl, one, stage);
            b.counted_loop(4, move |b2, k| {
                // Butterfly between k and k+half (indices wrapped to stay
                // in range — the shape, not bit-exactness, is the point).
                let i0 = b2.binop(conair_ir::BinOpKind::And, k, 7);
                let i1r = b2.add(k, half);
                let i1 = b2.binop(conair_ir::BinOpKind::And, i1r, 7);
                let base2 = b2.addr_of_global(signal);
                let p0 = b2.add(base2, i0);
                let p1 = b2.add(base2, i1);
                let a = b2.load_ptr(p0);
                let bb = b2.load_ptr(p1);
                let sum = b2.add(a, bb);
                let diff = b2.sub(a, bb);
                b2.store_ptr(p0, sum);
                b2.store_ptr(p1, diff);
            });
        });
        fb.ret();
        mb.function(fb.finish())
    };

    // Thread 1 (Figure 9 thread 1): compute, then report timing.
    let mut t1 = FuncBuilder::new("fft_main", 0);
    t1.call_void(filler.init, vec![]);
    t1.call_void(butterfly, vec![]);
    t1.call_void(filler.driver, vec![]);
    let init_v = t1.load_global(init_g);
    t1.output("start", init_v);
    t1.marker("fft_before_read");
    let tmp = t1.load_global(end_g);
    t1.marker("fft_read_done");
    // The developer-specified output-correctness condition (Figure 9).
    let ok = t1.cmp(CmpKind::Gt, tmp, 0);
    t1.marker("fft_failure");
    t1.output_assert(ok, "End must be set before reporting");
    t1.output("stop", tmp);
    let total = t1.sub(tmp, init_v);
    t1.output("total", total);
    t1.ret();
    mb.function(t1.finish());

    // Thread 2 (Figure 9 thread 2): the timer write `End = time(NULL)`.
    let mut t2 = FuncBuilder::new("fft_timer", 0);
    t2.call_void(filler.init, vec![]);
    t2.marker("fft_before_end_write");
    // The timer tick lands shortly after the gate releases; the reporter
    // retries meanwhile (the paper observed ~97 retries for FFT).
    emit_delay(&mut t2, 180);
    t2.store_global(end_g, END_TICKS);
    t2.marker("fft_end_written");
    t2.ret();
    mb.function(t2.finish());

    let program = Program::from_entry_names(mb.finish(), &["fft_main", "fft_timer"]);
    // Force the bug: hold the timer write until the reporter has reached
    // its read.
    // Hold the timer write until the reporter has already read the stale
    // End, so the wrong-output failure manifests deterministically.
    let bug_script =
        ScheduleScript::with_gates(vec![Gate::new(1, "fft_before_end_write", "fft_read_done")]);

    let benign_script =
        ScheduleScript::with_gates(vec![Gate::new(0, "fft_before_read", "fft_end_written")]);

    Workload {
        meta: meta_by_name("FFT").expect("FFT in Table 2"),
        program,
        bug_script,
        benign_script,
        fix_markers: vec!["fft_failure".into()],
        expected: vec![
            ("start".into(), vec![INIT_TICKS]),
            ("stop".into(), vec![END_TICKS]),
            ("total".into(), vec![END_TICKS - INIT_TICKS]),
        ],
    }
}
