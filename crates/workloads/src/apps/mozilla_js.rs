//! Mozilla JavaScript engine: hang from a deadlock between the garbage
//! collector lock and an object-table lock.
//!
//! Both threads nest their second acquisition inside the first with no
//! destroying operation in between, so *both* deadlock sites are
//! statically recoverable: whichever timed lock times out first releases
//! its outer lock and the other thread proceeds — the paper reports this
//! among the fast recoveries (one retry, tens of microseconds).

use conair_ir::{FuncBuilder, ModuleBuilder};
use conair_runtime::{Gate, Program, ScheduleScript};

use crate::filler::{emit_filler, SiteProfile, WorkProfile};
use crate::meta::meta_by_name;
use crate::spec::Workload;

/// Builds the MozillaJS workload.
pub fn build() -> Workload {
    let mut mb = ModuleBuilder::new("mozilla_js");
    let sites = SiteProfile {
        asserts: 0,
        const_asserts: 0,
        outputs: 5,
        derefs: 13,
        lock_pairs: 2, // + the kernel's 2 recoverable sites → Table 4's 6
        lone_locks: 6,
    };
    let filler = emit_filler(
        &mut mb,
        sites,
        WorkProfile {
            compute_iters: 9_000,
            ..WorkProfile::default()
        },
    );

    let gc_lock = mb.lock("gc_lock");
    let obj_lock = mb.lock("obj_lock");
    let gc_runs = mb.global("gc_runs", 0);
    let obj_count = mb.global("obj_count", 7);

    // Thread 1: the GC thread — gc_lock, then obj_lock to scan objects.
    let mut gc = FuncBuilder::new("js_gc", 0);
    gc.call_void(filler.init, vec![]);
    gc.call_void(filler.driver, vec![]);
    gc.lock(gc_lock);
    gc.marker("gc_has_gclock");
    gc.marker("gc_gate");
    gc.marker("js_gc_site");
    gc.lock(obj_lock);
    let n = gc.load_global(gc_runs);
    let n1 = gc.add(n, 1);
    gc.store_global(gc_runs, n1);
    gc.unlock(obj_lock);
    gc.unlock(gc_lock);
    gc.output("gc_runs", n1);
    gc.marker("gc_done");
    gc.ret();
    mb.function(gc.finish());

    // Thread 2: a mutator allocating an object — obj_lock, then gc_lock to
    // check whether a collection is pending.
    let mut mutator = FuncBuilder::new("js_mutator", 0);
    mutator.call_void(filler.init, vec![]);
    mutator.marker("mut_entry");
    mutator.lock(obj_lock);
    mutator.marker("mut_has_objlock");
    mutator.marker("mut_gate");
    mutator.marker("js_mut_site");
    mutator.lock(gc_lock);
    let c = mutator.load_global(obj_count);
    let c1 = mutator.add(c, 1);
    mutator.store_global(obj_count, c1);
    mutator.unlock(gc_lock);
    mutator.unlock(obj_lock);
    mutator.output("objects", c1);
    mutator.ret();
    mb.function(mutator.finish());

    let program = Program::from_entry_names(mb.finish(), &["js_gc", "js_mutator"]);
    let bug_script = ScheduleScript::with_gates(vec![
        Gate::new(0, "gc_gate", "mut_has_objlock"),
        Gate::new(1, "mut_gate", "gc_has_gclock"),
    ]);

    let benign_script = ScheduleScript::with_gates(vec![Gate::new(1, "mut_entry", "gc_done")]);

    Workload {
        meta: meta_by_name("MozillaJS").expect("MozillaJS in Table 2"),
        program,
        bug_script,
        benign_script,
        fix_markers: vec!["js_gc_site".into(), "js_mut_site".into()],
        expected: vec![("gc_runs".into(), vec![1]), ("objects".into(), vec![8])],
    }
}
