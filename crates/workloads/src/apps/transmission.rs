//! Transmission (BitTorrent client): assertion violation from an order
//! violation, requiring **inter-procedural** recovery.
//!
//! The event loop asserts inside a helper (`checkBandwidth`) that the
//! bandwidth allocator field it received is initialized; the session thread
//! publishes the allocator late. The assert's condition derives only from
//! the helper's parameter, so the reexecution point must climb to the
//! caller (which re-reads the shared session pointer) — the second of the
//! paper's two inter-procedural benchmarks.

use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder, Operand};
use conair_runtime::{Gate, Program, ScheduleScript};

use crate::filler::{emit_delay, emit_filler, SiteProfile, WorkProfile};
use crate::meta::meta_by_name;
use crate::spec::Workload;

/// Builds the Transmission workload.
pub fn build() -> Workload {
    let mut mb = ModuleBuilder::new("transmission");
    let sites = SiteProfile {
        asserts: 42, // kernel adds 1 → 43
        const_asserts: 2,
        outputs: 19,
        derefs: 215,
        lock_pairs: 0,
        lone_locks: 0,
    };
    let filler = emit_filler(
        &mut mb,
        sites,
        WorkProfile {
            compute_iters: 16_000,
            hot_funcs: 6,
            hot_iters: 30,
            ..WorkProfile::default()
        },
    );

    let session_band = mb.global("session_bandwidth", 0); // 0 until published
    let events = mb.global("events_handled", 0);

    // checkBandwidth(band): assert(band != NULL) — the Transmission
    // `assert(tr_isBandwidth(b))` shape.
    let check_bandwidth = {
        let mut fb = FuncBuilder::new("checkBandwidth", 1);
        let band = fb.param(0);
        let ok = fb.cmp(CmpKind::Ne, band, 0);
        fb.marker("transmission_assert");
        fb.assert(ok, "bandwidth allocator must be initialized");
        fb.ret_value(band);
        mb.function(fb.finish())
    };

    // Event loop: bumps its event counter (destroying — anchors the
    // caller-side reexecution point), re-reads the session field and calls
    // the helper.
    let event_step = {
        let mut fb = FuncBuilder::new("event_step", 0);
        let e = fb.load_global(events);
        let e1 = fb.add(e, 1);
        fb.store_global(events, e1);
        let band = fb.load_global(session_band);
        let checked = fb.call(check_bandwidth, vec![Operand::Reg(band)]);
        fb.ret_value(checked);
        mb.function(fb.finish())
    };

    let mut t1 = FuncBuilder::new("tr_event_loop", 0);
    t1.call_void(filler.init, vec![]);
    // The event loop carries the client's work (redone on restart).
    t1.call_void(filler.driver, vec![]);
    t1.marker("loop_started");
    let band = t1.call(event_step, vec![]);
    t1.output("bandwidth", band);
    t1.ret();
    mb.function(t1.finish());

    // Session thread: publishes the allocator after its init work.
    let mut t2 = FuncBuilder::new("tr_session_init", 0);
    t2.call_void(filler.init, vec![]);
    t2.marker("before_session_publish");
    // Session construction time after the gate sets the retry count.
    emit_delay(&mut t2, 1_500);
    t2.store_global(session_band, 9_000);
    t2.marker("session_published");
    t2.ret();
    mb.function(t2.finish());

    let program = Program::from_entry_names(mb.finish(), &["tr_event_loop", "tr_session_init"]);
    let bug_script =
        ScheduleScript::with_gates(vec![Gate::new(1, "before_session_publish", "loop_started")]);

    let benign_script =
        ScheduleScript::with_gates(vec![Gate::new(0, "loop_started", "session_published")]);

    Workload {
        meta: meta_by_name("Transmission").expect("Transmission in Table 2"),
        program,
        bug_script,
        benign_script,
        fix_markers: vec!["transmission_assert".into()],
        expected: vec![("bandwidth".into(), vec![9_000])],
    }
}
