//! ZSNES (game console emulator): assertion violation from an order
//! violation.
//!
//! The render thread asserts that the video buffer has been configured
//! before it draws a frame; the initialization thread sets the depth late.
//! Intra-procedural recovery suffices: the assertion's condition comes
//! straight from a shared read inside an idempotent region, so the render
//! thread simply re-reads until initialization lands.

use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};
use conair_runtime::{Gate, Program, ScheduleScript};

use crate::filler::{emit_filler, SiteProfile, WorkProfile};
use crate::meta::meta_by_name;
use crate::spec::Workload;

const DEPTH: i64 = 16;

/// Builds the ZSNES workload.
pub fn build() -> Workload {
    let mut mb = ModuleBuilder::new("zsnes");
    let sites = SiteProfile {
        asserts: 0, // the kernel's assert is the 1 of Table 4
        const_asserts: 2,
        outputs: 50,
        derefs: 33,
        lock_pairs: 0,
        lone_locks: 0,
    };
    let filler = emit_filler(
        &mut mb,
        sites,
        WorkProfile {
            compute_iters: 5_000,
            ..WorkProfile::default()
        },
    );

    let vid_depth = mb.global("vid_depth", 0); // 0 until init
    let frame_buf = mb.global_array("frame_buf", 16, 0);

    // Render thread: asserts the configured depth, then draws a frame.
    let mut render = FuncBuilder::new("zsnes_render", 0);
    render.call_void(filler.init, vec![]);
    render.call_void(filler.driver, vec![]);
    render.marker("render_started");
    let depth = render.load_global(vid_depth);
    render.marker("depth_read_done");
    let ok = render.cmp(CmpKind::Ne, depth, 0);
    render.marker("zsnes_assert");
    render.assert(ok, "video depth must be configured before drawing");
    // Draw: fill the frame buffer with a depth-derived pattern.
    let base = render.addr_of_global(frame_buf);
    render.counted_loop(16, |b, i| {
        let p = b.add(base, i);
        let v = b.mul(i, DEPTH);
        b.store_ptr(p, v);
    });
    render.output("frame_drawn", depth);
    render.ret();
    mb.function(render.finish());

    // Init thread: configures the video depth.
    let mut init = FuncBuilder::new("zsnes_init", 0);
    init.call_void(filler.init, vec![]);
    init.marker("before_depth_set");
    init.store_global(vid_depth, DEPTH);
    init.marker("depth_set");
    init.ret();
    mb.function(init.finish());

    let program = Program::from_entry_names(mb.finish(), &["zsnes_render", "zsnes_init"]);
    // Hold the configuration until the renderer has read the zero depth.
    let bug_script =
        ScheduleScript::with_gates(vec![Gate::new(1, "before_depth_set", "depth_read_done")]);

    let benign_script =
        ScheduleScript::with_gates(vec![Gate::new(0, "render_started", "depth_set")]);

    Workload {
        meta: meta_by_name("ZSNES").expect("ZSNES in Table 2"),
        program,
        bug_script,
        benign_script,
        fix_markers: vec!["zsnes_assert".into()],
        expected: vec![("frame_drawn".into(), vec![DEPTH])],
    }
}
