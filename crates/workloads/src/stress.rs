//! Checkpoint-density stress programs for the featherweight-checkpoint
//! benchmark (`bench_interp --checkpoint`, `BENCH_checkpoint.json`).
//!
//! The paper's cost model (§3.3, Table 7) calls a checkpoint "saving a few
//! registers" — cheap enough to execute on hot paths at every reexecution
//! point. These single-threaded programs put that claim under a microscope:
//!
//! * [`checkpoint_dense_program`] executes a checkpoint every loop
//!   iteration inside a deliberately *wide* frame (`regs` virtual
//!   registers), so any checkpoint implementation whose cost scales with
//!   frame size is exposed immediately;
//! * [`checkpoint_dense_control`] is the identical program with the
//!   checkpoint replaced by a `nop` — the differential isolates the
//!   per-checkpoint cost from loop overhead;
//! * [`rollback_dense_program`] forces `fails_per_pass - 1` rollbacks per
//!   iteration through a fail guard keyed to a (non-restored) stack-slot
//!   attempt counter, measuring the cost of the rollback path itself.
//!
//! All three are deterministic and single-threaded: every reported number
//! is a property of the checkpoint machinery, not of scheduling noise.

use conair_ir::{
    BinOpKind, CmpKind, FuncBuilder, GuardKind, Inst, ModuleBuilder, PointId, Reg, SiteId,
};
use conair_runtime::Program;

/// Emits `width` single-use register definitions so the frame's register
/// file is `width` registers wide. Returns the last defined register.
fn widen_frame(fb: &mut FuncBuilder, width: usize) -> Reg {
    let mut last = fb.copy(1);
    for _ in 1..width.max(1) {
        last = fb.add(last, 1);
    }
    last
}

/// A single-threaded loop of `iters` iterations, each executing one
/// checkpoint and one register write, in a frame `regs` registers wide.
pub fn checkpoint_dense_program(regs: usize, iters: u64) -> Program {
    build_dense(regs, iters, true)
}

/// The control for [`checkpoint_dense_program`]: byte-for-byte the same
/// loop with the checkpoint replaced by a `nop`, so
/// `(dense_wall - control_wall) / checkpoints` is the marginal cost of one
/// checkpoint execution.
pub fn checkpoint_dense_control(regs: usize, iters: u64) -> Program {
    build_dense(regs, iters, false)
}

fn build_dense(regs: usize, iters: u64, checkpoint: bool) -> Program {
    let mut mb = ModuleBuilder::new("checkpoint_stress");
    let mut fb = FuncBuilder::new("main", 0);
    let acc = widen_frame(&mut fb, regs);
    fb.counted_loop(iters as i64, |fb, _i| {
        if checkpoint {
            fb.push(Inst::Checkpoint { point: PointId(0) });
        } else {
            fb.nop();
        }
        // One register write inside the epoch: the undo log sees exactly
        // one record per iteration, the clone implementation copies the
        // whole `regs`-wide file.
        fb.push(Inst::BinOp {
            dst: acc,
            op: BinOpKind::Add,
            lhs: acc.into(),
            rhs: 1.into(),
        });
    });
    fb.ret();
    mb.function(fb.finish());
    Program::from_entry_names(mb.finish(), &["main"])
}

/// A single-threaded loop of `iters` iterations in a frame `regs`
/// registers wide, where each iteration checkpoints and then fails a guard
/// until a stack-slot attempt counter (not restored by rollback, exactly
/// like the paper's stack-slot semantics) reaches a multiple of
/// `fails_per_pass` — forcing `fails_per_pass - 1` rollbacks per
/// iteration.
///
/// # Panics
///
/// Panics if `fails_per_pass` is zero.
pub fn rollback_dense_program(regs: usize, iters: u64, fails_per_pass: u64) -> Program {
    assert!(fails_per_pass >= 1, "fails_per_pass must be >= 1");
    let mut mb = ModuleBuilder::new("rollback_stress");
    let mut fb = FuncBuilder::new("main", 0);
    let acc = widen_frame(&mut fb, regs);
    let attempts = fb.local();
    fb.store_local(attempts, 0);
    fb.counted_loop(iters as i64, |fb, _i| {
        fb.push(Inst::Checkpoint { point: PointId(0) });
        // The attempt counter lives in a stack slot, so it survives the
        // rollback and eventually satisfies the guard.
        let n = fb.load_local(attempts);
        let next = fb.add(n, 1);
        fb.store_local(attempts, next);
        // A couple of register writes inside the epoch (what the undo log
        // must restore on each rollback).
        fb.push(Inst::BinOp {
            dst: acc,
            op: BinOpKind::Add,
            lhs: acc.into(),
            rhs: next.into(),
        });
        let rem = fb.binop(BinOpKind::Rem, next, fails_per_pass as i64);
        let pass = fb.cmp(CmpKind::Eq, rem, 0);
        fb.push(Inst::FailGuard {
            kind: GuardKind::Assert,
            cond: pass.into(),
            site: SiteId(0),
            msg: "rollback stress guard".into(),
        });
    });
    fb.ret();
    mb.function(fb.finish());
    Program::from_entry_names(mb.finish(), &["main"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_runtime::{run_once, MachineConfig, RunOutcome};

    #[test]
    fn dense_program_checkpoints_every_iteration() {
        let p = checkpoint_dense_program(32, 100);
        let r = run_once(&p, &MachineConfig::default(), 0);
        assert!(matches!(r.outcome, RunOutcome::Completed));
        assert_eq!(r.stats.checkpoints, 100);
        assert_eq!(r.stats.rollbacks, 0);
    }

    #[test]
    fn control_program_never_checkpoints() {
        let p = checkpoint_dense_control(32, 100);
        let r = run_once(&p, &MachineConfig::default(), 0);
        assert!(matches!(r.outcome, RunOutcome::Completed));
        assert_eq!(r.stats.checkpoints, 0);
        // Same instruction count as the dense program (nop for checkpoint).
        let d = run_once(
            &checkpoint_dense_program(32, 100),
            &MachineConfig::default(),
            0,
        );
        assert_eq!(r.stats.insts, d.stats.insts);
    }

    #[test]
    fn rollback_program_rolls_back_predictably() {
        let fails_per_pass = 4;
        let iters = 50;
        let p = rollback_dense_program(32, iters, fails_per_pass);
        let r = run_once(&p, &MachineConfig::default(), 0);
        assert!(
            matches!(r.outcome, RunOutcome::Completed),
            "{:?}",
            r.outcome
        );
        assert_eq!(r.stats.rollbacks, iters * (fails_per_pass - 1));
        assert_eq!(r.stats.checkpoints, iters * fails_per_pass);
    }
}
