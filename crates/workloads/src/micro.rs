//! The four atomicity-violation microbenchmarks of paper Figure 2.
//!
//! Each pattern names the dependence whose atomicity is violated:
//!
//! * **WAW** (2a): a writer pair CLOSE→OPEN interleaved with a reader —
//!   recoverable by rolling back the reader (idempotent region).
//! * **RAW** (2b): a thread writes a shared pointer then dereferences it;
//!   another thread nulls it in between — recovery would need to reexecute
//!   the *write*, which idempotent regions exclude; only the
//!   buffered-writes policy (or whole-program restart) recovers it.
//! * **RAR** (2c): two reads expected consistent — recoverable.
//! * **WAR** (2d): read-modify-write losing a concurrent update —
//!   like RAW, needs shared-write reexecution.
//!
//! These four power the Figure-4 design-space ablation: the further right
//! the region policy, the more of them recover.

use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};
use conair_runtime::{Gate, Program, ScheduleScript};

/// Which Figure-2 pattern a micro workload exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicityPattern {
    /// Figure 2a — write-after-write interleaved with a read.
    Waw,
    /// Figure 2b — read-after-write with an intervening write.
    Raw,
    /// Figure 2c — read-after-read with an intervening write.
    Rar,
    /// Figure 2d — write-after-read losing an update.
    War,
}

impl AtomicityPattern {
    /// All four patterns in Figure-2 order.
    pub const ALL: [AtomicityPattern; 4] = [
        AtomicityPattern::Waw,
        AtomicityPattern::Raw,
        AtomicityPattern::Rar,
        AtomicityPattern::War,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AtomicityPattern::Waw => "WAW",
            AtomicityPattern::Raw => "RAW",
            AtomicityPattern::Rar => "RAR",
            AtomicityPattern::War => "WAR",
        }
    }

    /// Whether idempotent-region recovery (the paper's design point) can
    /// recover this pattern (Section 2.2: "only RAW and WAR atomicity
    /// violations require reexecuting shared-variable writes").
    pub fn idempotent_recoverable(self) -> bool {
        matches!(self, AtomicityPattern::Waw | AtomicityPattern::Rar)
    }
}

/// A Figure-2 microbenchmark: program + bug-forcing script + the expected
/// output on a correct run.
#[derive(Debug, Clone)]
pub struct MicroWorkload {
    /// The pattern.
    pub pattern: AtomicityPattern,
    /// The program (unhardened).
    pub program: Program,
    /// Script forcing the violation.
    pub bug_script: ScheduleScript,
    /// Label and expected values of the checked output.
    pub expected: (String, Vec<i64>),
}

/// Builds the microbenchmark for `pattern`.
pub fn build_micro(pattern: AtomicityPattern) -> MicroWorkload {
    match pattern {
        AtomicityPattern::Waw => waw(),
        AtomicityPattern::Raw => raw(),
        AtomicityPattern::Rar => rar(),
        AtomicityPattern::War => war(),
    }
}

/// Figure 2a: thread 1 `log=CLOSE; log=OPEN`, thread 2 asserts `log==OPEN`.
fn waw() -> MicroWorkload {
    let mut mb = ModuleBuilder::new("micro_waw");
    let log = mb.global("log", 1);

    let mut t1 = FuncBuilder::new("writer", 0);
    t1.store_global(log, 0); // CLOSE
    t1.marker("closed");
    t1.marker("writer_gate");
    t1.store_global(log, 1); // OPEN
    t1.ret();
    mb.function(t1.finish());

    let mut t2 = FuncBuilder::new("reader", 0);
    t2.nop(); // keeps the region boundary off the function entrance
    t2.marker("read_point");
    let v = t2.load_global(log);
    t2.marker("read_done");
    let ok = t2.cmp(CmpKind::Eq, v, 1);
    t2.output_assert(ok, "log must be OPEN");
    t2.output("observed", v);
    t2.ret();
    mb.function(t2.finish());

    MicroWorkload {
        pattern: AtomicityPattern::Waw,
        program: Program::from_entry_names(mb.finish(), &["writer", "reader"]),
        bug_script: ScheduleScript::with_gates(vec![
            Gate::new(0, "writer_gate", "read_done"),
            Gate::new(1, "read_point", "closed"),
        ]),
        expected: ("observed".into(), vec![1]),
    }
}

/// Figure 2b: thread 1 `ptr=aptr; tmp=*ptr`, thread 2 `ptr=NULL`.
fn raw() -> MicroWorkload {
    let mut mb = ModuleBuilder::new("micro_raw");
    let ptr = mb.global("ptr", 0);
    let aobj = mb.global_array("aobj", 2, 77);

    let mut t1 = FuncBuilder::new("user", 0);
    let a = t1.addr_of_global(aobj);
    t1.store_global(ptr, a); // the write the recovery would need to redo
    t1.marker("wrote_ptr");
    t1.marker("user_gate");
    let p = t1.load_global(ptr);
    let tmp = t1.load_ptr(p); // segfault site when p == NULL
    t1.output("observed", tmp);
    t1.ret();
    mb.function(t1.finish());

    let mut t2 = FuncBuilder::new("nuller", 0);
    t2.marker("null_point");
    t2.store_global(ptr, 0);
    t2.marker("null_point_done");
    t2.ret();
    mb.function(t2.finish());

    MicroWorkload {
        pattern: AtomicityPattern::Raw,
        program: Program::from_entry_names(mb.finish(), &["user", "nuller"]),
        bug_script: ScheduleScript::with_gates(vec![
            Gate::new(0, "user_gate", "null_point_done"),
            Gate::new(1, "null_point", "wrote_ptr"),
        ]),
        expected: ("observed".into(), vec![77]),
    }
}

/// Figure 2c: thread 1 `if(ptr) fputs(ptr)`, thread 2 `ptr=NULL` — modelled
/// as two reads expected consistent, with the use guarded by the first.
fn rar() -> MicroWorkload {
    let mut mb = ModuleBuilder::new("micro_rar");
    let ptr = mb.global("ptr", 0);
    let obj = mb.global_array("obj", 2, 33);

    // Publisher initializes ptr to a valid object up front.
    let mut init = FuncBuilder::new("publisher", 0);
    let a = init.addr_of_global(obj);
    init.store_global(ptr, a);
    init.marker("published");
    init.ret();
    mb.function(init.finish());

    let mut t1 = FuncBuilder::new("printer", 0);
    t1.marker("printer_wait"); // gated until published
    t1.nop();
    let first = t1.load_global(ptr);
    let nonnull = t1.cmp(CmpKind::Ne, first, 0);
    let use_bb = t1.new_block();
    let done_bb = t1.new_block();
    t1.marker("checked");
    t1.marker("printer_gate");
    t1.branch(nonnull, use_bb, done_bb);
    t1.switch_to(use_bb);
    let second = t1.load_global(ptr); // the racing second read
    let v = t1.load_ptr(second); // faults if nulled in between
    t1.output("observed", v);
    t1.jump(done_bb);
    t1.switch_to(done_bb);
    t1.ret();
    mb.function(t1.finish());

    let mut t2 = FuncBuilder::new("nuller", 0);
    t2.marker("null_point");
    t2.store_global(ptr, 0);
    t2.marker("nulled");
    t2.ret();
    mb.function(t2.finish());

    MicroWorkload {
        pattern: AtomicityPattern::Rar,
        program: Program::from_entry_names(mb.finish(), &["publisher", "printer", "nuller"]),
        bug_script: ScheduleScript::with_gates(vec![
            Gate::new(1, "printer_wait", "published"),
            Gate::new(1, "printer_gate", "nulled"),
            Gate::new(2, "null_point", "checked"),
        ]),
        // On recovery the printer re-reads NULL and takes the safe branch:
        // no output — matching the original `if (ptr)` semantics.
        expected: ("observed".into(), vec![]),
    }
}

/// Figure 2d: thread 1 `cnt+=d1; print(cnt)`, thread 2 `cnt+=d2`.
fn war() -> MicroWorkload {
    let mut mb = ModuleBuilder::new("micro_war");
    let cnt = mb.global("cnt", 0);
    const D1: i64 = 10;
    const D2: i64 = 32;

    let mut t1 = FuncBuilder::new("depositor1", 0);
    let read = t1.load_global(cnt);
    t1.marker("read_balance");
    t1.marker("depositor_gate");
    let sum = t1.add(read, D1);
    t1.store_global(cnt, sum); // the lost-update write
    let bal = t1.load_global(cnt);
    let ok = t1.cmp(CmpKind::Eq, bal, D1 + D2);
    t1.output_assert(ok, "balance must include both deposits");
    t1.output("balance", bal);
    t1.ret();
    mb.function(t1.finish());

    let mut t2 = FuncBuilder::new("depositor2", 0);
    t2.marker("deposit2_point");
    let r = t2.load_global(cnt);
    let s = t2.add(r, D2);
    t2.store_global(cnt, s);
    t2.marker("deposit2_done");
    t2.ret();
    mb.function(t2.finish());

    MicroWorkload {
        pattern: AtomicityPattern::War,
        program: Program::from_entry_names(mb.finish(), &["depositor1", "depositor2"]),
        bug_script: ScheduleScript::with_gates(vec![
            Gate::new(0, "depositor_gate", "deposit2_done"),
            Gate::new(1, "deposit2_point", "read_balance"),
        ]),
        expected: ("balance".into(), vec![D1 + D2]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::validate;

    #[test]
    fn all_four_patterns_build_and_validate() {
        for p in AtomicityPattern::ALL {
            let m = build_micro(p);
            validate(&m.program.module).unwrap_or_else(|e| panic!("{}: {:?}", p.name(), e));
            assert_eq!(m.pattern, p);
        }
    }

    #[test]
    fn recoverability_matches_section_2_2() {
        assert!(AtomicityPattern::Waw.idempotent_recoverable());
        assert!(AtomicityPattern::Rar.idempotent_recoverable());
        assert!(!AtomicityPattern::Raw.idempotent_recoverable());
        assert!(!AtomicityPattern::War.idempotent_recoverable());
    }
}
