//! Workload metadata mirroring paper Table 2.

use std::fmt;

/// Root-cause classes of the evaluated bugs (Table 2 "Causes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RootCause {
    /// Unserializable interleaving of two code regions (Figure 2).
    AtomicityViolation,
    /// Operation executes after another it should precede.
    OrderViolation,
    /// Both an atomicity and an order violation (FFT).
    AtomicityAndOrder,
    /// Circular lock wait.
    Deadlock,
}

impl fmt::Display for RootCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RootCause::AtomicityViolation => "A Vio.",
            RootCause::OrderViolation => "O Vio.",
            RootCause::AtomicityAndOrder => "A/O Vio.",
            RootCause::Deadlock => "deadlock",
        };
        f.write_str(s)
    }
}

/// Failure symptoms (Table 2 "Failures").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Symptom {
    /// Incorrect or missing output.
    WrongOutput,
    /// The program stops making progress.
    Hang,
    /// Invalid memory access.
    SegFault,
    /// `assert` fires.
    Assertion,
}

impl fmt::Display for Symptom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Symptom::WrongOutput => "w. output",
            Symptom::Hang => "hang",
            Symptom::SegFault => "seg. fault",
            Symptom::Assertion => "assertion",
        };
        f.write_str(s)
    }
}

/// Static metadata of one benchmark application (one Table 2 row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadMeta {
    /// Application name.
    pub name: &'static str,
    /// Application type (Table 2 column 2).
    pub app_type: &'static str,
    /// Lines of code of the real application (Table 2 column 3, e.g.
    /// "1.2K", "681K") — reported for reference; the synthetic module's own
    /// size is measured separately.
    pub paper_loc: &'static str,
    /// Failure symptom.
    pub symptom: Symptom,
    /// Root cause.
    pub cause: RootCause,
    /// Whether recovery requires a developer-provided output oracle
    /// (the ✓c entries of Table 3: FFT and MySQL1).
    pub needs_oracle: bool,
    /// Whether recovery requires inter-procedural reexecution
    /// (Section 6.1.1: Transmission and MozillaXP).
    pub needs_interproc: bool,
}

/// Table 2, as data.
pub const TABLE2: [WorkloadMeta; 10] = [
    WorkloadMeta {
        name: "FFT",
        app_type: "Scientific computing",
        paper_loc: "1.2K",
        symptom: Symptom::WrongOutput,
        cause: RootCause::AtomicityAndOrder,
        needs_oracle: true,
        needs_interproc: false,
    },
    WorkloadMeta {
        name: "HawkNL",
        app_type: "Network library",
        paper_loc: "10K",
        symptom: Symptom::Hang,
        cause: RootCause::Deadlock,
        needs_oracle: false,
        needs_interproc: false,
    },
    WorkloadMeta {
        name: "HTTrack",
        app_type: "Web crawler",
        paper_loc: "55K",
        symptom: Symptom::SegFault,
        cause: RootCause::OrderViolation,
        needs_oracle: false,
        needs_interproc: false,
    },
    WorkloadMeta {
        name: "MozillaXP",
        app_type: "XPCOM: cross platform component object model",
        paper_loc: "112K",
        symptom: Symptom::SegFault,
        cause: RootCause::OrderViolation,
        needs_oracle: false,
        needs_interproc: true,
    },
    WorkloadMeta {
        name: "MozillaJS",
        app_type: "JavaScript engine",
        paper_loc: "120K",
        symptom: Symptom::Hang,
        cause: RootCause::Deadlock,
        needs_oracle: false,
        needs_interproc: false,
    },
    WorkloadMeta {
        name: "MySQL1",
        app_type: "Database server",
        paper_loc: "681K",
        symptom: Symptom::WrongOutput,
        cause: RootCause::AtomicityViolation,
        needs_oracle: true,
        needs_interproc: false,
    },
    WorkloadMeta {
        name: "MySQL2",
        app_type: "Database server",
        paper_loc: "693K",
        symptom: Symptom::Assertion,
        cause: RootCause::AtomicityViolation,
        needs_oracle: false,
        needs_interproc: false,
    },
    WorkloadMeta {
        name: "Transmission",
        app_type: "BitTorrent client",
        paper_loc: "95K",
        symptom: Symptom::Assertion,
        cause: RootCause::OrderViolation,
        needs_oracle: false,
        needs_interproc: true,
    },
    WorkloadMeta {
        name: "SQLite",
        app_type: "Database engine",
        paper_loc: "67K",
        symptom: Symptom::Hang,
        cause: RootCause::Deadlock,
        needs_oracle: false,
        needs_interproc: false,
    },
    WorkloadMeta {
        name: "ZSNES",
        app_type: "Game simulator",
        paper_loc: "37K",
        symptom: Symptom::Assertion,
        cause: RootCause::OrderViolation,
        needs_oracle: false,
        needs_interproc: false,
    },
];

/// Looks up a Table-2 row by name.
pub fn meta_by_name(name: &str) -> Option<&'static WorkloadMeta> {
    TABLE2.iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_all_ten_apps() {
        assert_eq!(TABLE2.len(), 10);
        let deadlocks = TABLE2
            .iter()
            .filter(|m| m.cause == RootCause::Deadlock)
            .count();
        assert_eq!(deadlocks, 3, "HawkNL, MozillaJS, SQLite");
        let oracles = TABLE2.iter().filter(|m| m.needs_oracle).count();
        assert_eq!(oracles, 2, "FFT and MySQL1 (Table 3's conditional ticks)");
        let interproc = TABLE2.iter().filter(|m| m.needs_interproc).count();
        assert_eq!(interproc, 2, "MozillaXP and Transmission");
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(meta_by_name("FFT").unwrap().paper_loc, "1.2K");
        assert!(meta_by_name("nope").is_none());
        assert_eq!(meta_by_name("HawkNL").unwrap().symptom, Symptom::Hang);
    }

    #[test]
    fn symptoms_cover_all_four_kinds() {
        use std::collections::HashSet;
        let kinds: HashSet<_> = TABLE2.iter().map(|m| m.symptom).collect();
        assert_eq!(kinds.len(), 4);
    }
}
