//! The workload registry: one constructor per Table-2 application.

use crate::apps;
use crate::spec::Workload;

/// Builds every Table-2 workload, in Table-2 row order.
pub fn all_workloads() -> Vec<Workload> {
    vec![
        apps::fft::build(),
        apps::hawknl::build(),
        apps::httrack::build(),
        apps::mozilla_xp::build(),
        apps::mozilla_js::build(),
        apps::mysql1::build(),
        apps::mysql2::build(),
        apps::transmission::build(),
        apps::sqlite::build(),
        apps::zsnes::build(),
    ]
}

/// Builds one workload by its Table-2 name.
pub fn workload_by_name(name: &str) -> Option<Workload> {
    match name {
        "FFT" => Some(apps::fft::build()),
        "HawkNL" => Some(apps::hawknl::build()),
        "HTTrack" => Some(apps::httrack::build()),
        "MozillaXP" => Some(apps::mozilla_xp::build()),
        "MozillaJS" => Some(apps::mozilla_js::build()),
        "MySQL1" => Some(apps::mysql1::build()),
        "MySQL2" => Some(apps::mysql2::build()),
        "Transmission" => Some(apps::transmission::build()),
        "SQLite" => Some(apps::sqlite::build()),
        "ZSNES" => Some(apps::zsnes::build()),
        _ => None,
    }
}

/// The Table-2 names, in order.
pub const WORKLOAD_NAMES: [&str; 10] = [
    "FFT",
    "HawkNL",
    "HTTrack",
    "MozillaXP",
    "MozillaJS",
    "MySQL1",
    "MySQL2",
    "Transmission",
    "SQLite",
    "ZSNES",
];

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::validate;

    #[test]
    fn all_ten_build_and_validate() {
        let ws = all_workloads();
        assert_eq!(ws.len(), 10);
        for w in &ws {
            validate(&w.program.module).unwrap_or_else(|e| panic!("{}: {:?}", w.meta.name, e));
            assert!(
                w.program.threads.len() >= 2,
                "{} is multithreaded",
                w.meta.name
            );
            assert!(
                !w.fix_markers.is_empty(),
                "{} names its failure",
                w.meta.name
            );
        }
    }

    #[test]
    fn names_resolve() {
        for name in WORKLOAD_NAMES {
            let w = workload_by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(w.meta.name, name);
        }
        assert!(workload_by_name("nope").is_none());
    }

    #[test]
    fn fix_markers_exist_in_modules() {
        for w in all_workloads() {
            for m in &w.fix_markers {
                assert!(
                    w.program.module.marker(m).is_some(),
                    "{}: fix marker `{m}` missing",
                    w.meta.name
                );
            }
        }
    }

    #[test]
    fn bug_scripts_reference_existing_markers() {
        for w in all_workloads() {
            for gate in &w.bug_script.gates {
                assert!(
                    w.program.module.marker(&gate.at_marker).is_some(),
                    "{}: gate at-marker `{}` missing",
                    w.meta.name,
                    gate.at_marker
                );
                assert!(
                    w.program.module.marker(&gate.until_marker).is_some(),
                    "{}: gate until-marker `{}` missing",
                    w.meta.name,
                    gate.until_marker
                );
                assert!(
                    gate.thread < w.program.threads.len(),
                    "{}: gate thread out of range",
                    w.meta.name
                );
            }
        }
    }
}
