//! Per-workload schedule-exploration hints: the documented strategy and
//! budget under which `conair_runtime::explore` finds each Table-2 bug
//! *without* the workload's hand-written gate script.
//!
//! Budgets come from an exhaustive strategy scan (bounded-preemption
//! K ∈ {1, 2} and PCT d = 3, over `sync` and `sync+shared` decision
//! points, budget 512): every catalog bug is reachable with a single
//! preemption at sync points, so the hints all use the deterministic
//! bounded-preemption explorer — the schedule index that first fails is
//! then a reproducible fact, and each budget below is that index padded
//! with headroom. `tests/exploration.rs` holds the engine to these
//! numbers.

use conair_runtime::{ExploreStrategy, PointMask};

/// How to find a workload's bug by schedule search alone.
#[derive(Debug, Clone, Copy)]
pub struct ExploreHint {
    /// Search strategy that finds the bug.
    pub strategy: ExploreStrategy,
    /// Decision-point mask to explore under.
    pub mask: PointMask,
    /// Schedule budget that suffices (with headroom over the observed
    /// first-failure index).
    pub budget: usize,
    /// Exploration seed (only consulted by randomized strategies).
    pub seed: u64,
}

impl ExploreHint {
    const fn bounded(budget: usize) -> ExploreHint {
        ExploreHint {
            strategy: ExploreStrategy::Bounded { preemptions: 1 },
            mask: PointMask::SYNC,
            budget,
            seed: 1,
        }
    }
}

/// The exploration hint for a registered workload, or `None` for names
/// outside the Table-2 catalog.
///
/// The comment on each arm records the observed first-failure index the
/// budget pads.
pub fn explore_hint(name: &str) -> Option<ExploreHint> {
    Some(match name {
        // The order violations and the use-after-free manifest on the
        // non-preemptive probe itself (schedule #0): their buggy order
        // is the default creation order.
        "FFT" => ExploreHint::bounded(8),     // first failure at #0
        "HTTrack" => ExploreHint::bounded(8), // first failure at #0
        "MozillaXP" => ExploreHint::bounded(8), // first failure at #0
        "Transmission" => ExploreHint::bounded(8), // first failure at #0
        "ZSNES" => ExploreHint::bounded(8),   // first failure at #0
        // The deadlocks and atomicity violations need one adverse
        // preemption between acquire/release (or read/write) pairs.
        "MySQL1" => ExploreHint::bounded(16), // first failure at #2
        "SQLite" => ExploreHint::bounded(32), // first failure at #7
        "HawkNL" => ExploreHint::bounded(32), // first failure at #9
        "MozillaJS" => ExploreHint::bounded(64), // first failure at #23
        "MySQL2" => ExploreHint::bounded(128), // first failure at #50
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::WORKLOAD_NAMES;

    #[test]
    fn every_catalog_workload_has_a_hint() {
        for name in WORKLOAD_NAMES {
            assert!(explore_hint(name).is_some(), "no hint for {name}");
        }
        assert!(explore_hint("NotAWorkload").is_none());
    }
}
