//! # conair-workloads
//!
//! The benchmark suite of the ConAir reproduction: the ten real-world-bug
//! applications of paper Table 2 and the four atomicity-violation
//! microbenchmarks of Figure 2, expressed as `conair-ir` programs.
//!
//! Each application embeds its documented bug kernel (root cause, failure
//! symptom, recoverability) in deterministic application-scale filler whose
//! potential-failure-site mix follows the app's Table-4 row (scaled ~10×).
//! Bug manifestation is forced by [`conair_runtime::ScheduleScript`] gates —
//! the reproducible analog of the sleeps the paper injects into buggy code
//! regions.
//!
//! ## Example
//!
//! ```rust
//! use conair_workloads::workload_by_name;
//! use conair_runtime::{run_scripted, MachineConfig, RunOutcome};
//!
//! let w = workload_by_name("MySQL2").unwrap();
//! // Under the bug-forcing script the original program fails:
//! let r = run_scripted(&w.program, &MachineConfig::default(), &w.bug_script, 1);
//! assert!(matches!(r.outcome, RunOutcome::Failed(_)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apps;
mod explore;
mod filler;
mod meta;
mod micro;
mod registry;
mod spec;
mod stress;

pub use explore::{explore_hint, ExploreHint};
pub use filler::{emit_filler, Filler, SiteProfile, WorkProfile};
pub use meta::{meta_by_name, RootCause, Symptom, WorkloadMeta, TABLE2};
pub use micro::{build_micro, AtomicityPattern, MicroWorkload};
pub use registry::{all_workloads, workload_by_name, WORKLOAD_NAMES};
pub use spec::Workload;
pub use stress::{checkpoint_dense_control, checkpoint_dense_program, rollback_dense_program};
