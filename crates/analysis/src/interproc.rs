//! Inter-procedural reexecution (paper Section 4.3).
//!
//! A failure site `f` inside function `foo` is *promoted* to inter-procedural
//! recovery when all three conditions hold:
//!
//! 1. No idempotency-destroying operation on **any** path from `foo`'s
//!    entrance to `f` (then the recovery attempt is always inter-procedural
//!    regardless of the path taken);
//! 2. for non-deadlock sites, at least one parameter of `foo` is on `f`'s
//!    backward slice (a *critical parameter* — the only way a caller can
//!    affect the outcome at `f`, since regions contain no shared writes);
//! 3. at least one path from the entrance to `f` is unrecoverable (no
//!    shared read on the slice / no lock acquisition on that path) — the
//!    situation where inter-procedural recovery is needed most.
//!
//! For a promoted site, the intra-procedural reexecution point at `foo`'s
//! entrance (`REintra`) is removed and the backward search of Section 3.2.2
//! is re-run in every caller, starting at the call site. Promotion recurses
//! up to `max_depth` callers (default 3). If at the depth limit a clean
//! path still reaches the outermost caller's entrance, the attempt is
//! abandoned and the point returns to `foo`'s entrance (the paper notes
//! this case is extremely rare).
//!
//! Caller walks share the [`AnalysisCache`], so a caller's CFG, flat
//! layout and class bitsets are built once per module — not once per call
//! site as the earlier `Cfg::build`-per-call-site implementation did.

use std::collections::HashSet;

use conair_ir::{FuncId, Function, InstPos, InstSet, Loc, Module, SiteId};

use crate::classify::RegionPolicy;
use crate::ctx::{AnalysisCache, FuncCtx};
use crate::region::{find_reexec_points, ReexecPoint, SiteRegion};
use crate::slicing::RegionSlice;

/// Configuration for inter-procedural promotion.
#[derive(Debug, Clone, Copy)]
pub struct InterprocConfig {
    /// Maximum promotion depth (paper default: 3 — rollback reaches at most
    /// the callers' callers' caller).
    pub max_depth: usize,
    /// Region policy in effect.
    pub policy: RegionPolicy,
}

impl Default for InterprocConfig {
    fn default() -> Self {
        Self {
            max_depth: 3,
            policy: RegionPolicy::default(),
        }
    }
}

/// The outcome of promoting one failure site.
#[derive(Debug, Clone)]
pub struct Promotion {
    /// The promoted site.
    pub site: SiteId,
    /// Reexecution points in caller functions (module coordinates).
    pub caller_points: Vec<Loc>,
    /// How many caller levels the promotion climbed (1 = direct caller).
    pub depth: usize,
}

/// Checks condition (3): is some entrance→site path unrecoverable?
///
/// For non-deadlock sites an unrecoverable path is one containing no shared
/// read; for deadlock sites, one containing no lock acquisition. The check
/// walks backwards from the site looking for a path to the entrance that
/// avoids every "qualifying" instruction — a membership test against the
/// memoized class bitset of `ctx`. Condition (1) guarantees no destroying
/// instructions exist on any such path.
pub fn exists_unrecoverable_path(
    func: &Function,
    ctx: &FuncCtx,
    site_pos: InstPos,
    is_deadlock: bool,
) -> bool {
    let qualifying: &InstSet = if is_deadlock {
        &ctx.lock_acquisitions
    } else {
        &ctx.shared_reads
    };
    // Backward DFS from the site's predecessors avoiding qualifying
    // instructions; success = reaching the entrance.
    let mut visited = ctx.layout.empty_set();
    let mut work = ctx.cfg.inst_predecessors(func, site_pos);
    if work.is_empty() {
        return true; // the site is the first instruction: the empty path
    }
    while let Some(pos) = work.pop() {
        let flat = ctx.layout.flat(pos);
        if !visited.insert(flat) {
            continue;
        }
        if qualifying.contains(flat) {
            continue; // abandon paths through qualifying instructions
        }
        let preds = ctx.cfg.inst_predecessors(func, pos);
        if preds.is_empty() {
            return true;
        }
        work.extend(preds);
    }
    false
}

/// Decides whether `site` (already analyzed intra-procedurally) satisfies
/// the three promotion conditions.
pub fn should_promote(
    func: &Function,
    ctx: &FuncCtx,
    site_pos: InstPos,
    region: &SiteRegion,
    slice: &RegionSlice,
    is_deadlock: bool,
    num_params: usize,
) -> bool {
    // Condition (1).
    if !region.all_paths_clean || !region.reaches_entry {
        return false;
    }
    // Condition (2) — non-deadlock sites need a critical parameter.
    if !is_deadlock {
        let has_critical_param = slice.open_regs.iter().any(|r| r.index() < num_params);
        if !has_critical_param {
            return false;
        }
    }
    // Condition (3).
    exists_unrecoverable_path(func, ctx, site_pos, is_deadlock)
}

/// Runs caller-side reexecution-point discovery for a promoted site.
///
/// Caller CFGs/layouts come from `cache`, shared with the rest of the
/// pipeline. Returns `None` when the promotion must be abandoned (a clean
/// path still reaches the entrance at the depth limit) — the caller then
/// falls back to the intra-procedural entry point.
pub fn promote_site(
    module: &Module,
    site: SiteId,
    site_func: FuncId,
    config: &InterprocConfig,
    cache: &mut AnalysisCache,
) -> Option<Promotion> {
    let mut points: Vec<Loc> = Vec::new();
    let mut max_reached_depth = 0;
    // Frontier of (function, position-of-interest) pairs whose callers we
    // must analyze. Initially: the promoted function (analysis starts at
    // each call site of it).
    let mut frontier: Vec<FuncId> = vec![site_func];
    let mut seen_funcs: HashSet<FuncId> = HashSet::new();
    seen_funcs.insert(site_func);

    for depth in 1..=config.max_depth {
        let mut next_frontier: Vec<FuncId> = Vec::new();
        let mut any_call_site = false;
        for &callee in &frontier {
            for call_loc in module.call_sites_of(callee) {
                any_call_site = true;
                let caller = module.func(call_loc.func);
                let ctx = cache.ctx(module, call_loc.func);
                let call_pos = InstPos::new(call_loc.block, call_loc.inst);
                // Backward search from the call site (the paper starts at
                // the instruction pushing the critical parameter / the
                // invocation — in this IR both are the call instruction).
                let region = find_reexec_points(caller, &ctx, call_pos, config.policy);
                // Can the promotion climb past this caller? Only if every
                // path is clean, the caller itself has callers, we have not
                // visited it (cycles), and depth budget remains.
                let caller_has_callers = !module.call_sites_of(call_loc.func).is_empty();
                let climb = region.all_paths_clean
                    && caller_has_callers
                    && !seen_funcs.contains(&call_loc.func);
                for p in &region.points {
                    if p.at_entry && climb {
                        if depth == config.max_depth {
                            // A clean path still reaches the entrance at
                            // the depth limit: abandon the whole promotion
                            // (see module docs; the paper notes this case
                            // is extremely rare).
                            return None;
                        }
                        // All paths continue upward; no point here.
                        continue;
                    }
                    points.push(Loc::new(call_loc.func, p.pos.block, p.pos.inst));
                }
                if climb && depth < config.max_depth {
                    seen_funcs.insert(call_loc.func);
                    next_frontier.push(call_loc.func);
                }
                max_reached_depth = depth;
            }
        }
        if !any_call_site {
            break;
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }

    if points.is_empty() {
        // The function is never called (e.g. a thread entry): promotion is
        // meaningless; keep intra-procedural recovery.
        return None;
    }
    points.sort();
    points.dedup();
    Some(Promotion {
        site,
        caller_points: points,
        depth: max_reached_depth,
    })
}

/// Convenience: the reexecution points a promoted site abandons (its
/// intra-procedural entry points).
pub fn abandoned_entry_points(region: &SiteRegion) -> Vec<ReexecPoint> {
    region
        .points
        .iter()
        .copied()
        .filter(|p| p.at_entry)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{BlockId, CmpKind, FuncBuilder, GlobalId, ModuleBuilder, Operand};

    use crate::slicing::slice_in_region;

    fn promote(module: &Module, site: SiteId, site_func: FuncId) -> Option<Promotion> {
        promote_site(
            module,
            site,
            site_func,
            &InterprocConfig::default(),
            &mut AnalysisCache::new(),
        )
    }

    /// The MozillaXP shape (paper Figure 10): `GetState(thd)` dereferences
    /// its parameter; the caller loads the shared pointer. The site must be
    /// promoted and the caller point must cover the shared load.
    fn mozilla_like_module() -> (Module, FuncId, InstPos) {
        let mut mb = ModuleBuilder::new("moz");
        let mthd = mb.global("mThd", 0);
        let get_state = mb.declare_function("GetState", 1);

        // GetState(thd): return thd->state & MASK
        let mut fb = FuncBuilder::new("GetState", 1);
        let p = fb.param(0);
        let v = fb.load_ptr(p); // the segfault site, bb0:0
        let masked = fb.binop(conair_ir::BinOpKind::And, v, 0xff);
        fb.ret_value(masked);
        mb.define_function(get_state, fb.finish());

        // Get(): tmp = GetState(mThd)
        let mut fb = FuncBuilder::new("Get", 0);
        let ptr = fb.load_global(mthd);
        let _tmp = fb.call(get_state, vec![Operand::Reg(ptr)]);
        fb.ret();
        mb.function(fb.finish());

        (mb.finish(), get_state, InstPos::new(BlockId(0), 0))
    }

    #[test]
    fn mozilla_site_satisfies_conditions() {
        let (module, get_state, site_pos) = mozilla_like_module();
        let func = module.func(get_state);
        let ctx = FuncCtx::new(func);
        let region = find_reexec_points(func, &ctx, site_pos, RegionPolicy::Compensated);
        let slice = slice_in_region(func, &ctx, &region, site_pos);
        assert!(region.all_paths_clean, "condition 1");
        assert!(
            slice.open_regs.iter().any(|r| r.index() < 1),
            "condition 2: the parameter is critical"
        );
        assert!(
            exists_unrecoverable_path(func, &ctx, site_pos, false),
            "condition 3: the intra path has no shared read"
        );
        assert!(should_promote(
            func,
            &ctx,
            site_pos,
            &region,
            &slice,
            false,
            func.num_params
        ));
    }

    #[test]
    fn mozilla_promotion_lands_in_caller() {
        let (module, get_state, _) = mozilla_like_module();
        let promo = promote(&module, SiteId(0), get_state).expect("promotes");
        assert_eq!(promo.depth, 1);
        assert_eq!(promo.caller_points.len(), 1);
        let p = promo.caller_points[0];
        let caller = module.func_by_name("Get").unwrap();
        assert_eq!(p.func, caller);
        // The caller point is the entrance of Get (the global load of mThd
        // is a shared *read*, not destroying) — rollback re-reads mThd.
        assert_eq!((p.block, p.inst), (BlockId(0), 0));
    }

    #[test]
    fn site_with_shared_read_on_all_paths_not_promoted() {
        // tmp = *(&g): the pointer load is preceded by a shared read on the
        // only path, so condition 3 fails.
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("g", 0);
        let mut fb = FuncBuilder::new("leaf", 0);
        let p = fb.load_global(g); // shared read on every path
        let v = fb.load_ptr(p); // site at index 1
        let c = fb.cmp(CmpKind::Ge, v, 0);
        fb.assert(c, "v");
        fb.ret();
        let leaf = mb.function(fb.finish());
        let module = mb.finish();
        let func = module.func(leaf);
        let ctx = FuncCtx::new(func);
        let site_pos = InstPos::new(BlockId(0), 1);
        let region = find_reexec_points(func, &ctx, site_pos, RegionPolicy::Compensated);
        let slice = slice_in_region(func, &ctx, &region, site_pos);
        assert!(!should_promote(
            func, &ctx, site_pos, &region, &slice, false, 0
        ));
    }

    #[test]
    fn destroying_op_blocks_condition_1() {
        let mut fb = FuncBuilder::new("leaf", 1);
        fb.store_global(GlobalId(0), 1); // destroying on the only path
        let v = fb.load_ptr(fb.param(0));
        let c = fb.cmp(CmpKind::Ge, v, 0);
        fb.assert(c, "v");
        fb.ret();
        let func = fb.finish();
        let ctx = FuncCtx::new(&func);
        let site_pos = InstPos::new(BlockId(0), 1);
        let region = find_reexec_points(&func, &ctx, site_pos, RegionPolicy::Compensated);
        let slice = slice_in_region(&func, &ctx, &region, site_pos);
        assert!(!region.all_paths_clean);
        assert!(!should_promote(
            &func, &ctx, site_pos, &region, &slice, false, 1
        ));
    }

    #[test]
    fn never_called_function_is_not_promoted() {
        let (mut module, get_state, _) = {
            let mut mb = ModuleBuilder::new("m");
            let f = mb.declare_function("leaf", 1);
            let mut fb = FuncBuilder::new("leaf", 1);
            let v = fb.load_ptr(fb.param(0));
            fb.ret_value(v);
            mb.define_function(f, fb.finish());
            (mb.finish(), f, ())
        };
        // No caller exists.
        module.name = "m".into();
        assert!(promote(&module, SiteId(0), get_state).is_none());
    }

    #[test]
    fn promotion_climbs_multiple_levels() {
        // leaf <- mid <- top, everything clean: points land at `top`'s
        // entrance (depth 2 < max 3).
        let mut mb = ModuleBuilder::new("m");
        let leaf = mb.declare_function("leaf", 1);
        let mid = mb.declare_function("mid", 1);
        let g = mb.global("p", 0);

        let mut fb = FuncBuilder::new("leaf", 1);
        let v = fb.load_ptr(fb.param(0));
        fb.ret_value(v);
        mb.define_function(leaf, fb.finish());

        let mut fb = FuncBuilder::new("mid", 1);
        let r = fb.call(leaf, vec![Operand::Reg(fb.param(0))]);
        fb.ret_value(r);
        mb.define_function(mid, fb.finish());

        let mut fb = FuncBuilder::new("top", 0);
        let ptr = fb.load_global(g);
        let _ = fb.call(mid, vec![Operand::Reg(ptr)]);
        fb.ret();
        mb.function(fb.finish());

        let module = mb.finish();
        let promo = promote(&module, SiteId(0), leaf).expect("promotes");
        assert_eq!(promo.depth, 2);
        let top = module.func_by_name("top").unwrap();
        assert!(promo.caller_points.iter().any(|l| l.func == top));
        // `mid` is fully clean, so no point remains there.
        assert!(promo.caller_points.iter().all(|l| l.func == top));
    }

    #[test]
    fn depth_limit_abandons_clean_chains() {
        // A chain longer than max_depth with every level clean: promotion
        // is abandoned (returns None).
        let mut mb = ModuleBuilder::new("m");
        let leaf = mb.declare_function("leaf", 1);
        let mut prev = leaf;
        for i in 0..4 {
            let name = format!("level{i}");
            let id = mb.declare_function(&name, 1);
            let mut fb = FuncBuilder::new(&name, 1);
            let r = fb.call(prev, vec![Operand::Reg(fb.param(0))]);
            fb.ret_value(r);
            mb.define_function(id, fb.finish());
            prev = id;
        }
        let mut fb = FuncBuilder::new("leaf", 1);
        let v = fb.load_ptr(fb.param(0));
        fb.ret_value(v);
        mb.define_function(leaf, fb.finish());
        let module = mb.finish();
        assert!(promote(&module, SiteId(0), leaf).is_none());
    }

    #[test]
    fn unrecoverable_path_detection_deadlock() {
        // lock(L0) on one arm only; the other arm has no lock acquisition.
        let mut fb = FuncBuilder::new("f", 1);
        let locked = fb.new_block();
        let bare = fb.new_block();
        let merge = fb.new_block();
        fb.branch(fb.param(0), locked, bare);
        fb.switch_to(locked);
        fb.lock(conair_ir::LockId(0));
        fb.jump(merge);
        fb.switch_to(bare);
        fb.nop();
        fb.jump(merge);
        fb.switch_to(merge);
        fb.lock(conair_ir::LockId(1)); // site
        fb.ret();
        let f = fb.finish();
        let ctx = FuncCtx::new(&f);
        let site = InstPos::new(BlockId(3), 0);
        assert!(exists_unrecoverable_path(&f, &ctx, site, true));

        // With the bare arm also locking, no unrecoverable path remains.
        let mut fb = FuncBuilder::new("g", 1);
        let locked = fb.new_block();
        let bare = fb.new_block();
        let merge = fb.new_block();
        fb.branch(fb.param(0), locked, bare);
        fb.switch_to(locked);
        fb.lock(conair_ir::LockId(0));
        fb.jump(merge);
        fb.switch_to(bare);
        fb.lock(conair_ir::LockId(2));
        fb.jump(merge);
        fb.switch_to(merge);
        fb.lock(conair_ir::LockId(1));
        fb.ret();
        let g = fb.finish();
        let ctx = FuncCtx::new(&g);
        assert!(!exists_unrecoverable_path(&g, &ctx, site, true));
    }
}
