//! The end-to-end static analysis: produces the [`HardeningPlan`] consumed
//! by `conair-transform`.
//!
//! Pipeline order follows the paper (Section 4.3, "Other issues"):
//! intra-procedural region analysis first, then inter-procedural promotion
//! (which removes the promoted sites' entry points), then the Section 4.2
//! optimization — applied only to sites that recover intra-procedurally.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use conair_ir::{FailureKind, InstPos, Loc, Module, PointId, SiteId};

use crate::classify::RegionPolicy;
use crate::ctx::AnalysisCache;
use crate::interproc::{promote_site, should_promote, InterprocConfig};
use crate::optimize::{judge_deadlock_site, judge_non_deadlock_site, RecoverabilityVerdict};
use crate::region::find_reexec_points;
use crate::sites::{identify_sites, FailureSite, SiteSelection};
use crate::slicing::slice_in_region;

/// Configuration for the whole analysis.
#[derive(Debug, Clone, Default)]
pub struct AnalysisConfig {
    /// Survival or fix mode (Section 3.1).
    pub selection: SiteSelection,
    /// Region policy (Figure 4 spectrum; Section 4.1 default).
    pub policy: RegionPolicy,
    /// Apply the Section 4.2 unrecoverable-site removal.
    pub optimize: bool,
    /// Apply Section 4.3 inter-procedural promotion with this depth;
    /// `None` disables it.
    pub interproc_depth: Option<usize>,
}

impl AnalysisConfig {
    /// The paper's default configuration: survival mode, compensated
    /// regions, optimization on, inter-procedural depth 3.
    pub fn survival_defaults() -> Self {
        Self {
            selection: SiteSelection::Survival,
            policy: RegionPolicy::Compensated,
            optimize: true,
            interproc_depth: Some(3),
        }
    }

    /// Fix-mode defaults for a set of failure markers.
    pub fn fix_defaults(markers: Vec<String>) -> Self {
        Self {
            selection: SiteSelection::Fix(markers),
            ..Self::survival_defaults()
        }
    }
}

/// Per-site outcome of the analysis.
#[derive(Debug, Clone)]
pub struct SitePlan {
    /// The site.
    pub site: FailureSite,
    /// Recoverability after optimization ([`RecoverabilityVerdict::Recoverable`]
    /// for promoted sites, which skip the optimization).
    pub verdict: RecoverabilityVerdict,
    /// Set when the site was promoted to inter-procedural recovery; the
    /// value is the promotion depth.
    pub promoted_depth: Option<usize>,
    /// Final reexecution points for this site (checkpoint goes before each
    /// location).
    pub points: Vec<Loc>,
    /// Number of instructions inside the site's reexecution regions
    /// (diagnostics / EXPERIMENTS.md).
    pub region_size: usize,
}

impl SitePlan {
    /// Whether recovery code will be emitted for this site.
    pub fn is_recoverable(&self) -> bool {
        self.verdict.is_recoverable()
    }
}

/// Aggregate statistics of a plan (feeds Tables 4–6).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Static failure sites per kind (Table 4 row).
    pub sites_by_kind: BTreeMap<FailureKind, usize>,
    /// Sites surviving the optimization.
    pub recoverable_sites: usize,
    /// Deadlock sites removed by the optimization.
    pub removed_deadlock_sites: usize,
    /// Non-deadlock sites removed by the optimization.
    pub removed_non_deadlock_sites: usize,
    /// Sites promoted to inter-procedural recovery.
    pub promoted_sites: usize,
    /// Final static reexecution points (deduplicated checkpoints).
    pub static_points: usize,
    /// Wall time spent in the Section 4.2 recoverability judgments (the
    /// "optimize" phase of the pipeline's phase timing; zero when
    /// [`AnalysisConfig::optimize`] is off).
    pub optimize_wall: Duration,
}

/// The full analysis result.
#[derive(Debug, Clone)]
pub struct HardeningPlan {
    /// Per-site outcomes, indexed by [`SiteId`].
    pub sites: Vec<SitePlan>,
    /// Deduplicated checkpoint locations, sorted; index = [`PointId`].
    pub checkpoints: Vec<Loc>,
    /// Aggregates.
    pub stats: PlanStats,
}

impl HardeningPlan {
    /// The site plan for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn site(&self, id: SiteId) -> &SitePlan {
        &self.sites[id.index()]
    }

    /// The [`PointId`] assigned to the checkpoint at `loc`, if any.
    pub fn point_at(&self, loc: Loc) -> Option<PointId> {
        self.checkpoints
            .binary_search(&loc)
            .ok()
            .map(PointId::from_index)
    }

    /// Checkpoint locations serving at least one site of the given
    /// dead/non-deadlock class (Table 6 attribution; a checkpoint shared by
    /// both classes counts in both).
    pub fn points_for_class(&self, deadlock: bool) -> BTreeSet<Loc> {
        let mut set = BTreeSet::new();
        for sp in &self.sites {
            if sp.is_recoverable() && (sp.site.kind == FailureKind::Deadlock) == deadlock {
                set.extend(sp.points.iter().copied());
            }
        }
        set
    }
}

/// Runs the complete static analysis on `module`.
pub fn analyze(module: &Module, config: &AnalysisConfig) -> HardeningPlan {
    let table = identify_sites(module, &config.selection);

    // One CFG + flat layout + class-bitset context per function, shared
    // with the inter-procedural caller walks.
    let mut cache = AnalysisCache::new();

    let interproc_config = config.interproc_depth.map(|d| InterprocConfig {
        max_depth: d,
        policy: config.policy,
    });

    let mut site_plans: Vec<SitePlan> = Vec::with_capacity(table.len());
    let mut optimize_wall = Duration::ZERO;

    for site in &table.sites {
        let func = module.func(site.loc.func);
        let ctx = cache.ctx(module, site.loc.func);
        let site_pos = InstPos::new(site.loc.block, site.loc.inst);
        let region = find_reexec_points(func, &ctx, site_pos, config.policy);
        let is_deadlock = site.kind == FailureKind::Deadlock;
        let slice = slice_in_region(func, &ctx, &region, site_pos);

        // --- inter-procedural promotion (Section 4.3) --------------------
        let mut promoted_depth = None;
        let mut points: Vec<Loc> = Vec::new();
        if let Some(ipc) = &interproc_config {
            if should_promote(
                func,
                &ctx,
                site_pos,
                &region,
                &slice,
                is_deadlock,
                func.num_params,
            ) {
                if let Some(promo) = promote_site(module, site.id, site.loc.func, ipc, &mut cache) {
                    promoted_depth = Some(promo.depth);
                    points = promo.caller_points;
                }
            }
        }

        let verdict;
        if promoted_depth.is_some() {
            // Promoted sites skip the optimization (their regions are long
            // and "much harder to statically prove unrecoverable").
            verdict = RecoverabilityVerdict::Recoverable;
        } else {
            points = region
                .points
                .iter()
                .map(|p| Loc::new(site.loc.func, p.pos.block, p.pos.inst))
                .collect();
            verdict = if !config.optimize {
                RecoverabilityVerdict::Recoverable
            } else {
                let judge_start = Instant::now();
                let v = if is_deadlock {
                    judge_deadlock_site(&ctx, &region, site_pos)
                } else {
                    judge_non_deadlock_site(&slice)
                };
                optimize_wall += judge_start.elapsed();
                v
            };
        }

        site_plans.push(SitePlan {
            site: site.clone(),
            verdict,
            promoted_depth,
            points,
            region_size: region.region.len(),
        });
    }

    // --- checkpoint collection: points of surviving sites only ------------
    // ("ConAir also removes reexecution points that do not correspond to
    // any failure site".)
    let mut checkpoint_set: BTreeSet<Loc> = BTreeSet::new();
    for sp in &site_plans {
        if sp.is_recoverable() {
            checkpoint_set.extend(sp.points.iter().copied());
        }
    }
    let checkpoints: Vec<Loc> = checkpoint_set.into_iter().collect();

    // --- aggregates ---------------------------------------------------------
    let mut stats = PlanStats {
        static_points: checkpoints.len(),
        optimize_wall,
        ..PlanStats::default()
    };
    for sp in &site_plans {
        *stats.sites_by_kind.entry(sp.site.kind).or_default() += 1;
        match sp.verdict {
            RecoverabilityVerdict::Recoverable => {
                stats.recoverable_sites += 1;
                if sp.promoted_depth.is_some() {
                    stats.promoted_sites += 1;
                }
            }
            RecoverabilityVerdict::NoLockInRegion => stats.removed_deadlock_sites += 1,
            RecoverabilityVerdict::NoSharedReadOnSlice => stats.removed_non_deadlock_sites += 1,
        }
    }

    HardeningPlan {
        sites: site_plans,
        checkpoints,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder, Operand};

    /// A module with one site of each kind plus an unrecoverable deadlock
    /// site and an unrecoverable assert.
    fn mixed_module() -> Module {
        let mut mb = ModuleBuilder::new("mixed");
        let g = mb.global("g", 1);
        let l0 = mb.lock("l0");
        let l1 = mb.lock("l1");

        let mut fb = FuncBuilder::new("main", 0);
        // Recoverable assert: condition from shared read.
        let v = fb.load_global(g);
        let c = fb.cmp(CmpKind::Gt, v, 0);
        fb.assert(c, "shared");
        // Unrecoverable assert: constant condition, after a destroying op.
        fb.store_global(g, 2);
        let k = fb.copy(1);
        fb.assert(k, "const");
        // Segfault site: pointer from shared read.
        let p = fb.load_global(g);
        let _x = fb.load_ptr(p);
        // Recoverable deadlock: nested locks.
        fb.lock(l0);
        fb.lock(l1);
        fb.unlock(l1);
        fb.unlock(l0);
        // Unrecoverable deadlock: lone lock after an unlock boundary.
        fb.lock(l1);
        fb.unlock(l1);
        // Output site.
        fb.output("done", 0);
        fb.ret();
        mb.function(fb.finish());
        mb.finish()
    }

    #[test]
    fn plan_counts_and_verdicts() {
        let m = mixed_module();
        let plan = analyze(&m, &AnalysisConfig::survival_defaults());
        assert_eq!(
            plan.stats.sites_by_kind[&FailureKind::AssertionViolation],
            2
        );
        assert_eq!(plan.stats.sites_by_kind[&FailureKind::SegFault], 1);
        assert_eq!(plan.stats.sites_by_kind[&FailureKind::Deadlock], 3);
        assert_eq!(plan.stats.sites_by_kind[&FailureKind::WrongOutput], 1);

        // The constant assert is removed; exactly one deadlock site (the
        // inner of the nested pair) survives.
        assert!(plan.stats.removed_non_deadlock_sites >= 1);
        let deadlock_survivors: Vec<_> = plan
            .sites
            .iter()
            .filter(|s| s.site.kind == FailureKind::Deadlock && s.is_recoverable())
            .collect();
        assert_eq!(deadlock_survivors.len(), 1);
    }

    #[test]
    fn disabling_optimization_keeps_all_sites() {
        let m = mixed_module();
        let mut cfg = AnalysisConfig::survival_defaults();
        cfg.optimize = false;
        let plan = analyze(&m, &cfg);
        assert_eq!(plan.stats.recoverable_sites, plan.sites.len());
        assert_eq!(plan.stats.removed_deadlock_sites, 0);
        assert_eq!(plan.stats.removed_non_deadlock_sites, 0);

        let optimized = analyze(&m, &AnalysisConfig::survival_defaults());
        assert!(
            optimized.stats.static_points <= plan.stats.static_points,
            "optimization never adds points"
        );
    }

    #[test]
    fn checkpoints_are_deduped_and_sorted() {
        let m = mixed_module();
        let plan = analyze(&m, &AnalysisConfig::survival_defaults());
        let mut sorted = plan.checkpoints.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, plan.checkpoints);
        // PointId lookup agrees with position.
        for (i, loc) in plan.checkpoints.iter().enumerate() {
            assert_eq!(plan.point_at(*loc), Some(PointId::from_index(i)));
        }
    }

    #[test]
    fn fix_mode_restricts_to_marker() {
        let mut mb = ModuleBuilder::new("fix");
        let g = mb.global("g", 0);
        let mut fb = FuncBuilder::new("main", 0);
        let v0 = fb.load_global(g);
        let c0 = fb.cmp(CmpKind::Gt, v0, 0);
        fb.assert(c0, "first");
        fb.marker("the_bug");
        let v1 = fb.load_global(g);
        let c1 = fb.cmp(CmpKind::Gt, v1, 0);
        fb.assert(c1, "second");
        fb.ret();
        mb.function(fb.finish());
        let m = mb.finish();

        let plan = analyze(&m, &AnalysisConfig::fix_defaults(vec!["the_bug".into()]));
        assert_eq!(plan.sites.len(), 1);
        assert_eq!(plan.sites[0].site.kind, FailureKind::AssertionViolation);
        let survival = analyze(&m, &AnalysisConfig::survival_defaults());
        assert!(survival.sites.len() > plan.sites.len());
    }

    #[test]
    fn promoted_site_has_caller_points() {
        // Reuse the mozilla-like shape via the module builder.
        let mut mb = ModuleBuilder::new("moz");
        let mthd = mb.global("mThd", 0);
        let get_state = mb.declare_function("GetState", 1);
        let mut fb = FuncBuilder::new("GetState", 1);
        let v = fb.load_ptr(fb.param(0));
        fb.ret_value(v);
        mb.define_function(get_state, fb.finish());
        let mut fb = FuncBuilder::new("Get", 0);
        let ptr = fb.load_global(mthd);
        let _ = fb.call(get_state, vec![Operand::Reg(ptr)]);
        fb.ret();
        mb.function(fb.finish());
        let m = mb.finish();

        let plan = analyze(&m, &AnalysisConfig::survival_defaults());
        let seg = plan
            .sites
            .iter()
            .find(|s| s.site.kind == FailureKind::SegFault)
            .unwrap();
        assert_eq!(seg.promoted_depth, Some(1));
        let caller = m.func_by_name("Get").unwrap();
        assert!(seg.points.iter().all(|p| p.func == caller));
        assert_eq!(plan.stats.promoted_sites, 1);

        // With inter-procedural analysis disabled the point stays at the
        // callee entrance, and the optimization then removes the site
        // (no shared read reachable intra-procedurally).
        let mut cfg = AnalysisConfig::survival_defaults();
        cfg.interproc_depth = None;
        let plan2 = analyze(&m, &cfg);
        let seg2 = plan2
            .sites
            .iter()
            .find(|s| s.site.kind == FailureKind::SegFault)
            .unwrap();
        assert!(seg2.promoted_depth.is_none());
        assert!(!seg2.is_recoverable());
    }

    #[test]
    fn point_class_attribution() {
        let m = mixed_module();
        let plan = analyze(&m, &AnalysisConfig::survival_defaults());
        let dl = plan.points_for_class(true);
        let ndl = plan.points_for_class(false);
        assert!(!ndl.is_empty());
        assert!(!dl.is_empty());
    }
}
