//! Removal of statically-unrecoverable failure sites (paper Section 4.2).
//!
//! * **Deadlock sites** (Figure 7a/7b): recovery must release at least one
//!   lock held by the failing thread, so a deadlock site is recoverable
//!   only if at least one of its reexecution regions contains another lock
//!   acquisition. Otherwise the timed lock is reverted to a plain lock and
//!   no recovery code is emitted. The judgment is a single masked bitset
//!   intersection between the region and the function's memoized
//!   lock-acquisition set — no per-instruction re-scan.
//! * **Non-deadlock sites** (Figure 7c/7d): reexecution can change the
//!   failure outcome only if the region re-reads some shared memory that
//!   can affect the site, i.e. the site's region-restricted backward slice
//!   contains a shared read. Otherwise reexecution is guaranteed to fail
//!   again and the site is removed.

use conair_ir::InstPos;

use crate::ctx::FuncCtx;
use crate::region::SiteRegion;
use crate::slicing::RegionSlice;

/// Why a site was kept or removed by the optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverabilityVerdict {
    /// The site keeps its recovery code.
    Recoverable,
    /// Deadlock site with no lock acquisition in any reexecution region
    /// (Figure 7a).
    NoLockInRegion,
    /// Non-deadlock site whose slice contains no in-region shared read
    /// (Figure 7c).
    NoSharedReadOnSlice,
}

impl RecoverabilityVerdict {
    /// Whether recovery code is emitted for the site.
    pub fn is_recoverable(self) -> bool {
        matches!(self, RecoverabilityVerdict::Recoverable)
    }
}

/// Decides recoverability of a *deadlock* site.
pub fn judge_deadlock_site(
    ctx: &FuncCtx,
    region: &SiteRegion,
    site_pos: InstPos,
) -> RecoverabilityVerdict {
    let site_flat = ctx.layout.flat(site_pos);
    if region.region_intersects(site_flat, &ctx.lock_acquisitions) {
        RecoverabilityVerdict::Recoverable
    } else {
        RecoverabilityVerdict::NoLockInRegion
    }
}

/// Decides recoverability of a *non-deadlock* site from its slice.
pub fn judge_non_deadlock_site(slice: &RegionSlice) -> RecoverabilityVerdict {
    if slice.has_shared_read {
        RecoverabilityVerdict::Recoverable
    } else {
        RecoverabilityVerdict::NoSharedReadOnSlice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{BlockId, CmpKind, FuncBuilder, GlobalId, LockId};

    use crate::classify::RegionPolicy;
    use crate::region::find_reexec_points;
    use crate::slicing::slice_in_region;

    /// Figure 7a: `Reexecution: lock(&L)` — no other lock in the region,
    /// unrecoverable.
    #[test]
    fn figure_7a_lone_lock_unrecoverable() {
        let mut fb = FuncBuilder::new("f", 0);
        fb.nop();
        fb.lock(LockId(0)); // the site, index 1
        fb.ret();
        let f = fb.finish();
        let ctx = FuncCtx::new(&f);
        let site = InstPos::new(BlockId(0), 1);
        let region = find_reexec_points(&f, &ctx, site, RegionPolicy::Compensated);
        assert_eq!(
            judge_deadlock_site(&ctx, &region, site),
            RecoverabilityVerdict::NoLockInRegion
        );
    }

    /// Figure 7b: `lock(&L0); lock(&L)` — region contains L0's
    /// acquisition, recoverable.
    #[test]
    fn figure_7b_nested_lock_recoverable() {
        let mut fb = FuncBuilder::new("f", 0);
        fb.lock(LockId(0));
        fb.lock(LockId(1)); // the site, index 1
        fb.ret();
        let f = fb.finish();
        let ctx = FuncCtx::new(&f);
        let site = InstPos::new(BlockId(0), 1);
        let region = find_reexec_points(&f, &ctx, site, RegionPolicy::Compensated);
        assert_eq!(
            judge_deadlock_site(&ctx, &region, site),
            RecoverabilityVerdict::Recoverable
        );
    }

    /// A destroying op *between* the two locks breaks recoverability (the
    /// HawkNL thread-1 shape, Figure 11: `lock(nlock); driver->Close();
    /// lock(slock)`).
    #[test]
    fn destroying_op_between_locks_unrecoverable() {
        let mut fb = FuncBuilder::new("f", 0);
        fb.lock(LockId(0));
        fb.store_global(GlobalId(0), 1); // driver->Close() analog
        fb.lock(LockId(1)); // the site, index 2
        fb.ret();
        let f = fb.finish();
        let ctx = FuncCtx::new(&f);
        let site = InstPos::new(BlockId(0), 2);
        let region = find_reexec_points(&f, &ctx, site, RegionPolicy::Compensated);
        assert_eq!(
            judge_deadlock_site(&ctx, &region, site),
            RecoverabilityVerdict::NoLockInRegion
        );
    }

    /// Figure 7c vs 7d for non-deadlock sites.
    #[test]
    fn non_deadlock_judgement_follows_slice() {
        // 7d: shared read on slice.
        let mut fb = FuncBuilder::new("f", 0);
        let tmp = fb.load_global(GlobalId(0));
        let c = fb.cmp(CmpKind::Ne, tmp, 0);
        fb.assert(c, "tmp"); // site
        fb.ret();
        let f = fb.finish();
        let ctx = FuncCtx::new(&f);
        let site = InstPos::new(BlockId(0), 2);
        let region = find_reexec_points(&f, &ctx, site, RegionPolicy::Compensated);
        let slice = slice_in_region(&f, &ctx, &region, site);
        assert_eq!(
            judge_non_deadlock_site(&slice),
            RecoverabilityVerdict::Recoverable
        );

        // 7c: constant condition, nothing shared on the slice.
        let mut fb = FuncBuilder::new("g", 0);
        let k = fb.copy(1);
        fb.assert(k, "k"); // site
        fb.ret();
        let g = fb.finish();
        let ctx = FuncCtx::new(&g);
        let site = InstPos::new(BlockId(0), 1);
        let region = find_reexec_points(&g, &ctx, site, RegionPolicy::Compensated);
        let slice = slice_in_region(&g, &ctx, &region, site);
        assert_eq!(
            judge_non_deadlock_site(&slice),
            RecoverabilityVerdict::NoSharedReadOnSlice
        );
    }

    #[test]
    fn verdict_helpers() {
        assert!(RecoverabilityVerdict::Recoverable.is_recoverable());
        assert!(!RecoverabilityVerdict::NoLockInRegion.is_recoverable());
        assert!(!RecoverabilityVerdict::NoSharedReadOnSlice.is_recoverable());
    }
}
