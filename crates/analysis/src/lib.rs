//! # conair-analysis
//!
//! The static analyses of ConAir (ASPLOS'13), implemented over the
//! `conair-ir` representation:
//!
//! * [`sites`] — failure-site identification, survival and fix mode
//!   (paper Section 3.1);
//! * [`classify`](mod@classify) — idempotency classification of instructions under the
//!   three [`RegionPolicy`] points of the Figure-4 design spectrum
//!   (Sections 2.2, 3.2, 4.1);
//! * [`ctx`](mod@ctx) — memoized per-function contexts (CFG, flat
//!   instruction layout, instruction-class bitsets) shared by every pass;
//! * [`region`] — the backward depth-first search that places reexecution
//!   points and delimits reexecution regions (Section 3.2.2);
//! * [`slicing`] — region-restricted backward slicing (Section 4.2,
//!   Figure 8);
//! * [`optimize`] — removal of statically-unrecoverable sites
//!   (Section 4.2, Figure 7);
//! * [`interproc`] — inter-procedural promotion (Section 4.3);
//! * [`plan`] — the end-to-end driver producing a [`HardeningPlan`] for
//!   `conair-transform`.
//!
//! ## Example
//!
//! ```rust
//! use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};
//! use conair_analysis::{analyze, AnalysisConfig};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let flag = mb.global("flag", 0);
//! let mut fb = FuncBuilder::new("main", 0);
//! let v = fb.load_global(flag);
//! let ok = fb.cmp(CmpKind::Ne, v, 0);
//! fb.assert(ok, "flag must be set");
//! fb.ret();
//! mb.function(fb.finish());
//! let module = mb.finish();
//!
//! let plan = analyze(&module, &AnalysisConfig::survival_defaults());
//! assert_eq!(plan.sites.len(), 1);
//! assert_eq!(plan.checkpoints.len(), 1); // one checkpoint at the entrance
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod classify;
pub mod ctx;
pub mod interproc;
pub mod optimize;
pub mod plan;
pub mod region;
pub mod sites;
pub mod slicing;

pub use classify::{classify, CompensationKind, DestroyReason, InstClass, RegionPolicy};
pub use ctx::{AnalysisCache, FuncCtx};
pub use interproc::{InterprocConfig, Promotion};
pub use optimize::RecoverabilityVerdict;
pub use plan::{analyze, AnalysisConfig, HardeningPlan, PlanStats, SitePlan};
pub use region::{find_reexec_points, ReexecPoint, SiteRegion};
pub use sites::{identify_sites, FailureSite, SiteSelection, SiteTable};
pub use slicing::{criterion_regs, slice_in_region, RegionSlice};
