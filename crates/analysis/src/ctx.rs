//! Per-function analysis context, memoized across the whole pipeline.
//!
//! Every analysis pass needs the same three derived views of a function:
//! its control-flow graph, the [`FlatLayout`] numbering its instruction
//! positions, and the class bitsets (lock acquisitions, shared reads) that
//! the Section 4.2/4.3 judgments query. [`FuncCtx`] bundles them, built in
//! one pass; [`AnalysisCache`] memoizes one context per function so
//! inter-procedural promotion reuses caller CFGs instead of rebuilding
//! them at every call site.

use std::collections::HashMap;
use std::rc::Rc;

use conair_ir::{Cfg, FlatLayout, FuncId, Function, InstSet, Module};

use crate::classify::{is_lock_acquisition, is_shared_read};

/// The derived views of one function shared by every analysis pass.
#[derive(Debug, Clone)]
pub struct FuncCtx {
    /// Block-level control-flow graph.
    pub cfg: Cfg,
    /// Flat instruction numbering — the same one the runtime's dense
    /// lowering uses, so region bitsets and interpreter pcs agree.
    pub layout: FlatLayout,
    /// Flat indices of every lock-acquisition instruction (the Figure 7a/7b
    /// deadlock judgment intersects regions against this set).
    pub lock_acquisitions: InstSet,
    /// Flat indices of every shared-memory read (the Section 4.3
    /// unrecoverable-path walk tests membership here).
    pub shared_reads: InstSet,
}

impl FuncCtx {
    /// Builds the context for `func` (CFG, layout, and class bitsets in a
    /// single instruction walk).
    pub fn new(func: &Function) -> Self {
        let cfg = Cfg::build(func);
        let layout = FlatLayout::new(func);
        let mut lock_acquisitions = layout.empty_set();
        let mut shared_reads = layout.empty_set();
        let mut flat = 0u32;
        for block in &func.blocks {
            for inst in &block.insts {
                if is_lock_acquisition(inst) {
                    lock_acquisitions.insert(flat);
                }
                if is_shared_read(inst) {
                    shared_reads.insert(flat);
                }
                flat += 1;
            }
        }
        Self {
            cfg,
            layout,
            lock_acquisitions,
            shared_reads,
        }
    }
}

/// Memoizes one [`FuncCtx`] per function of a module.
///
/// Shared between the per-site loop of [`crate::plan::analyze`] and the
/// caller walks of [`crate::interproc::promote_site`], so a function's CFG
/// and bitsets are built exactly once no matter how many sites or call
/// sites touch it.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    ctxs: HashMap<FuncId, Rc<FuncCtx>>,
}

impl AnalysisCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The context of `func`, building it on first request.
    pub fn ctx(&mut self, module: &Module, func: FuncId) -> Rc<FuncCtx> {
        Rc::clone(
            self.ctxs
                .entry(func)
                .or_insert_with(|| Rc::new(FuncCtx::new(module.func(func)))),
        )
    }

    /// Number of functions with a built context (diagnostics).
    pub fn len(&self) -> usize {
        self.ctxs.len()
    }

    /// Whether no context has been built yet.
    pub fn is_empty(&self) -> bool {
        self.ctxs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{CmpKind, FuncBuilder, GlobalId, InstPos, LockId, ModuleBuilder};

    #[test]
    fn class_bitsets_match_instruction_walk() {
        let mut fb = FuncBuilder::new("f", 0);
        fb.lock(LockId(0)); // 0: lock acquisition
        let v = fb.load_global(GlobalId(0)); // 1: shared read
        let c = fb.cmp(CmpKind::Gt, v, 0); // 2
        fb.assert(c, "x"); // 3
        fb.ret(); // 4
        let f = fb.finish();
        let ctx = FuncCtx::new(&f);
        assert_eq!(ctx.lock_acquisitions.iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(ctx.shared_reads.iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(ctx.layout.flat(InstPos::new(conair_ir::BlockId(0), 3)), 3);
    }

    #[test]
    fn cache_builds_each_function_once() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FuncBuilder::new("a", 0);
        fb.ret();
        let a = mb.function(fb.finish());
        let mut fb = FuncBuilder::new("b", 0);
        fb.ret();
        let b = mb.function(fb.finish());
        let module = mb.finish();

        let mut cache = AnalysisCache::new();
        assert!(cache.is_empty());
        let first = cache.ctx(&module, a);
        let again = cache.ctx(&module, a);
        assert!(Rc::ptr_eq(&first, &again), "memoized, not rebuilt");
        cache.ctx(&module, b);
        assert_eq!(cache.len(), 2);
    }
}
