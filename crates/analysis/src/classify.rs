//! Idempotency classification of instructions (paper Sections 2.2, 3.2, 4.1).
//!
//! A reexecution region may only contain instructions whose reexecution
//! cannot change program semantics. The classification depends on the
//! [`RegionPolicy`], which models the design spectrum of paper Figure 4:
//! the further right the policy, the more instructions are admitted and the
//! more runtime support recovery needs.

use conair_ir::Inst;

/// Where on the Figure-4 spectrum reexecution regions sit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum RegionPolicy {
    /// The basic Section-3 design: regions contain no calls of any kind, no
    /// allocation, no locks — only register computation and reads.
    Strict,
    /// The Section-4.1 extension (ConAir's default): memory-allocation and
    /// lock-acquisition operations are admitted and compensated (freed /
    /// released) at the failure site before rollback.
    #[default]
    Compensated,
    /// Figure-4 ablation point: writes to shared variables and stack slots
    /// are admitted; the runtime must keep an undo log and roll memory back.
    /// I/O and `free`/`unlock` remain excluded.
    BufferedWrites,
}

impl RegionPolicy {
    /// All policies, left-to-right along the Figure-4 spectrum.
    pub const ALL: [RegionPolicy; 3] = [
        RegionPolicy::Strict,
        RegionPolicy::Compensated,
        RegionPolicy::BufferedWrites,
    ];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            RegionPolicy::Strict => "strict-idempotent",
            RegionPolicy::Compensated => "idempotent+compensation",
            RegionPolicy::BufferedWrites => "buffered-shared-writes",
        }
    }
}

/// Why an instruction terminates the backward region search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DestroyReason {
    /// Write to a global or through a pointer (shared memory).
    SharedWrite,
    /// Write to a stack slot (not part of the checkpointed register image).
    StackWrite,
    /// An output operation (I/O cannot be reexecuted without sandboxing).
    Io,
    /// A call instruction (basic design: all calls destroy idempotency).
    Call,
    /// `free` — may release a block allocated before the region began.
    Free,
    /// `unlock` — may release a lock acquired before the region began.
    Unlock,
    /// A lock/allocation under [`RegionPolicy::Strict`], where the
    /// compensation machinery is unavailable.
    UncompensatedResource,
}

/// What a resource-acquiring instruction needs compensated on rollback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompensationKind {
    /// A heap allocation: `free` the block at the failure site.
    Allocation,
    /// A lock acquisition: `unlock` at the failure site.
    LockAcquisition,
}

/// Classification of one instruction for region formation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Reexecutable with no support at all (register ops, loads of
    /// locals, control flow, markers).
    Safe,
    /// Reexecutable, and reads shared memory — relevant for the
    /// Section 4.2 non-deadlock optimization.
    SharedRead,
    /// Admitted with compensation at the failure site (Section 4.1).
    Compensable(CompensationKind),
    /// Terminates the region: a reexecution point goes right after it.
    Destroying(DestroyReason),
}

impl InstClass {
    /// Whether the backward search continues past this instruction.
    pub fn is_region_member(self) -> bool {
        !matches!(self, InstClass::Destroying(_))
    }
}

/// Classifies `inst` under `policy`.
///
/// Transform-generated instructions are classified like the instructions
/// they replace (`TimedLock` like `Lock`, `FailGuard` like `Assert`,
/// `PtrGuard`/`Checkpoint` as safe), so the analysis can also be run on
/// hardened modules (used by tests and the dynamic reexecution-point
/// accounting).
pub fn classify(inst: &Inst, policy: RegionPolicy) -> InstClass {
    use RegionPolicy::*;
    match inst {
        // Pure register computation and intra-frame reads.
        Inst::Copy { .. }
        | Inst::BinOp { .. }
        | Inst::Cmp { .. }
        | Inst::AddrOfGlobal { .. }
        | Inst::LoadLocal { .. }
        | Inst::Marker { .. }
        | Inst::Nop
        | Inst::Checkpoint { .. }
        | Inst::PtrGuard { .. }
        | Inst::Jump { .. }
        | Inst::Branch { .. }
        | Inst::Return { .. }
        | Inst::Assert { .. }
        | Inst::OutputAssert { .. }
        | Inst::FailGuard { .. } => InstClass::Safe,

        // Shared reads are safe but tracked for the optimization.
        Inst::LoadGlobal { .. } | Inst::LoadPtr { .. } => InstClass::SharedRead,

        // Shared writes.
        Inst::StoreGlobal { .. } | Inst::StorePtr { .. } => match policy {
            BufferedWrites => InstClass::Safe,
            _ => InstClass::Destroying(DestroyReason::SharedWrite),
        },

        // Stack-slot writes (paper Figure 3b).
        Inst::StoreLocal { .. } => match policy {
            BufferedWrites => InstClass::Safe,
            _ => InstClass::Destroying(DestroyReason::StackWrite),
        },

        // Resources (Section 4.1).
        Inst::Alloc { .. } => match policy {
            Strict => InstClass::Destroying(DestroyReason::UncompensatedResource),
            _ => InstClass::Compensable(CompensationKind::Allocation),
        },
        Inst::Lock { .. } | Inst::TimedLock { .. } => match policy {
            Strict => InstClass::Destroying(DestroyReason::UncompensatedResource),
            _ => InstClass::Compensable(CompensationKind::LockAcquisition),
        },

        // Never admitted (Section 4.1: "reexecuting free or unlock could be
        // dangerous"; output needs I/O sandboxing).
        Inst::Free { .. } => InstClass::Destroying(DestroyReason::Free),
        Inst::Unlock { .. } => InstClass::Destroying(DestroyReason::Unlock),
        Inst::Output { .. } => InstClass::Destroying(DestroyReason::Io),
        Inst::Call { .. } => InstClass::Destroying(DestroyReason::Call),
    }
}

/// Whether `inst` reads shared memory (drives the Section 4.2 non-deadlock
/// optimization).
pub fn is_shared_read(inst: &Inst) -> bool {
    matches!(inst, Inst::LoadGlobal { .. } | Inst::LoadPtr { .. })
}

/// Whether `inst` acquires a lock (drives the Section 4.2 deadlock
/// optimization).
pub fn is_lock_acquisition(inst: &Inst) -> bool {
    matches!(inst, Inst::Lock { .. } | Inst::TimedLock { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{GlobalId, LocalId, LockId, Operand, Reg};

    fn store_global() -> Inst {
        Inst::StoreGlobal {
            global: GlobalId(0),
            src: Operand::Const(1),
        }
    }

    #[test]
    fn register_ops_always_safe() {
        for policy in RegionPolicy::ALL {
            assert_eq!(
                classify(
                    &Inst::Copy {
                        dst: Reg(0),
                        src: Operand::Const(1)
                    },
                    policy
                ),
                InstClass::Safe
            );
        }
    }

    #[test]
    fn shared_writes_destroy_except_buffered() {
        assert_eq!(
            classify(&store_global(), RegionPolicy::Strict),
            InstClass::Destroying(DestroyReason::SharedWrite)
        );
        assert_eq!(
            classify(&store_global(), RegionPolicy::Compensated),
            InstClass::Destroying(DestroyReason::SharedWrite)
        );
        assert_eq!(
            classify(&store_global(), RegionPolicy::BufferedWrites),
            InstClass::Safe
        );
    }

    #[test]
    fn stack_writes_destroy_figure_3b() {
        let stl = Inst::StoreLocal {
            local: LocalId(0),
            src: Operand::Const(0),
        };
        assert_eq!(
            classify(&stl, RegionPolicy::Compensated),
            InstClass::Destroying(DestroyReason::StackWrite)
        );
        assert_eq!(
            classify(&stl, RegionPolicy::BufferedWrites),
            InstClass::Safe
        );
    }

    #[test]
    fn locks_compensable_under_default_policy() {
        let lock = Inst::Lock { lock: LockId(0) };
        assert_eq!(
            classify(&lock, RegionPolicy::Strict),
            InstClass::Destroying(DestroyReason::UncompensatedResource)
        );
        assert_eq!(
            classify(&lock, RegionPolicy::Compensated),
            InstClass::Compensable(CompensationKind::LockAcquisition)
        );
        assert!(is_lock_acquisition(&lock));
    }

    #[test]
    fn alloc_compensable_free_never() {
        let alloc = Inst::Alloc {
            dst: Reg(0),
            words: Operand::Const(1),
        };
        assert_eq!(
            classify(&alloc, RegionPolicy::Compensated),
            InstClass::Compensable(CompensationKind::Allocation)
        );
        let free = Inst::Free {
            ptr: Operand::Reg(Reg(0)),
        };
        for policy in RegionPolicy::ALL {
            assert_eq!(
                classify(&free, policy),
                InstClass::Destroying(DestroyReason::Free)
            );
        }
    }

    #[test]
    fn io_and_calls_always_destroy() {
        let out = Inst::Output {
            label: "x".into(),
            value: Operand::Const(0),
        };
        let call = Inst::Call {
            dst: None,
            callee: conair_ir::FuncId(0),
            args: vec![],
        };
        for policy in RegionPolicy::ALL {
            assert_eq!(
                classify(&out, policy),
                InstClass::Destroying(DestroyReason::Io)
            );
            assert_eq!(
                classify(&call, policy),
                InstClass::Destroying(DestroyReason::Call)
            );
        }
    }

    #[test]
    fn shared_reads_flagged() {
        let ld = Inst::LoadGlobal {
            dst: Reg(0),
            global: GlobalId(0),
        };
        assert_eq!(
            classify(&ld, RegionPolicy::Compensated),
            InstClass::SharedRead
        );
        assert!(is_shared_read(&ld));
        assert!(classify(&ld, RegionPolicy::Compensated).is_region_member());
        assert!(!classify(&store_global(), RegionPolicy::Compensated).is_region_member());
    }
}
