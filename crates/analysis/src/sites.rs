//! Failure-site identification (paper Section 3.1).
//!
//! *Survival mode* identifies every program location where one of the four
//! common failure types could occur, with no knowledge of any bug.
//! *Fix mode* is given the location of one observed failure by the user.
//! Neither requires soundness or completeness: sites that never fail only
//! cost a checkpoint.

use conair_ir::{FailureKind, Inst, Loc, Module, SiteId};

/// One potential failure site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureSite {
    /// Dense site identity (index into site tables).
    pub id: SiteId,
    /// Location of the site instruction in the *original* module.
    pub loc: Loc,
    /// The failure type checked at this site.
    pub kind: FailureKind,
}

/// How failure sites are selected.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SiteSelection {
    /// Survival mode: every statically identifiable potential failure site.
    #[default]
    Survival,
    /// Fix mode: only the sites at the named markers. Each marker names the
    /// first potential failure site at or after it in its basic block (the
    /// paper's "users inform ConAir of the failure location").
    Fix(Vec<String>),
}

/// The site table produced by identification.
#[derive(Debug, Clone, Default)]
pub struct SiteTable {
    /// All sites, indexed by `SiteId`.
    pub sites: Vec<FailureSite>,
}

impl SiteTable {
    /// Looks up a site.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn site(&self, id: SiteId) -> &FailureSite {
        &self.sites[id.index()]
    }

    /// Number of sites of `kind`.
    pub fn count_of(&self, kind: FailureKind) -> usize {
        self.sites.iter().filter(|s| s.kind == kind).count()
    }

    /// Total number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The site at `loc`, if any.
    pub fn site_at(&self, loc: Loc) -> Option<&FailureSite> {
        self.sites.iter().find(|s| s.loc == loc)
    }
}

/// Returns the failure kind `inst` could manifest, if it is a potential
/// failure site (paper Section 3.1.1 / Figure 5).
pub fn potential_failure_kind(inst: &Inst) -> Option<FailureKind> {
    match inst {
        Inst::Assert { .. } => Some(FailureKind::AssertionViolation),
        // Both explicit output oracles and plain output calls are
        // wrong-output sites; plain outputs lack a checkable condition but
        // are still hardened ("to better understand the worst-case overhead
        // ... ConAir treats every output function as a potential failure
        // site", Section 5).
        Inst::OutputAssert { .. } | Inst::Output { .. } => Some(FailureKind::WrongOutput),
        // Every dereference of a heap/global pointer.
        Inst::LoadPtr { .. } | Inst::StorePtr { .. } => Some(FailureKind::SegFault),
        // Every lock acquisition under time-out based deadlock detection.
        Inst::Lock { .. } => Some(FailureKind::Deadlock),
        // Hardened forms, so the identification can re-run on transformed
        // modules.
        Inst::TimedLock { .. } => Some(FailureKind::Deadlock),
        Inst::FailGuard { kind, .. } => Some(match kind {
            conair_ir::GuardKind::Assert => FailureKind::AssertionViolation,
            conair_ir::GuardKind::WrongOutput => FailureKind::WrongOutput,
        }),
        _ => None,
    }
}

/// Identifies failure sites in `module` according to `selection`.
///
/// Site ids are dense and ordered by location, so analyses can use them as
/// vector indices.
pub fn identify_sites(module: &Module, selection: &SiteSelection) -> SiteTable {
    let mut sites = Vec::new();
    match selection {
        SiteSelection::Survival => {
            for (loc, inst) in module.iter_insts() {
                if let Some(kind) = potential_failure_kind(inst) {
                    sites.push((loc, kind));
                }
            }
        }
        SiteSelection::Fix(markers) => {
            for marker in markers {
                if let Some(found) = resolve_fix_marker(module, marker) {
                    sites.push(found);
                }
            }
            sites.sort();
            sites.dedup();
        }
    }
    SiteTable {
        sites: sites
            .into_iter()
            .enumerate()
            .map(|(i, (loc, kind))| FailureSite {
                id: SiteId::from_index(i),
                loc,
                kind,
            })
            .collect(),
    }
}

/// Resolves a fix-mode marker to the first potential failure site at or
/// after it within the same basic block.
pub fn resolve_fix_marker(module: &Module, marker: &str) -> Option<(Loc, FailureKind)> {
    let loc = module.marker(marker)?;
    let func = module.func(loc.func);
    let block = func.block(loc.block);
    for (offset, inst) in block.insts.iter().enumerate().skip(loc.inst) {
        if let Some(kind) = potential_failure_kind(inst) {
            return Some((Loc::new(loc.func, loc.block, offset), kind));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};

    fn sample_module() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 0);
        let l = mb.lock("m");
        let mut fb = FuncBuilder::new("main", 0);
        let v = fb.load_global(g);
        let c = fb.cmp(CmpKind::Gt, v, 0);
        fb.assert(c, "positive"); // assertion site
        fb.marker("before_deref");
        let p = fb.addr_of_global(g);
        let x = fb.load_ptr(p); // segfault site
        fb.store_ptr(p, x); // segfault site
        fb.lock(l); // deadlock site
        fb.unlock(l);
        fb.output("result", x); // wrong-output site
        fb.output_assert(c, "oracle"); // wrong-output site
        fb.ret();
        mb.function(fb.finish());
        mb.finish()
    }

    #[test]
    fn survival_finds_all_kinds() {
        let m = sample_module();
        let table = identify_sites(&m, &SiteSelection::Survival);
        assert_eq!(table.count_of(FailureKind::AssertionViolation), 1);
        assert_eq!(table.count_of(FailureKind::WrongOutput), 2);
        assert_eq!(table.count_of(FailureKind::SegFault), 2);
        assert_eq!(table.count_of(FailureKind::Deadlock), 1);
        assert_eq!(table.len(), 6);
        // Ids are dense and match indices.
        for (i, s) in table.sites.iter().enumerate() {
            assert_eq!(s.id.index(), i);
        }
    }

    #[test]
    fn fix_mode_resolves_marker_to_next_site() {
        let m = sample_module();
        let table = identify_sites(&m, &SiteSelection::Fix(vec!["before_deref".into()]));
        assert_eq!(table.len(), 1);
        assert_eq!(table.sites[0].kind, FailureKind::SegFault);
        // The marker resolves to the LoadPtr (the AddrOfGlobal in between
        // is not a failure site).
        let inst = m.inst_at(table.sites[0].loc).unwrap();
        assert!(matches!(inst, Inst::LoadPtr { .. }));
    }

    #[test]
    fn fix_mode_dedupes_and_ignores_unknown_markers() {
        let m = sample_module();
        let table = identify_sites(
            &m,
            &SiteSelection::Fix(vec![
                "before_deref".into(),
                "before_deref".into(),
                "no_such_marker".into(),
            ]),
        );
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn site_lookup_helpers() {
        let m = sample_module();
        let table = identify_sites(&m, &SiteSelection::Survival);
        let first = &table.sites[0];
        assert_eq!(table.site(first.id), first);
        assert_eq!(table.site_at(first.loc), Some(first));
        assert!(!table.is_empty());
    }
}
