//! Reexecution-point identification: the backward depth-first search of
//! paper Section 3.2.2.
//!
//! For a failure site `f`, the search walks the instruction-level CFG
//! backwards from `f`'s predecessors. Whenever it encounters an
//! idempotency-destroying instruction `s`, the position *right after* `s`
//! becomes a reexecution point and that path is abandoned. Whenever it
//! reaches the entrance of the containing function, the entrance becomes a
//! reexecution point. Every instruction visited in between belongs to some
//! reexecution region of `f` — the set the Section 4.2 optimization
//! inspects. The complexity is linear in the static function size.
//!
//! Regions and visited sets are dense [`InstSet`] bitsets keyed by the
//! [`conair_ir::FlatLayout`] numbering (the same numbering the runtime's
//! dense lowering uses), so membership and whole-region queries cost a
//! word operation instead of hashing.

use std::collections::HashSet;

use conair_ir::{Function, InstPos, InstSet, Loc, SiteId};

use crate::classify::{classify, InstClass, RegionPolicy};
use crate::ctx::FuncCtx;

/// A reexecution point for one or more failure sites.
///
/// The point denotes "insert a checkpoint *before* the instruction at
/// `pos`". Points are intra-procedural positions; [`crate::interproc`]
/// lifts them into callers where Section 4.3 applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReexecPoint {
    /// Checkpoint goes immediately before this position.
    pub pos: InstPos,
    /// True when the point is the function entrance (paper: "when
    /// encountering the entrance of the function containing f").
    pub at_entry: bool,
}

/// The result of the backward search for one failure site.
#[derive(Debug, Clone, Default)]
pub struct SiteRegion {
    /// All reexecution points found, deduplicated.
    pub points: Vec<ReexecPoint>,
    /// Every instruction position visited between a reexecution point and
    /// the site — i.e. positions lying inside at least one reexecution
    /// region of the site. Includes the site itself. Indexed by the
    /// function's flat instruction numbering.
    pub region: InstSet,
    /// True when at least one backward path reached the function entrance.
    pub reaches_entry: bool,
    /// True when *no* backward path met an idempotency-destroying
    /// instruction — i.e. there is no destroying operation on any path
    /// between the entrance and the site (inter-procedural condition (1),
    /// Section 4.3).
    pub all_paths_clean: bool,
}

impl SiteRegion {
    /// True if any instruction in the region *other than the site itself*
    /// is in `qualifying` (a class bitset over the same flat numbering,
    /// e.g. [`FuncCtx::lock_acquisitions`]).
    ///
    /// One masked word-AND sweep — no per-instruction iteration or
    /// re-classification.
    pub fn region_intersects(&self, site_flat: u32, qualifying: &InstSet) -> bool {
        self.region.intersects_excluding(qualifying, site_flat)
    }
}

/// Computes the reexecution points and region of the failure site at
/// `site_pos` in `func` under `policy` (paper Section 3.2.2).
///
/// The search starts at the site's predecessors: the site instruction
/// itself is *the end of the region* and is never classified (a deadlock
/// site is a lock acquisition, yet its own acquisition is what fails).
pub fn find_reexec_points(
    func: &Function,
    ctx: &FuncCtx,
    site_pos: InstPos,
    policy: RegionPolicy,
) -> SiteRegion {
    let layout = &ctx.layout;
    let mut out = SiteRegion {
        region: layout.empty_set(),
        all_paths_clean: true,
        ..SiteRegion::default()
    };
    out.region.insert(layout.flat(site_pos));

    let mut points: HashSet<ReexecPoint> = HashSet::new();
    let mut visited = layout.empty_set();
    let mut work: Vec<InstPos> = ctx.cfg.inst_predecessors(func, site_pos);

    // The site might be the first instruction of the entry block: the
    // entrance itself is then the (only) reexecution point.
    if work.is_empty() {
        points.insert(ReexecPoint {
            pos: site_pos,
            at_entry: true,
        });
        out.reaches_entry = true;
    }

    while let Some(pos) = work.pop() {
        if !visited.insert(layout.flat(pos)) {
            continue;
        }
        let inst = &func.block(pos.block).insts[pos.inst];
        match classify(inst, policy) {
            InstClass::Destroying(_) => {
                // Reexecution point right after the destroying instruction.
                points.insert(ReexecPoint {
                    pos: InstPos::new(pos.block, pos.inst + 1),
                    at_entry: false,
                });
                out.all_paths_clean = false;
            }
            _ => {
                out.region.insert(layout.flat(pos));
                let preds = ctx.cfg.inst_predecessors(func, pos);
                if preds.is_empty() {
                    // Reached the entrance of the function.
                    points.insert(ReexecPoint {
                        pos: InstPos::new(conair_ir::BlockId(0), 0),
                        at_entry: true,
                    });
                    out.reaches_entry = true;
                } else {
                    work.extend(preds);
                }
            }
        }
    }

    let mut points: Vec<ReexecPoint> = points.into_iter().collect();
    points.sort();
    out.points = points;
    out
}

/// Region analysis results for every site of a function, plus the location
/// mapping back to the module.
#[derive(Debug, Clone)]
pub struct RegionAnalysis {
    /// Per-site regions, indexed by [`SiteId`].
    pub regions: Vec<SiteRegion>,
    /// Per-site locations (original module coordinates).
    pub site_locs: Vec<Loc>,
}

impl RegionAnalysis {
    /// The region of `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn region(&self, site: SiteId) -> &SiteRegion {
        &self.regions[site.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{BlockId, CmpKind, FuncBuilder};

    fn analyze_last_assert(func: &Function) -> (SiteRegion, InstPos, FuncCtx) {
        let ctx = FuncCtx::new(func);
        // Find the assert.
        let mut site = None;
        for (bid, block) in func.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                if matches!(inst, conair_ir::Inst::Assert { .. }) {
                    site = Some(InstPos::new(bid, i));
                }
            }
        }
        let site = site.expect("function under test has an assert");
        (
            find_reexec_points(func, &ctx, site, RegionPolicy::Compensated),
            site,
            ctx,
        )
    }

    /// Straight-line: g-store, then loads and an assert. The point must sit
    /// right after the store.
    #[test]
    fn point_after_destroying_inst() {
        let mut fb = FuncBuilder::new("f", 0);
        // Use builder against a fake global id 0 — classification is
        // structural, the module is not needed.
        let g = conair_ir::GlobalId(0);
        let v0 = fb.load_global(g);
        fb.store_global(g, v0); // destroying, index 1
        let v1 = fb.load_global(g); // index 2
        let c = fb.cmp(CmpKind::Gt, v1, 0); // index 3
        fb.assert(c, "x"); // index 4 — the site
        fb.ret();
        let f = fb.finish();
        let (region, site, ctx) = analyze_last_assert(&f);
        assert_eq!(region.points.len(), 1);
        assert_eq!(region.points[0].pos, InstPos::new(BlockId(0), 2));
        assert!(!region.points[0].at_entry);
        assert!(!region.all_paths_clean);
        assert!(!region.reaches_entry);
        // Region: the site plus the two instructions after the store.
        assert_eq!(region.region.len(), 3);
        assert!(region.region.contains(ctx.layout.flat(site)));
    }

    /// No destroying instruction at all: the point is the entrance.
    #[test]
    fn point_at_entry_when_clean() {
        let mut fb = FuncBuilder::new("f", 0);
        let g = conair_ir::GlobalId(0);
        let v = fb.load_global(g);
        let c = fb.cmp(CmpKind::Gt, v, 0);
        fb.assert(c, "x");
        fb.ret();
        let f = fb.finish();
        let (region, _, _) = analyze_last_assert(&f);
        assert_eq!(region.points.len(), 1);
        assert!(region.points[0].at_entry);
        assert_eq!(region.points[0].pos, InstPos::new(BlockId(0), 0));
        assert!(region.all_paths_clean);
        assert!(region.reaches_entry);
    }

    /// Diamond where only one arm contains a destroying instruction: two
    /// points — one after the store, one at the entrance via the clean arm.
    #[test]
    fn branchy_paths_get_per_path_points() {
        let g = conair_ir::GlobalId(0);
        let mut fb = FuncBuilder::new("f", 1);
        let dirty = fb.new_block();
        let clean = fb.new_block();
        let merge = fb.new_block();
        fb.branch(fb.param(0), dirty, clean);
        fb.switch_to(dirty);
        fb.store_global(g, 1); // destroying
        fb.jump(merge);
        fb.switch_to(clean);
        fb.nop();
        fb.jump(merge);
        fb.switch_to(merge);
        let v = fb.load_global(g);
        let c = fb.cmp(CmpKind::Gt, v, 0);
        fb.assert(c, "x");
        fb.ret();
        let f = fb.finish();
        let (region, _, _) = analyze_last_assert(&f);
        assert_eq!(region.points.len(), 2, "{:?}", region.points);
        assert!(region.points.iter().any(|p| p.at_entry));
        assert!(region
            .points
            .iter()
            .any(|p| !p.at_entry && p.pos == InstPos::new(BlockId(1), 1)));
        assert!(region.reaches_entry);
        assert!(!region.all_paths_clean, "the dirty arm is not clean");
    }

    /// Loops terminate: the backward walk re-visits blocks at most once.
    #[test]
    fn loops_terminate_and_reach_entry() {
        let g = conair_ir::GlobalId(0);
        let mut fb = FuncBuilder::new("f", 0);
        // A loop whose body only reads shared state; the induction variable
        // lives in a stack slot, so the loop back-edge passes a destroying
        // store.
        fb.counted_loop(10, |b, _| {
            let _ = b.load_global(g);
        });
        let v = fb.load_global(g);
        let c = fb.cmp(CmpKind::Ge, v, 0);
        fb.assert(c, "x");
        fb.ret();
        let f = fb.finish();
        let (region, _, _) = analyze_last_assert(&f);
        // Points exist (after the loop's stack-slot stores) and the search
        // terminated.
        assert!(!region.points.is_empty());
        assert!(!region.all_paths_clean);
    }

    /// A lock acquisition is inside the region under the compensated
    /// policy but terminates it under the strict policy.
    #[test]
    fn policy_changes_region_extent() {
        let l = conair_ir::LockId(0);
        let g = conair_ir::GlobalId(0);
        let mut fb = FuncBuilder::new("f", 0);
        fb.lock(l); // index 0
        let v = fb.load_global(g); // 1
        let c = fb.cmp(CmpKind::Gt, v, 0); // 2
        fb.assert(c, "x"); // 3
        fb.ret();
        let f = fb.finish();
        let ctx = FuncCtx::new(&f);
        let site = InstPos::new(BlockId(0), 3);

        let comp = find_reexec_points(&f, &ctx, site, RegionPolicy::Compensated);
        assert!(
            comp.points[0].at_entry,
            "lock admitted, region reaches entry"
        );
        assert!(comp
            .region
            .contains(ctx.layout.flat(InstPos::new(BlockId(0), 0))));

        let strict = find_reexec_points(&f, &ctx, site, RegionPolicy::Strict);
        assert!(!strict.points[0].at_entry);
        assert_eq!(strict.points[0].pos, InstPos::new(BlockId(0), 1));
    }

    /// A site that is the very first instruction: the entrance is the point.
    #[test]
    fn site_at_function_start() {
        let mut fb = FuncBuilder::new("f", 1);
        fb.assert(fb.param(0), "x");
        fb.ret();
        let f = fb.finish();
        let (region, _, _) = analyze_last_assert(&f);
        assert_eq!(region.points.len(), 1);
        assert!(region.points[0].at_entry);
    }

    /// Reexecution points of different failure sites never shorten each
    /// other (paper Section 3.2.2, final paragraph): they are a function of
    /// the destroying instructions only.
    #[test]
    fn points_of_distinct_sites_are_consistent() {
        let g = conair_ir::GlobalId(0);
        let mut fb = FuncBuilder::new("f", 0);
        let v0 = fb.load_global(g);
        fb.store_global(g, v0); // destroying at index 1
        let v1 = fb.load_global(g); // 2
        let c1 = fb.cmp(CmpKind::Gt, v1, 0); // 3
        fb.assert(c1, "a"); // site A at 4
        let v2 = fb.load_global(g); // 5
        let c2 = fb.cmp(CmpKind::Gt, v2, 0); // 6
        fb.assert(c2, "b"); // site B at 7
        fb.ret();
        let f = fb.finish();
        let ctx = FuncCtx::new(&f);
        let ra = find_reexec_points(
            &f,
            &ctx,
            InstPos::new(BlockId(0), 4),
            RegionPolicy::Compensated,
        );
        let rb = find_reexec_points(
            &f,
            &ctx,
            InstPos::new(BlockId(0), 7),
            RegionPolicy::Compensated,
        );
        // Both sites share the point right after the store; site B's region
        // strictly contains site A's region.
        assert_eq!(ra.points, rb.points);
        assert!(ra.region.is_subset(&rb.region));
    }

    /// The iteration-free intersection query: region ∩ locks minus the site
    /// bit (satellite of the Figure 7a/7b judgment).
    #[test]
    fn region_intersects_excludes_site() {
        let mut fb = FuncBuilder::new("f", 0);
        fb.lock(conair_ir::LockId(0)); // the site, index 0 — no other lock
        fb.ret();
        let f = fb.finish();
        let ctx = FuncCtx::new(&f);
        let site = InstPos::new(BlockId(0), 0);
        let region = find_reexec_points(&f, &ctx, site, RegionPolicy::Compensated);
        let site_flat = ctx.layout.flat(site);
        assert!(region.region.contains(site_flat));
        assert!(
            !region.region_intersects(site_flat, &ctx.lock_acquisitions),
            "the site's own acquisition does not make it recoverable"
        );
    }
}
