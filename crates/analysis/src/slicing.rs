//! Intra-procedural backward slicing restricted to reexecution regions
//! (paper Section 4.2, Figure 8).
//!
//! ConAir's slicing is much simpler than general program slicing: inside a
//! reexecution region every write is to a virtual register, and registers
//! are restored by the checkpoint. So the slice only follows register
//! def-use chains *within the region*; the moment a value originates from
//! outside the region (no in-region definition) or from a non-register
//! location, tracking stops — "slicing outside an idempotent region is
//! useless for ConAir".
//!
//! Control dependence is approximated by including the condition operands
//! of every branch inside the region: any such branch chooses among the
//! paths that reach the failure site.

use std::collections::HashSet;

use conair_ir::{Function, Inst, InstPos, InstSet, Reg};

use crate::ctx::FuncCtx;
use crate::region::SiteRegion;

/// The backward slice of a failure site's criterion, restricted to its
/// reexecution regions.
#[derive(Debug, Clone, Default)]
pub struct RegionSlice {
    /// In-region instructions on the slice, as flat indices in the
    /// function's [`conair_ir::FlatLayout`] numbering.
    pub insts: InstSet,
    /// Registers on the slice that have *no* defining instruction inside the
    /// region — their values flow in from outside (parameters or earlier
    /// code). Used by the inter-procedural condition (2) of Section 4.3.
    pub open_regs: HashSet<Reg>,
    /// True when the slice contains a shared-memory read inside the region —
    /// the Section 4.2 recoverability condition for non-deadlock sites.
    pub has_shared_read: bool,
}

/// The slicing criterion: which operands of the site instruction feed the
/// failure decision.
pub fn criterion_regs(site_inst: &Inst) -> Vec<Reg> {
    match site_inst {
        Inst::Assert { cond, .. }
        | Inst::OutputAssert { cond, .. }
        | Inst::FailGuard { cond, .. } => cond.as_reg().into_iter().collect(),
        Inst::LoadPtr { ptr, .. } | Inst::StorePtr { ptr, .. } | Inst::PtrGuard { ptr, .. } => {
            ptr.as_reg().into_iter().collect()
        }
        // A wrong-output site without an oracle: the emitted value is the
        // criterion (hardening it lets a future oracle catch it).
        Inst::Output { value, .. } => value.as_reg().into_iter().collect(),
        // Deadlock sites do not use slicing (their optimization looks for
        // lock acquisitions instead).
        _ => Vec::new(),
    }
}

/// Computes the region-restricted backward slice of the site at `site_pos`.
///
/// `region` must be the [`SiteRegion`] computed for that site with the
/// same [`FuncCtx`].
pub fn slice_in_region(
    func: &Function,
    ctx: &FuncCtx,
    region: &SiteRegion,
    site_pos: InstPos,
) -> RegionSlice {
    let layout = &ctx.layout;
    let mut slice = RegionSlice {
        insts: layout.empty_set(),
        ..RegionSlice::default()
    };
    let site_inst = &func.block(site_pos.block).insts[site_pos.inst];
    let site_flat = layout.flat(site_pos);

    // Worklist of registers whose in-region definitions we must include.
    let mut pending: Vec<Reg> = criterion_regs(site_inst);

    // Control dependence approximation: conditions of in-region branches.
    for flat in region.region.iter() {
        if flat == site_flat {
            continue;
        }
        let pos = layout.pos(flat);
        if let Inst::Branch { cond, .. } = &func.block(pos.block).insts[pos.inst] {
            if let Some(r) = cond.as_reg() {
                pending.push(r);
            }
            slice.insts.insert(flat);
        }
    }

    let mut seen_regs: HashSet<Reg> = HashSet::new();
    while let Some(reg) = pending.pop() {
        if !seen_regs.insert(reg) {
            continue;
        }
        // All in-region definitions of `reg` (the region is small; a linear
        // scan is fine and avoids building reaching-definition sets).
        let mut defined_in_region = false;
        for flat in region.region.iter() {
            if flat == site_flat {
                continue;
            }
            let pos = layout.pos(flat);
            let inst = &func.block(pos.block).insts[pos.inst];
            if inst.def() == Some(reg) {
                defined_in_region = true;
                slice.insts.insert(flat);
                if ctx.shared_reads.contains(flat) {
                    // Figure 8: a read from non-register memory; inside the
                    // region this is exactly the shared read the
                    // optimization is looking for. Tracking stops here —
                    // the address operand of a pointer load is still
                    // followed, since it is a register value.
                    slice.has_shared_read = true;
                }
                for used in inst.used_regs() {
                    pending.push(used);
                }
            }
        }
        if !defined_in_region {
            slice.open_regs.insert(reg);
        }
    }
    slice
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{BlockId, CmpKind, FuncBuilder, GlobalId, LocalId};

    use crate::classify::RegionPolicy;
    use crate::region::find_reexec_points;

    fn slice_of_last_site(func: &Function) -> (RegionSlice, SiteRegion) {
        let ctx = FuncCtx::new(func);
        let mut site = None;
        for (bid, block) in func.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                if (!criterion_regs(inst).is_empty()
                    || matches!(inst, Inst::Assert { .. } | Inst::LoadPtr { .. }))
                    && crate::sites::potential_failure_kind(inst).is_some()
                {
                    site = Some(InstPos::new(bid, i));
                }
            }
        }
        let site = site.expect("test function has a failure site");
        let region = find_reexec_points(func, &ctx, site, RegionPolicy::Compensated);
        (slice_in_region(func, &ctx, &region, site), region)
    }

    /// Figure 7d: `tmp = global_x; assert(tmp)` — the slice reaches the
    /// shared read.
    #[test]
    fn figure_7d_shared_read_found() {
        let mut fb = FuncBuilder::new("f", 0);
        let tmp = fb.load_global(GlobalId(0));
        let c = fb.cmp(CmpKind::Ne, tmp, 0);
        fb.assert(c, "tmp");
        fb.ret();
        let f = fb.finish();
        let (slice, _) = slice_of_last_site(&f);
        assert!(slice.has_shared_read);
    }

    /// Figure 7c: `tmp = tmp + 1; assert(tmp)` with `tmp` in a stack slot —
    /// the store truncates the region and the slice sees only the reload,
    /// which is not a shared read.
    #[test]
    fn figure_7c_no_shared_read() {
        let mut fb = FuncBuilder::new("f", 0);
        let slot = fb.local();
        fb.store_local(slot, 5);
        let t0 = fb.load_local(slot);
        let t1 = fb.add(t0, 1);
        fb.store_local(slot, t1); // destroying: region starts after this
        let t2 = fb.load_local(slot);
        let c = fb.cmp(CmpKind::Ne, t2, 0);
        fb.assert(c, "tmp");
        fb.ret();
        let f = fb.finish();
        let (slice, region) = slice_of_last_site(&f);
        assert!(!slice.has_shared_read);
        assert!(!region.reaches_entry);
    }

    /// A segfault site: the slice criterion is the pointer operand; the
    /// pointer's defining global load is a shared read.
    #[test]
    fn pointer_slice_follows_address() {
        let mut fb = FuncBuilder::new("f", 0);
        let p = fb.load_global(GlobalId(0)); // the pointer value
        let _v = fb.load_ptr(p); // the site
        fb.ret();
        let f = fb.finish();
        let (slice, _) = slice_of_last_site(&f);
        assert!(slice.has_shared_read);
    }

    /// Parameters show up as open registers (inter-procedural condition 2).
    #[test]
    fn params_are_open_regs() {
        let mut fb = FuncBuilder::new("f", 1);
        let p = fb.param(0);
        let masked = fb.binop(conair_ir::BinOpKind::And, p, 0xff);
        let _v = fb.load_ptr(masked);
        fb.ret();
        let f = fb.finish();
        let (slice, region) = slice_of_last_site(&f);
        assert!(region.all_paths_clean);
        assert!(slice.open_regs.contains(&p));
        // Note `has_shared_read` is false: the pointer itself comes from a
        // parameter, not from shared memory.
        assert!(!slice.has_shared_read);
    }

    /// Branch conditions inside the region join the slice (control
    /// dependence).
    #[test]
    fn branch_conditions_included() {
        let g = GlobalId(0);
        let mut fb = FuncBuilder::new("f", 0);
        let then_bb = fb.new_block();
        let exit = fb.new_block();
        let v = fb.load_global(g);
        let c = fb.cmp(CmpKind::Gt, v, 0);
        fb.branch(c, then_bb, exit);
        fb.switch_to(then_bb);
        let k = fb.copy(1);
        fb.assert(k, "const cond");
        fb.jump(exit);
        fb.switch_to(exit);
        fb.ret();
        let f = fb.finish();
        let ctx = FuncCtx::new(&f);
        let site = InstPos::new(BlockId(1), 1);
        let region = find_reexec_points(&f, &ctx, site, RegionPolicy::Compensated);
        let slice = slice_in_region(&f, &ctx, &region, site);
        // Even though the assert condition is a constant-copy, the branch
        // condition's shared read is on the slice.
        assert!(slice.has_shared_read);
    }

    /// A load from a stack slot written outside the region stops tracking:
    /// the value is not a shared read and yields no open reg beyond itself.
    #[test]
    fn local_reload_stops_tracking() {
        let mut fb = FuncBuilder::new("f", 0);
        let slot: LocalId = fb.local();
        fb.store_local(slot, 3); // destroying
        let v = fb.load_local(slot);
        let c = fb.cmp(CmpKind::Ne, v, 0);
        fb.assert(c, "v");
        fb.ret();
        let f = fb.finish();
        let (slice, _) = slice_of_last_site(&f);
        assert!(!slice.has_shared_read);
        assert!(slice.open_regs.is_empty(), "{:?}", slice.open_regs);
    }
}
