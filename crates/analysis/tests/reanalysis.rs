//! Cross-cutting analysis behaviors: re-analysis of hardened modules,
//! deadlock-site inter-procedural promotion, and plan stability.

use conair_analysis::{analyze, AnalysisConfig, RegionPolicy};
use conair_ir::{CmpKind, FailureKind, FuncBuilder, Inst, ModuleBuilder, Operand};
use conair_transform::harden;

/// Hardened modules can be re-analyzed: guards and timed locks are
/// classified like the instructions they replaced, so site counts match.
#[test]
fn hardened_module_reanalyzes_consistently() {
    let mut mb = ModuleBuilder::new("re");
    let g = mb.global("g", 1);
    let l0 = mb.lock("outer");
    let l1 = mb.lock("inner");
    let mut fb = FuncBuilder::new("main", 0);
    let v = fb.load_global(g);
    let c = fb.cmp(CmpKind::Gt, v, 0);
    fb.assert(c, "positive");
    let p = fb.load_global(g);
    let _ = fb.load_ptr(p);
    fb.lock(l0);
    fb.lock(l1);
    fb.unlock(l1);
    fb.unlock(l0);
    fb.output("x", v);
    fb.ret();
    mb.function(fb.finish());
    let module = mb.finish();

    let plan1 = analyze(&module, &AnalysisConfig::survival_defaults());
    let hardened = harden(module, &plan1);
    let plan2 = analyze(&hardened.module, &AnalysisConfig::survival_defaults());

    for kind in FailureKind::ALL {
        let count = |plan: &conair_analysis::HardeningPlan| {
            plan.sites.iter().filter(|s| s.site.kind == kind).count()
        };
        assert_eq!(
            count(&plan1),
            count(&plan2),
            "{kind} site count must survive hardening"
        );
    }
}

/// A deadlock site inside a helper function with a clean path to the
/// entrance and no enclosing acquisition is promoted to the caller, where
/// the enclosing acquisition lives — inter-procedural deadlock recovery.
#[test]
fn deadlock_site_promotes_across_call() {
    let mut mb = ModuleBuilder::new("dl");
    let l0 = mb.lock("outer");
    let l1 = mb.lock("inner");
    let helper = {
        let mut fb = FuncBuilder::new("take_inner", 0);
        fb.lock(l1); // clean path to entrance; no enclosing lock here
        fb.unlock(l1);
        fb.ret();
        mb.function(fb.finish())
    };
    let mut fb = FuncBuilder::new("caller", 0);
    fb.lock(l0); // the enclosing acquisition
    fb.call_void(helper, vec![]);
    fb.unlock(l0);
    fb.ret();
    mb.function(fb.finish());
    let module = mb.finish();

    let plan = analyze(&module, &AnalysisConfig::survival_defaults());
    let inner_site = plan
        .sites
        .iter()
        .find(|s| s.site.kind == FailureKind::Deadlock && s.site.loc.func == helper)
        .expect("the helper acquisition is a site");
    assert_eq!(inner_site.promoted_depth, Some(1));
    assert!(inner_site.is_recoverable());
    // The caller point sits after caller's own lock? No — right after the
    // *call-preceding* destroying op; here the lock is compensable, so the
    // point reaches the caller's entrance.
    let caller = module.func_by_name("caller").unwrap();
    assert!(inner_site.points.iter().all(|p| p.func == caller));

    // Without inter-procedural analysis the site is unrecoverable
    // (Figure 7a) and disappears entirely.
    let mut cfg = AnalysisConfig::survival_defaults();
    cfg.interproc_depth = None;
    let plan2 = analyze(&module, &cfg);
    let inner_site2 = plan2
        .sites
        .iter()
        .find(|s| s.site.kind == FailureKind::Deadlock && s.site.loc.func == helper)
        .unwrap();
    assert!(!inner_site2.is_recoverable());
}

/// Plans are stable under unrelated module growth: appending an isolated
/// function leaves existing sites' verdicts and points unchanged.
#[test]
fn plans_are_local() {
    let build = |extra: bool| {
        let mut mb = ModuleBuilder::new("local");
        let g = mb.global("g", 1);
        let mut fb = FuncBuilder::new("main", 0);
        let v = fb.load_global(g);
        let c = fb.cmp(CmpKind::Gt, v, 0);
        fb.assert(c, "positive");
        fb.ret();
        mb.function(fb.finish());
        if extra {
            let mut fb = FuncBuilder::new("unrelated", 0);
            fb.store_global(g, 9);
            fb.output("y", 1);
            fb.ret();
            mb.function(fb.finish());
        }
        mb.finish()
    };
    let small = analyze(&build(false), &AnalysisConfig::survival_defaults());
    let big = analyze(&build(true), &AnalysisConfig::survival_defaults());
    // The original assert site keeps identical points.
    assert_eq!(small.sites[0].points, big.sites[0].points);
    assert_eq!(small.sites[0].verdict, big.sites[0].verdict);
    assert!(big.sites.len() > small.sites.len());
}

/// The strict policy is a subset of the compensated policy: every strict
/// region instruction is also a compensated region instruction.
#[test]
fn strict_regions_are_subsets_of_compensated() {
    let mut mb = ModuleBuilder::new("sub");
    let g = mb.global("g", 1);
    let l = mb.lock("m");
    let mut fb = FuncBuilder::new("main", 0);
    fb.lock(l);
    let v = fb.load_global(g);
    let c = fb.cmp(CmpKind::Gt, v, 0);
    fb.assert(c, "positive");
    fb.unlock(l);
    fb.ret();
    mb.function(fb.finish());
    let module = mb.finish();

    let plan = |policy| {
        analyze(
            &module,
            &AnalysisConfig {
                policy,
                ..AnalysisConfig::survival_defaults()
            },
        )
    };
    let strict = plan(RegionPolicy::Strict);
    let comp = plan(RegionPolicy::Compensated);
    // Same sites; regions under strict never exceed compensated.
    assert_eq!(strict.sites.len(), comp.sites.len());
    for (s, c) in strict.sites.iter().zip(&comp.sites) {
        assert!(s.region_size <= c.region_size);
    }
}

/// Guards embedded by the transform carry dense, in-range site ids.
#[test]
fn transform_site_ids_are_dense_and_valid() {
    let mut mb = ModuleBuilder::new("ids");
    let g = mb.global("g", 1);
    let mut fb = FuncBuilder::new("main", 0);
    for i in 0..5 {
        let v = fb.load_global(g);
        let c = fb.cmp(CmpKind::Ge, v, 0);
        fb.assert(c, format!("site {i}"));
    }
    fb.ret();
    mb.function(fb.finish());
    let module = mb.finish();
    let plan = analyze(&module, &AnalysisConfig::survival_defaults());
    let hardened = harden(module, &plan);
    for (_, inst) in hardened.module.iter_insts() {
        match inst {
            Inst::FailGuard { site, .. }
            | Inst::PtrGuard { site, .. }
            | Inst::TimedLock { site, .. } => {
                assert!(site.index() < plan.sites.len());
                assert_eq!(
                    hardened.site_kind(*site),
                    plan.sites[site.index()].site.kind
                );
            }
            Inst::Checkpoint { point } => {
                assert!(point.index() < plan.checkpoints.len());
            }
            _ => {}
        }
    }
    // Sanity: an operand-level check that guards kept their conditions.
    let guard_conds: Vec<Operand> = hardened
        .module
        .iter_insts()
        .filter_map(|(_, i)| match i {
            Inst::FailGuard { cond, .. } => Some(*cond),
            _ => None,
        })
        .collect();
    assert_eq!(guard_conds.len(), 5);
}
