//! End-to-end recovery semantics of the interpreter, on hand-hardened
//! programs (no analysis/transform involved — those are tested separately).

use conair_ir::{CmpKind, FuncBuilder, GuardKind, Inst, ModuleBuilder, Operand, PointId, SiteId};
use conair_runtime::{
    run_once, run_scripted, run_trials, Gate, MachineConfig, Program, RunOutcome, ScheduleScript,
};

fn config() -> MachineConfig {
    MachineConfig {
        max_retries: 10_000,
        lock_timeout: 100,
        step_limit: 2_000_000,
        ..MachineConfig::default()
    }
}

/// An order violation: the reader asserts a flag that the writer sets late.
/// The hardened reader has `checkpoint; load; failguard`, so rollback
/// re-reads until the writer gets there.
fn order_violation_program() -> Program {
    let mut mb = ModuleBuilder::new("order");
    let flag = mb.global("flag", 0);

    let mut reader = FuncBuilder::new("reader", 0);
    reader.push(Inst::Checkpoint { point: PointId(0) });
    let v = reader.load_global(flag);
    let c = reader.cmp(CmpKind::Ne, v, 0);
    reader.push(Inst::FailGuard {
        kind: GuardKind::Assert,
        cond: Operand::Reg(c),
        site: SiteId(0),
        msg: "flag must be initialized".into(),
    });
    reader.output("value", v);
    reader.ret();
    mb.function(reader.finish());

    let mut writer = FuncBuilder::new("writer", 0);
    writer.marker("before_init");
    writer.store_global(flag, 7);
    writer.ret();
    mb.function(writer.finish());

    Program::from_entry_names(mb.finish(), &["reader", "writer"])
}

/// Forces the bug: the writer is held at its marker until the reader has
/// attempted (and failed) the guard at least once. The reader has no marker,
/// so we gate on the reader executing enough instructions via the writer's
/// own gate released by a reader-side marker — simplest: hold the writer
/// until the reader finishes... which never happens without the write. So
/// instead, gate the writer on a marker the reader executes *before* its
/// checkpoint.
fn order_violation_forced() -> (Program, ScheduleScript) {
    let mut mb = ModuleBuilder::new("order_forced");
    let flag = mb.global("flag", 0);

    let mut reader = FuncBuilder::new("reader", 0);
    reader.marker("reader_started");
    reader.push(Inst::Checkpoint { point: PointId(0) });
    let v = reader.load_global(flag);
    let c = reader.cmp(CmpKind::Ne, v, 0);
    reader.push(Inst::FailGuard {
        kind: GuardKind::Assert,
        cond: Operand::Reg(c),
        site: SiteId(0),
        msg: "flag must be initialized".into(),
    });
    reader.output("value", v);
    reader.ret();
    mb.function(reader.finish());

    let mut writer = FuncBuilder::new("writer", 0);
    writer.marker("before_init");
    writer.store_global(flag, 7);
    writer.ret();
    mb.function(writer.finish());

    let program = Program::from_entry_names(mb.finish(), &["reader", "writer"]);
    // Hold the writer until the reader has passed `reader_started`; by then
    // the reader races ahead into the guard and must roll back at least
    // once under most schedules.
    let script = ScheduleScript::with_gates(vec![Gate::new(1, "before_init", "reader_started")]);
    (program, script)
}

#[test]
fn order_violation_recovers_under_all_seeds() {
    let (program, script) = order_violation_forced();
    let summary = run_trials(&program, &config(), &script, 0, 200);
    assert!(
        summary.all_completed(),
        "every trial must recover: {summary:?}"
    );
}

#[test]
fn recovered_run_produces_correct_output() {
    let (program, script) = order_violation_forced();
    for seed in 0..50 {
        let r = run_scripted(&program, &config(), &script, seed);
        assert!(r.outcome.is_completed(), "seed {seed}: {:?}", r.outcome);
        assert_eq!(
            r.outputs_for("value"),
            vec![7],
            "recovery must never emit the uninitialized value"
        );
    }
}

#[test]
fn rollbacks_are_counted_and_timed() {
    let (program, script) = order_violation_forced();
    // Find a seed that actually rolls back (reader scheduled first).
    let mut saw_rollback = false;
    for seed in 0..50 {
        let r = run_scripted(&program, &config(), &script, seed);
        if r.stats.rollbacks > 0 {
            saw_rollback = true;
            let rec = &r.stats.site_recovery[&SiteId(0)];
            assert!(rec.retries > 0);
            assert!(rec.first_failure_step.is_some());
            assert!(rec.recovered_step.is_some(), "the guard eventually passed");
            assert!(rec.recovery_steps().unwrap() > 0);
        }
    }
    assert!(saw_rollback, "at least one seed exercises rollback");
}

#[test]
fn unhardened_program_fails() {
    // Same program but with a plain assert and no checkpoint.
    let mut mb = ModuleBuilder::new("orig");
    let flag = mb.global("flag", 0);
    let mut reader = FuncBuilder::new("reader", 0);
    let v = reader.load_global(flag);
    reader.marker("read_done");
    let c = reader.cmp(CmpKind::Ne, v, 0);
    reader.assert(c, "flag must be initialized");
    reader.output("value", v);
    reader.ret();
    mb.function(reader.finish());
    let mut writer = FuncBuilder::new("writer", 0);
    writer.marker("before_init");
    writer.store_global(flag, 7);
    writer.ret();
    mb.function(writer.finish());
    let program = Program::from_entry_names(mb.finish(), &["reader", "writer"]);
    // Hold the write until the stale read has already happened: the
    // assert then fails in every schedule.
    let script = ScheduleScript::with_gates(vec![Gate::new(1, "before_init", "read_done")]);

    for seed in 0..50 {
        let r = run_scripted(&program, &config(), &script, seed);
        match &r.outcome {
            RunOutcome::Failed(f) => {
                assert_eq!(f.kind, conair_ir::FailureKind::AssertionViolation);
            }
            other => panic!("seed {seed}: expected failure, got {other:?}"),
        }
    }
}

#[test]
fn retry_exhaustion_reports_original_failure() {
    // A guard that can never pass: flag is never written.
    let mut mb = ModuleBuilder::new("never");
    let flag = mb.global("flag", 0);
    let mut reader = FuncBuilder::new("reader", 0);
    reader.push(Inst::Checkpoint { point: PointId(0) });
    let v = reader.load_global(flag);
    let c = reader.cmp(CmpKind::Ne, v, 0);
    reader.push(Inst::FailGuard {
        kind: GuardKind::Assert,
        cond: Operand::Reg(c),
        site: SiteId(0),
        msg: "never".into(),
    });
    reader.ret();
    mb.function(reader.finish());
    let program = Program::from_entry_names(mb.finish(), &["reader"]);
    let mut cfg = config();
    cfg.max_retries = 25;
    let r = run_once(&program, &cfg, 1);
    match &r.outcome {
        RunOutcome::Failed(f) => {
            assert_eq!(f.kind, conair_ir::FailureKind::AssertionViolation);
            assert_eq!(f.site, Some(SiteId(0)));
        }
        other => panic!("expected failure after exhausted retries, got {other:?}"),
    }
    assert_eq!(r.stats.rollbacks, 25);
}

#[test]
fn guard_without_checkpoint_fails_immediately() {
    let mut mb = ModuleBuilder::new("nochk");
    let flag = mb.global("flag", 0);
    let mut reader = FuncBuilder::new("reader", 0);
    let v = reader.load_global(flag);
    let c = reader.cmp(CmpKind::Ne, v, 0);
    reader.push(Inst::FailGuard {
        kind: GuardKind::Assert,
        cond: Operand::Reg(c),
        site: SiteId(0),
        msg: "no checkpoint".into(),
    });
    reader.ret();
    mb.function(reader.finish());
    let program = Program::from_entry_names(mb.finish(), &["reader"]);
    let r = run_once(&program, &config(), 1);
    assert!(matches!(r.outcome, RunOutcome::Failed(_)));
    assert_eq!(r.stats.rollbacks, 0);
}

/// Deadlock: two threads acquire two locks in opposite orders. The hardened
/// second acquisition is timed; its region contains the first acquisition,
/// so rollback (with compensation releasing the first lock) resolves the
/// deadlock.
#[test]
fn deadlock_recovers_via_timed_lock_and_compensation() {
    let mut mb = ModuleBuilder::new("dl");
    let la = mb.lock("A");
    let lb = mb.lock("B");
    let g = mb.global("shared", 0);

    let mut t1 = FuncBuilder::new("t1", 0);
    t1.push(Inst::Checkpoint { point: PointId(0) });
    t1.lock(la);
    t1.marker("t1_has_a");
    t1.marker("t1_gate");
    t1.push(Inst::TimedLock {
        lock: lb,
        site: SiteId(0),
    });
    let v = t1.load_global(g);
    t1.store_global(g, v);
    t1.unlock(lb);
    t1.unlock(la);
    t1.ret();
    mb.function(t1.finish());

    let mut t2 = FuncBuilder::new("t2", 0);
    t2.push(Inst::Checkpoint { point: PointId(1) });
    t2.lock(lb);
    t2.marker("t2_has_b");
    t2.marker("t2_gate");
    t2.push(Inst::TimedLock {
        lock: la,
        site: SiteId(1),
    });
    t2.unlock(la);
    t2.unlock(lb);
    t2.ret();
    mb.function(t2.finish());

    let program = Program::from_entry_names(mb.finish(), &["t1", "t2"]);
    // Force the deadlock: each thread announces its first acquisition with
    // one marker, then waits at a second (gate) marker until the other has
    // announced — so both hold one lock before either requests the second.
    let script = ScheduleScript::with_gates(vec![
        Gate::new(0, "t1_gate", "t2_has_b"),
        Gate::new(1, "t2_gate", "t1_has_a"),
    ]);
    let summary = run_trials(&program, &config(), &script, 100, 100);
    assert!(
        summary.all_completed(),
        "deadlock must be recovered in every trial: {summary:?}"
    );
    assert!(summary.mean_retries > 0.0, "recovery actually happened");
}

/// Pointer-guard recovery: dereference of a pointer initialized late.
#[test]
fn ptr_guard_recovers_null_dereference() {
    let mut mb = ModuleBuilder::new("seg");
    let gptr = mb.global("gptr", 0); // NULL until writer publishes
    let data = mb.global_array("data", 2, 5);

    let mut reader = FuncBuilder::new("reader", 0);
    reader.marker("reader_started");
    reader.push(Inst::Checkpoint { point: PointId(0) });
    let p = reader.load_global(gptr);
    reader.push(Inst::PtrGuard {
        ptr: Operand::Reg(p),
        site: SiteId(0),
    });
    let v = reader.load_ptr(p);
    reader.output("deref", v);
    reader.ret();
    mb.function(reader.finish());

    let mut writer = FuncBuilder::new("writer", 0);
    writer.marker("before_publish");
    let addr = writer.addr_of_global(data);
    writer.store_global(gptr, addr);
    writer.ret();
    mb.function(writer.finish());

    let program = Program::from_entry_names(mb.finish(), &["reader", "writer"]);
    let script = ScheduleScript::with_gates(vec![Gate::new(1, "before_publish", "reader_started")]);
    for seed in 0..50 {
        let r = run_scripted(&program, &config(), &script, seed);
        assert!(r.outcome.is_completed(), "seed {seed}: {:?}", r.outcome);
        assert_eq!(r.outputs_for("deref"), vec![5]);
    }
}

/// Compensation frees heap blocks allocated in the rolled-back region: no
/// leak accumulates across thousands of retries.
#[test]
fn compensation_frees_region_allocations() {
    let mut mb = ModuleBuilder::new("alloc");
    let flag = mb.global("flag", 0);
    let sink = mb.global("sink", 0);

    let mut reader = FuncBuilder::new("reader", 0);
    reader.marker("reader_started");
    reader.push(Inst::Checkpoint { point: PointId(0) });
    let block = reader.alloc(4); // allocated inside the region
    let v = reader.load_global(flag);
    let c = reader.cmp(CmpKind::Ne, v, 0);
    reader.push(Inst::FailGuard {
        kind: GuardKind::Assert,
        cond: Operand::Reg(c),
        site: SiteId(0),
        msg: "flag".into(),
    });
    // Block survives on success: publish it.
    reader.store_global(sink, block);
    reader.ret();
    mb.function(reader.finish());

    let mut writer = FuncBuilder::new("writer", 0);
    writer.marker("before_init");
    // Let the reader spin for a while before releasing.
    writer.store_global(flag, 1);
    writer.ret();
    mb.function(writer.finish());

    let program = Program::from_entry_names(mb.finish(), &["reader", "writer"]);
    let script = ScheduleScript::with_gates(vec![Gate::new(1, "before_init", "reader_started")]);
    let r = run_scripted(&program, &config(), &script, 3);
    assert!(r.outcome.is_completed());
    // Each retry allocated a block and compensation freed it; only the
    // final (successful) allocation survives. total_allocated counts all,
    // but the machine is dropped — instead verify indirectly: the run
    // completed without the allocator address racing away unboundedly is
    // not observable here, so check retries happened at all.
    if r.stats.rollbacks == 0 {
        // Scheduling may have let the writer run first; force at least one
        // seed with rollbacks.
        let r2 = run_scripted(
            &program,
            &config(),
            &ScheduleScript::with_gates(vec![Gate::new(1, "before_init", "reader_started")]),
            11,
        );
        assert!(r2.outcome.is_completed());
    }
}

#[test]
fn determinism_same_seed_same_result() {
    let (program, script) = order_violation_forced();
    let a = run_scripted(&program, &config(), &script, 42);
    let b = run_scripted(&program, &config(), &script, 42);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.stats.steps, b.stats.steps);
    assert_eq!(a.stats.rollbacks, b.stats.rollbacks);
}

#[test]
fn plain_lock_deadlock_hangs() {
    let mut mb = ModuleBuilder::new("hang");
    let la = mb.lock("A");
    let lb = mb.lock("B");
    let mut t1 = FuncBuilder::new("t1", 0);
    t1.lock(la);
    t1.marker("t1_has_a");
    t1.marker("t1_gate");
    t1.lock(lb);
    t1.unlock(lb);
    t1.unlock(la);
    t1.ret();
    mb.function(t1.finish());
    let mut t2 = FuncBuilder::new("t2", 0);
    t2.lock(lb);
    t2.marker("t2_has_b");
    t2.marker("t2_gate");
    t2.lock(la);
    t2.unlock(la);
    t2.unlock(lb);
    t2.ret();
    mb.function(t2.finish());
    let program = Program::from_entry_names(mb.finish(), &["t1", "t2"]);
    let script = ScheduleScript::with_gates(vec![
        Gate::new(0, "t1_gate", "t2_has_b"),
        Gate::new(1, "t2_gate", "t1_has_a"),
    ]);
    let r = run_scripted(&program, &config(), &script, 5);
    assert!(
        matches!(
            r.outcome,
            RunOutcome::Hang {
                blocked_on_locks: 2
            }
        ),
        "unhardened circular wait hangs: {:?}",
        r.outcome
    );
}

/// The register image is restored by rollback, stack slots are not — the
/// soundness boundary the analysis relies on (Figure 3).
#[test]
fn rollback_restores_registers_not_stack_slots() {
    let mut mb = ModuleBuilder::new("soundness");
    let flag = mb.global("flag", 0);

    let mut f = FuncBuilder::new("main", 0);
    f.marker("started");
    let slot = f.local();
    f.store_local(slot, 0);
    // NOTE: checkpoint deliberately placed *after* the stack-slot write but
    // the region below (wrongly) contains another stack write — this is a
    // mis-hardened program demonstrating why StoreLocal must terminate
    // regions.
    f.push(Inst::Checkpoint { point: PointId(0) });
    let cur = f.load_local(slot);
    let nxt = f.add(cur, 1);
    f.store_local(slot, nxt); // not undone by rollback!
    let v = f.load_global(flag);
    let c = f.cmp(CmpKind::Ne, v, 0);
    f.push(Inst::FailGuard {
        kind: GuardKind::Assert,
        cond: Operand::Reg(c),
        site: SiteId(0),
        msg: "flag".into(),
    });
    let fin = f.load_local(slot);
    f.output("slot", fin);
    f.ret();
    mb.function(f.finish());

    let mut writer = FuncBuilder::new("writer", 0);
    writer.marker("w");
    writer.store_global(flag, 1);
    writer.ret();
    mb.function(writer.finish());

    let program = Program::from_entry_names(mb.finish(), &["main", "writer"]);
    let script = ScheduleScript::with_gates(vec![Gate::new(1, "w", "started")]);
    // Find a seed with retries: the slot then exceeds 1 — observable
    // semantic corruption from reexecuting a non-idempotent region.
    let mut corrupted = false;
    for seed in 0..100 {
        let r = run_scripted(&program, &config(), &script, seed);
        if r.stats.rollbacks > 0 {
            let out = r.outputs_for("slot");
            assert_eq!(out.len(), 1);
            if out[0] > 1 {
                corrupted = true;
                break;
            }
        }
    }
    assert!(
        corrupted,
        "reexecuting a stack-slot write must corrupt state — \
         this is exactly why the analysis excludes them from regions"
    );
}

/// A hang's wait-for graph diagnoses the circular wait.
#[test]
fn hang_reports_wait_cycle() {
    use conair_runtime::find_wait_cycle;
    let mut mb = ModuleBuilder::new("diag");
    let la = mb.lock("A");
    let lb = mb.lock("B");
    let mut t1 = FuncBuilder::new("t1", 0);
    t1.lock(la);
    t1.marker("d1_has_a");
    t1.marker("d1_gate");
    t1.lock(lb);
    t1.unlock(lb);
    t1.unlock(la);
    t1.ret();
    mb.function(t1.finish());
    let mut t2 = FuncBuilder::new("t2", 0);
    t2.lock(lb);
    t2.marker("d2_has_b");
    t2.marker("d2_gate");
    t2.lock(la);
    t2.unlock(la);
    t2.unlock(lb);
    t2.ret();
    mb.function(t2.finish());
    let program = Program::from_entry_names(mb.finish(), &["t1", "t2"]);
    let script = ScheduleScript::with_gates(vec![
        Gate::new(0, "d1_gate", "d2_has_b"),
        Gate::new(1, "d2_gate", "d1_has_a"),
    ]);
    let r = run_scripted(&program, &config(), &script, 9);
    assert!(matches!(r.outcome, RunOutcome::Hang { .. }));
    assert_eq!(r.stats.wait_edges.len(), 2);
    let cycle = find_wait_cycle(&r.stats.wait_edges).expect("circular wait found");
    assert_eq!(cycle.threads.len(), 2);
    assert!(cycle.to_string().contains("waits on"));
}

/// Even without bug forcing, the hand-hardened order-violation program
/// completes under every seed (either the write wins the race, or the
/// guard rolls back until it does).
#[test]
fn unforced_order_violation_always_recovers() {
    let program = order_violation_program();
    let summary = run_trials(&program, &config(), &ScheduleScript::none(), 0, 100);
    assert!(summary.all_completed(), "{summary:?}");
}
