//! Runtime edge cases: step limits, backoff livelock avoidance, harness
//! summaries and overhead measurement.

use conair_ir::{CmpKind, FuncBuilder, Inst, ModuleBuilder, Operand, PointId, SiteId};
use conair_runtime::{
    measure_overhead, run_once, run_trials, MachineConfig, Program, RoundRobin, RunOutcome,
    ScheduleScript, Scheduler, SeededRandom,
};

fn infinite_loop_program() -> Program {
    let mut mb = ModuleBuilder::new("spin");
    let mut fb = FuncBuilder::new("main", 0);
    let head = fb.new_block();
    fb.jump(head);
    fb.switch_to(head);
    fb.nop();
    fb.jump(head);
    mb.function(fb.finish());
    Program::from_entry_names(mb.finish(), &["main"])
}

#[test]
fn step_limit_terminates_runaway_programs() {
    let cfg = MachineConfig {
        step_limit: 10_000,
        ..MachineConfig::default()
    };
    let r = run_once(&infinite_loop_program(), &cfg, 0);
    assert_eq!(r.outcome, RunOutcome::StepLimit);
    assert!(r.stats.steps <= 10_000);
}

/// Symmetric deadlock recovery could livelock (both threads roll back and
/// retry in lockstep); the randomized backoff breaks the symmetry
/// (paper Section 3.3). Verified over many seeds with a tight step limit.
#[test]
fn deadlock_recovery_avoids_livelock() {
    let mut mb = ModuleBuilder::new("sym");
    let la = mb.lock("A");
    let lb = mb.lock("B");
    let build = |name: &str, first: conair_ir::LockId, second: conair_ir::LockId, site: u32| {
        let mut fb = FuncBuilder::new(name, 0);
        fb.push(Inst::Checkpoint {
            point: PointId(site),
        });
        fb.lock(first);
        fb.push(Inst::TimedLock {
            lock: second,
            site: SiteId(site),
        });
        fb.unlock(second);
        fb.unlock(first);
        fb.ret();
        fb.finish()
    };
    mb.function(build("t1", la, lb, 0));
    mb.function(build("t2", lb, la, 1));
    let program = Program::from_entry_names(mb.finish(), &["t1", "t2"]);

    // Round-robin is the adversarial scheduler here: perfectly symmetric.
    let cfg = MachineConfig {
        lock_timeout: 50,
        step_limit: 400_000,
        ..MachineConfig::default()
    };
    let mut sched = RoundRobin::new();
    let r = conair_runtime::run_with(&program, &cfg, &ScheduleScript::none(), &mut sched);
    assert!(
        r.outcome.is_completed(),
        "random backoff must break recovery livelock: {:?}",
        r.outcome
    );
}

#[test]
fn trial_summary_classifies_outcomes() {
    // A program that always fails.
    let mut mb = ModuleBuilder::new("fail");
    let mut fb = FuncBuilder::new("main", 0);
    let c = fb.copy(0i64);
    fb.assert(c, "always");
    fb.ret();
    mb.function(fb.finish());
    let program = Program::from_entry_names(mb.finish(), &["main"]);
    let summary = run_trials(
        &program,
        &MachineConfig::default(),
        &ScheduleScript::none(),
        0,
        7,
    );
    assert_eq!(summary.trials, 7);
    assert_eq!(summary.failed, 7);
    assert_eq!(summary.completed, 0);
    assert!(!summary.all_completed());
    assert!(summary.mean_insts > 0.0);
}

#[test]
fn overhead_report_accounts_checkpoints() {
    // Original: compute loop. Hardened: the same plus one checkpoint and a
    // guard per iteration — measurable, deterministic overhead.
    let build = |hardened: bool| {
        let mut mb = ModuleBuilder::new("oh");
        let g = mb.global("g", 1);
        let mut fb = FuncBuilder::new("main", 0);
        fb.counted_loop(100, |b, _| {
            if hardened {
                b.push(Inst::Checkpoint { point: PointId(0) });
            }
            let v = b.load_global(g);
            let c = b.cmp(CmpKind::Ge, v, 0);
            if hardened {
                b.push(Inst::FailGuard {
                    kind: conair_ir::GuardKind::Assert,
                    cond: Operand::Reg(c),
                    site: SiteId(0),
                    msg: "ge".into(),
                });
            } else {
                b.assert(c, "ge");
            }
        });
        fb.ret();
        mb.function(fb.finish());
        Program::from_entry_names(mb.finish(), &["main"])
    };
    let original = build(false);
    let hardened = build(true);
    let report = measure_overhead(&original, &hardened, &MachineConfig::default(), 0, 3);
    assert!(report.dynamic_points >= 100.0);
    assert!(report.inst_overhead > 0.0, "checkpoints cost instructions");
    assert!(report.inst_overhead < 0.5, "but not half the program");
    assert!(report.hardened_insts > report.base_insts);
}

#[test]
fn schedulers_have_names_and_respect_eligibility() {
    let mut rr = RoundRobin::new();
    let mut sr = SeededRandom::new(1);
    assert_eq!(rr.name(), "round-robin");
    assert_eq!(sr.name(), "seeded-random");
    let eligible = [conair_runtime::ThreadId(5)];
    let ctx = conair_runtime::SchedContext::simple(&eligible, 0);
    assert_eq!(rr.pick(&ctx).index(), 5);
    let ctx = conair_runtime::SchedContext::simple(&eligible, 1);
    assert_eq!(sr.pick(&ctx).index(), 5);
}

#[test]
fn outputs_preserve_emission_order_within_thread() {
    let mut mb = ModuleBuilder::new("ord");
    let mut fb = FuncBuilder::new("main", 0);
    for i in 0..5 {
        fb.output("seq", i as i64);
    }
    fb.ret();
    mb.function(fb.finish());
    let program = Program::from_entry_names(mb.finish(), &["main"]);
    let r = run_once(&program, &MachineConfig::default(), 0);
    assert_eq!(r.outputs_for("seq"), vec![0, 1, 2, 3, 4]);
}

#[test]
fn interprocedural_rollback_pops_frames_correctly() {
    // checkpoint in caller; failing guard in callee; rollback must resume
    // in the caller with the callee frame gone, and the retried call must
    // succeed once the writer lands.
    let mut mb = ModuleBuilder::new("xframe");
    let flag = mb.global("flag", 0);
    let callee = {
        let mut fb = FuncBuilder::new("check", 1);
        let p = fb.param(0);
        let c = fb.cmp(CmpKind::Ne, p, 0);
        fb.push(Inst::FailGuard {
            kind: conair_ir::GuardKind::Assert,
            cond: Operand::Reg(c),
            site: SiteId(0),
            msg: "param set".into(),
        });
        fb.ret_value(p);
        mb.function(fb.finish())
    };
    let mut fb = FuncBuilder::new("main", 0);
    fb.marker("main_started");
    fb.push(Inst::Checkpoint { point: PointId(0) });
    let v = fb.load_global(flag);
    let r = fb.call(callee, vec![Operand::Reg(v)]);
    fb.output("result", r);
    fb.ret();
    mb.function(fb.finish());
    let mut writer = FuncBuilder::new("writer", 0);
    writer.marker("w");
    writer.store_global(flag, 11);
    writer.ret();
    mb.function(writer.finish());
    let program = Program::from_entry_names(mb.finish(), &["main", "writer"]);
    let script =
        ScheduleScript::with_gates(vec![conair_runtime::Gate::new(1, "w", "main_started")]);
    for seed in 0..30 {
        let r = conair_runtime::run_scripted(&program, &MachineConfig::default(), &script, seed);
        assert!(r.outcome.is_completed(), "seed {seed}: {:?}", r.outcome);
        assert_eq!(r.outputs_for("result"), vec![11], "seed {seed}");
    }
}

/// With tracing enabled, a failure record carries the failing thread's
/// recent execution history, bounded by the configured depth.
#[test]
fn failure_records_carry_bounded_traces() {
    let mut mb = ModuleBuilder::new("traced");
    let g = mb.global("g", 0);
    let mut fb = FuncBuilder::new("main", 0);
    fb.counted_loop(20, |b, _| {
        let _ = b.load_global(g);
    });
    let v = fb.load_global(g);
    let c = fb.cmp(CmpKind::Ne, v, 0);
    fb.assert(c, "never set");
    fb.ret();
    mb.function(fb.finish());
    let program = Program::from_entry_names(mb.finish(), &["main"]);
    let cfg = MachineConfig {
        trace_depth: 8,
        ..MachineConfig::default()
    };
    let r = run_once(&program, &cfg, 0);
    match r.outcome {
        RunOutcome::Failed(f) => {
            assert_eq!(f.trace.len(), 8, "trace bounded by depth");
            // Entries are in execution order, ending at the assert.
            let steps: Vec<u64> = f.trace.iter().map(|(s, _)| *s).collect();
            let mut sorted = steps.clone();
            sorted.sort();
            assert_eq!(steps, sorted, "oldest first");
        }
        other => panic!("expected failure, got {other:?}"),
    }

    // Tracing off: empty trace, and no per-step overhead path taken.
    let r = run_once(&program, &MachineConfig::default(), 0);
    match r.outcome {
        RunOutcome::Failed(f) => assert!(f.trace.is_empty()),
        other => panic!("expected failure, got {other:?}"),
    }
}
