//! Random backoff on the deadlock-recovery path (`backoff_max` /
//! `backoff_seed`): rollback alone cannot resolve a symmetric deadlock —
//! two threads in lockstep time out, roll back, reacquire and deadlock
//! again, forever. The randomized pause after each deadlock rollback is
//! what breaks the symmetry (paper Section 4.1's anti-livelock measure).

use conair_ir::{FuncBuilder, Inst, ModuleBuilder, PointId, SiteId};
use conair_runtime::{
    find_wait_cycle, run_scripted, run_with, Gate, MachineConfig, Program, RoundRobin, RunOutcome,
    RunResult, ScheduleScript,
};

/// Two threads acquire locks A and B in opposite orders; both second
/// acquisitions are timed and covered by a checkpoint, so each timeout
/// rolls back (compensation releasing the first lock) and retries.
fn symmetric_deadlock() -> (Program, ScheduleScript) {
    let mut mb = ModuleBuilder::new("sym_dl");
    let la = mb.lock("A");
    let lb = mb.lock("B");

    let mut t1 = FuncBuilder::new("t1", 0);
    t1.push(Inst::Checkpoint { point: PointId(0) });
    t1.lock(la);
    t1.marker("t1_has_a");
    t1.marker("t1_gate");
    t1.push(Inst::TimedLock {
        lock: lb,
        site: SiteId(0),
    });
    t1.unlock(lb);
    t1.unlock(la);
    t1.ret();
    mb.function(t1.finish());

    let mut t2 = FuncBuilder::new("t2", 0);
    t2.push(Inst::Checkpoint { point: PointId(1) });
    t2.lock(lb);
    t2.marker("t2_has_b");
    t2.marker("t2_gate");
    t2.push(Inst::TimedLock {
        lock: la,
        site: SiteId(1),
    });
    t2.unlock(la);
    t2.unlock(lb);
    t2.ret();
    mb.function(t2.finish());

    let program = Program::from_entry_names(mb.finish(), &["t1", "t2"]);
    // Both threads hold their first lock before either requests the second.
    let script = ScheduleScript::with_gates(vec![
        Gate::new(0, "t1_gate", "t2_has_b"),
        Gate::new(1, "t2_gate", "t1_has_a"),
    ]);
    (program, script)
}

fn config(backoff_max: u64, backoff_seed: u64) -> MachineConfig {
    MachineConfig {
        max_retries: 50,
        lock_timeout: 100,
        step_limit: 500_000,
        backoff_max,
        backoff_seed,
        ..MachineConfig::default()
    }
}

/// Round-robin keeps the two threads in perfect lockstep, the worst case
/// for recovery livelock.
fn run_round_robin(program: &Program, script: &ScheduleScript, cfg: &MachineConfig) -> RunResult {
    let mut rr = RoundRobin::new();
    run_with(program, cfg, script, &mut rr)
}

#[test]
fn zero_backoff_livelocks_in_lockstep() {
    let (program, script) = symmetric_deadlock();
    let r = run_round_robin(&program, &script, &config(0, 7));
    // Without backoff the symmetric retries stay synchronized: every
    // attempt deadlocks again until the retry budget exhausts.
    match &r.outcome {
        RunOutcome::Failed(f) => {
            assert_eq!(f.kind, conair_ir::FailureKind::Deadlock, "{f:?}");
            assert!(f.site.is_some(), "failure names its timed-lock site");
        }
        other => panic!("expected exhausted deadlock retries, got {other:?}"),
    }
    assert!(
        r.stats.rollbacks >= 10,
        "livelock means many fruitless rollbacks, saw {}",
        r.stats.rollbacks
    );
}

#[test]
fn random_backoff_breaks_the_livelock() {
    let (program, script) = symmetric_deadlock();
    let r = run_round_robin(&program, &script, &config(24, 7));
    assert!(
        r.outcome.is_completed(),
        "backoff desynchronizes the retries: {:?}",
        r.outcome
    );
    assert!(r.stats.rollbacks >= 1, "recovery actually ran");
    // Several backoff seeds all avoid the livelock (the pause only has to
    // differ between the two threads' draws, which it does w.h.p.).
    for seed in [1, 2, 0xDEAD] {
        let r = run_round_robin(&program, &script, &config(24, seed));
        assert!(
            r.outcome.is_completed(),
            "backoff seed {seed} still livelocked: {:?}",
            r.outcome
        );
    }
}

#[test]
fn backoff_is_deterministic_per_seed() {
    let (program, script) = symmetric_deadlock();
    let cfg = config(24, 42);
    let a = run_round_robin(&program, &script, &cfg);
    let b = run_round_robin(&program, &script, &cfg);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.stats.steps, b.stats.steps);
    assert_eq!(a.stats.rollbacks, b.stats.rollbacks);
    assert_eq!(a.metrics, b.metrics);
    // The seeded-random scheduler is equally repeatable end to end.
    let a = run_scripted(&program, &cfg, &script, 9);
    let b = run_scripted(&program, &cfg, &script, 9);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.stats.steps, b.stats.steps);
}

#[test]
fn exhausted_retries_snapshot_the_wait_cycle() {
    // No checkpoints: the first timeout exhausts recovery immediately, and
    // the failure must carry a diagnosable wait-for graph.
    let mut mb = ModuleBuilder::new("dl_exhaust");
    let la = mb.lock("A");
    let lb = mb.lock("B");

    let mut t1 = FuncBuilder::new("t1", 0);
    t1.lock(la);
    t1.marker("t1_has_a");
    t1.marker("t1_gate");
    t1.push(Inst::TimedLock {
        lock: lb,
        site: SiteId(0),
    });
    t1.unlock(lb);
    t1.unlock(la);
    t1.ret();
    mb.function(t1.finish());

    let mut t2 = FuncBuilder::new("t2", 0);
    t2.lock(lb);
    t2.marker("t2_has_b");
    t2.marker("t2_gate");
    t2.lock(la);
    t2.unlock(la);
    t2.unlock(lb);
    t2.ret();
    mb.function(t2.finish());

    let program = Program::from_entry_names(mb.finish(), &["t1", "t2"]);
    let script = ScheduleScript::with_gates(vec![
        Gate::new(0, "t1_gate", "t2_has_b"),
        Gate::new(1, "t2_gate", "t1_has_a"),
    ]);
    let r = run_scripted(&program, &config(24, 1), &script, 3);

    let RunOutcome::Failed(f) = &r.outcome else {
        panic!("expected exhausted deadlock, got {:?}", r.outcome);
    };
    assert_eq!(f.kind, conair_ir::FailureKind::Deadlock);
    assert_eq!(f.site, Some(SiteId(0)), "t1's timed lock is the only site");

    // The snapshot holds both halves of the circular wait, so the cycle
    // is recoverable from the failure alone (what the CLI prints).
    assert!(r.stats.wait_edges.len() >= 2, "{:?}", r.stats.wait_edges);
    let cycle = find_wait_cycle(&r.stats.wait_edges).expect("cycle diagnosable");
    assert_eq!(cycle.threads.len(), 2);
    assert!(cycle.locks.contains(&la));
    assert!(cycle.locks.contains(&lb));
}
