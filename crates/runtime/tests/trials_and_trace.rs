//! TrialSummary aggregation edge cases and the trace/stats event-count
//! identities on a real hardened run.

use conair_ir::{CmpKind, FuncBuilder, GuardKind, Inst, ModuleBuilder, Operand, PointId, SiteId};
use conair_runtime::{
    run_traced, run_trials, EventBuffer, MachineConfig, Program, RunOutcome, ScheduleScript,
    TraceEvent,
};

fn config() -> MachineConfig {
    MachineConfig {
        max_retries: 10_000,
        lock_timeout: 100,
        step_limit: 2_000_000,
        ..MachineConfig::default()
    }
}

/// A hand-hardened order violation: the reader asserts a flag the writer
/// sets late; `checkpoint; load; failguard` makes the reader spin-recover.
fn order_violation_program() -> Program {
    let mut mb = ModuleBuilder::new("order");
    let flag = mb.global("flag", 0);

    let mut reader = FuncBuilder::new("reader", 0);
    reader.push(Inst::Checkpoint { point: PointId(0) });
    let v = reader.load_global(flag);
    let c = reader.cmp(CmpKind::Ne, v, 0);
    reader.push(Inst::FailGuard {
        kind: GuardKind::Assert,
        cond: Operand::Reg(c),
        site: SiteId(0),
        msg: "flag must be initialized".into(),
    });
    reader.output("value", v);
    reader.ret();
    mb.function(reader.finish());

    let mut writer = FuncBuilder::new("writer", 0);
    writer.store_global(flag, 7);
    writer.ret();
    mb.function(writer.finish());

    Program::from_entry_names(mb.finish(), &["reader", "writer"])
}

/// A single thread that re-acquires a lock it already holds: hangs under
/// every seed.
fn self_deadlock_program() -> Program {
    let mut mb = ModuleBuilder::new("selfdl");
    let l = mb.lock("m");
    let mut f = FuncBuilder::new("main", 0);
    f.lock(l);
    f.lock(l);
    f.unlock(l);
    f.ret();
    mb.function(f.finish());
    Program::from_entry_names(mb.finish(), &["main"])
}

/// A trivial program that completes with no failure sites at all.
fn clean_program() -> Program {
    let mut mb = ModuleBuilder::new("clean");
    let g = mb.global("g", 1);
    let mut f = FuncBuilder::new("main", 0);
    let v = f.load_global(g);
    f.output("v", v);
    f.ret();
    mb.function(f.finish());
    Program::from_entry_names(mb.finish(), &["main"])
}

#[test]
fn zero_trials_yield_empty_summary() {
    let p = clean_program();
    let s = run_trials(&p, &config(), &ScheduleScript::none(), 0, 0);
    assert_eq!(s.trials, 0);
    assert_eq!(s.completed, 0);
    assert_eq!(s.failed + s.hung + s.step_limited, 0);
    assert_eq!(s.mean_insts, 0.0);
    assert_eq!(s.mean_retries, 0.0);
    assert_eq!(s.max_recovery_steps, None);
    // Vacuously true: zero trials, zero non-completions.
    assert!(s.all_completed());
    // Empty histograms have no percentiles.
    assert_eq!(s.retries_percentile(0.5), None);
    assert_eq!(s.recovery_percentile(0.99), None);
}

#[test]
fn all_hang_trials_are_tallied_as_hung() {
    let p = self_deadlock_program();
    let cfg = MachineConfig {
        step_limit: 10_000,
        ..MachineConfig::default()
    };
    let s = run_trials(&p, &cfg, &ScheduleScript::none(), 0, 5);
    assert_eq!(s.trials, 5);
    assert_eq!(s.hung, 5, "self-deadlock must hang under every seed");
    assert_eq!(s.completed, 0);
    assert!(!s.all_completed());
    // No recovery machinery fired: retries were zero in every trial.
    assert_eq!(s.retries_percentile(1.0), Some(0));
    assert_eq!(s.recovery_percentile(0.5), None);
    assert_eq!(s.max_recovery_steps, None);
}

#[test]
fn completed_trials_without_recoveries_report_none() {
    let p = clean_program();
    let s = run_trials(&p, &config(), &ScheduleScript::none(), 0, 3);
    assert_eq!(s.completed, 3);
    assert!(s.all_completed());
    assert_eq!(s.max_recovery_steps, None);
    assert_eq!(s.recovery_percentile(0.5), None);
    // Every trial contributed a zero-retry sample.
    assert_eq!(s.retries_percentile(0.5), Some(0));
    assert_eq!(s.retries_hist.count(), 3);
}

#[test]
fn trials_with_recoveries_fill_both_histograms() {
    let p = order_violation_program();
    // Force the reader to run first so at least some trials roll back.
    let s = run_trials(&p, &config(), &ScheduleScript::none(), 0, 20);
    assert_eq!(s.completed, 20, "hardened order violation always recovers");
    assert_eq!(s.retries_hist.count(), 20);
    assert!(s.retries_percentile(1.0).is_some());
    if s.mean_retries > 0.0 {
        // At least one trial rolled back, so a latency was pooled.
        assert!(s.recovery_percentile(1.0).is_some());
        assert!(s.max_recovery_steps.is_some());
    }
}

#[test]
fn trace_event_counts_match_run_stats() {
    let p = order_violation_program();
    let buffer = EventBuffer::new();
    let r = run_traced(
        &p,
        &config(),
        &ScheduleScript::none(),
        3,
        Box::new(buffer.clone()),
    );
    assert!(matches!(r.outcome, RunOutcome::Completed));
    let events = buffer.take();
    let count = |kind: &str| events.iter().filter(|e| e.kind_name() == kind).count() as u64;

    assert_eq!(count("checkpoint"), r.stats.checkpoints);
    assert_eq!(count("rollback"), r.stats.rollbacks);
    assert_eq!(count("failure-detected"), r.stats.total_retries());
    let recovered = r
        .stats
        .site_recovery
        .values()
        .filter(|s| s.recovered_step.is_some())
        .count() as u64;
    assert_eq!(count("recovery-completed"), recovered);

    // Lifecycle bookends: one start per thread, exactly one run-ended.
    assert_eq!(count("thread-started"), 2);
    assert_eq!(count("run-ended"), 1);
    assert!(matches!(events.last(), Some(TraceEvent::RunEnded { .. })));

    // The machine-side metrics agree with a pure replay of the events.
    let replayed = conair_runtime::summarize_events(&events);
    assert_eq!(
        replayed.checkpoint_executions,
        r.metrics.checkpoint_executions
    );
    assert_eq!(
        replayed.checkpoint_reexecutions,
        r.metrics.checkpoint_reexecutions
    );
    assert_eq!(replayed.per_site_retries, r.metrics.per_site_retries);
}
