//! Run outcomes, output logs and statistics.

use std::collections::HashMap;
use std::time::Duration;

use conair_ir::{FailureKind, Loc, SiteId};

use crate::deadlock::WaitEdge;
use crate::locks::ThreadId;

/// One value emitted by an `output` instruction.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OutputRecord {
    /// The emitting thread.
    pub thread: ThreadId,
    /// The output label (format-string analog).
    pub label: String,
    /// The value.
    pub value: i64,
}

/// A failure that terminated the run.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FailureRecord {
    /// The failure type.
    pub kind: FailureKind,
    /// The hardened site, when the failure occurred at one.
    pub site: Option<SiteId>,
    /// The failing thread.
    pub thread: ThreadId,
    /// The step at which the run terminated.
    pub step: u64,
    /// Human-readable message.
    pub msg: String,
    /// The failing thread's most recently executed locations, oldest
    /// first (empty unless [`crate::MachineConfig::trace_depth`] > 0).
    pub trace: Vec<(u64, Loc)>,
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RunOutcome {
    /// Every thread finished.
    Completed,
    /// A failure terminated the program (assertion/oracle violation,
    /// segmentation fault, or deadlock declared after exhausted retries).
    Failed(FailureRecord),
    /// No thread can make progress (circular lock wait, or a schedule
    /// script that can never release) — the hang symptom.
    Hang {
        /// Threads blocked on locks at the hang.
        blocked_on_locks: usize,
    },
    /// The configured step limit elapsed (livelock guard).
    StepLimit,
}

impl RunOutcome {
    /// Whether the run completed normally.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }

    /// A short stable label for the outcome class, as used in trace
    /// [`crate::TraceEvent::RunEnded`] events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            RunOutcome::Completed => "completed",
            RunOutcome::Failed(_) => "failed",
            RunOutcome::Hang { .. } => "hang",
            RunOutcome::StepLimit => "step-limit",
        }
    }

    /// Whether the run failed or hung.
    pub fn is_failure(&self) -> bool {
        !self.is_completed()
    }
}

/// Recovery timing for one site that failed at least once during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SiteRecovery {
    /// Rollbacks attempted for this site (the paper's "# Retries").
    pub retries: u64,
    /// Step of the first failure detection.
    pub first_failure_step: Option<u64>,
    /// Step at which the site finally passed (recovery complete).
    pub recovered_step: Option<u64>,
}

impl SiteRecovery {
    /// Steps spent recovering, when recovery completed.
    pub fn recovery_steps(&self) -> Option<u64> {
        Some(self.recovered_step? - self.first_failure_step?)
    }
}

/// Aggregate statistics of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Scheduler steps taken (= instructions executed, plus timeout
    /// processing steps).
    pub steps: u64,
    /// Instructions executed, summed over threads.
    pub insts: u64,
    /// Dynamic reexecution points (checkpoint executions).
    pub checkpoints: u64,
    /// Total rollbacks.
    pub rollbacks: u64,
    /// Auxiliary bookkeeping work performed by the recovery runtime:
    /// compensation records plus undo-log records. Counted separately from
    /// `insts` so the Figure-4 ablation can charge the buffered-writes
    /// policy for its logging.
    pub aux_work: u64,
    /// Per-site recovery bookkeeping.
    pub site_recovery: HashMap<SiteId, SiteRecovery>,
    /// How many times each hardened site's check executed (guard
    /// evaluations, pointer sanity checks, timed-lock acquisitions) —
    /// the signal for ConSeq-style well-tested-site pruning (paper
    /// Section 3.4).
    pub site_checks: HashMap<SiteId, u64>,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Portion of `wall` spent capturing machine snapshots (zero outside
    /// [`crate::Machine::run_captured`]) — lets the explorer's
    /// self-profiler attribute capture cost separately from
    /// interpretation.
    pub snapshot_wall: Duration,
    /// The wait-for graph at the moment of a hang (empty otherwise):
    /// feed to [`crate::find_wait_cycle`] to diagnose the circular wait.
    pub wait_edges: Vec<WaitEdge>,
}

impl RunStats {
    /// Total retries over all sites.
    pub fn total_retries(&self) -> u64 {
        self.site_recovery.values().map(|r| r.retries).sum()
    }

    /// The longest recovery (steps) observed, if any site recovered.
    pub fn max_recovery_steps(&self) -> Option<u64> {
        self.site_recovery
            .values()
            .filter_map(SiteRecovery::recovery_steps)
            .max()
    }
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// The output log, in emission order.
    pub outputs: Vec<OutputRecord>,
    /// Statistics.
    pub stats: RunStats,
    /// Distributional metrics (always collected; see
    /// [`crate::RunMetrics`]).
    pub metrics: crate::RunMetrics,
    /// The recorded schedule, when
    /// [`crate::MachineConfig::record_decisions`] was set — replay it with
    /// [`crate::run_replay`] to reproduce this run bit-identically.
    pub decisions: Option<crate::DecisionTrace>,
}

impl RunResult {
    /// The emitted values for a given label, in order.
    pub fn outputs_for(&self, label: &str) -> Vec<i64> {
        self.outputs
            .iter()
            .filter(|o| o.label == label)
            .map(|o| o.value)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(RunOutcome::Completed.is_completed());
        assert!(!RunOutcome::Completed.is_failure());
        assert!(RunOutcome::Hang {
            blocked_on_locks: 2
        }
        .is_failure());
        assert!(RunOutcome::StepLimit.is_failure());
        let failed = RunOutcome::Failed(FailureRecord {
            kind: FailureKind::SegFault,
            site: None,
            thread: ThreadId(0),
            step: 10,
            msg: "boom".into(),
            trace: Vec::new(),
        });
        assert!(failed.is_failure());
    }

    #[test]
    fn recovery_steps_need_both_ends() {
        let mut r = SiteRecovery::default();
        assert_eq!(r.recovery_steps(), None);
        r.first_failure_step = Some(10);
        assert_eq!(r.recovery_steps(), None);
        r.recovered_step = Some(250);
        assert_eq!(r.recovery_steps(), Some(240));
    }

    #[test]
    fn stats_aggregation() {
        let mut stats = RunStats::default();
        stats.site_recovery.insert(
            SiteId(0),
            SiteRecovery {
                retries: 3,
                first_failure_step: Some(5),
                recovered_step: Some(50),
            },
        );
        stats.site_recovery.insert(
            SiteId(1),
            SiteRecovery {
                retries: 7,
                first_failure_step: Some(1),
                recovered_step: Some(10),
            },
        );
        assert_eq!(stats.total_retries(), 10);
        assert_eq!(stats.max_recovery_steps(), Some(45));
    }

    #[test]
    fn outputs_filtered_by_label() {
        let result = RunResult {
            outcome: RunOutcome::Completed,
            outputs: vec![
                OutputRecord {
                    thread: ThreadId(0),
                    label: "a".into(),
                    value: 1,
                },
                OutputRecord {
                    thread: ThreadId(1),
                    label: "b".into(),
                    value: 2,
                },
                OutputRecord {
                    thread: ThreadId(0),
                    label: "a".into(),
                    value: 3,
                },
            ],
            stats: RunStats::default(),
            metrics: crate::RunMetrics::default(),
            decisions: None,
        };
        assert_eq!(result.outputs_for("a"), vec![1, 3]);
        assert_eq!(result.outputs_for("b"), vec![2]);
        assert!(result.outputs_for("c").is_empty());
    }
}
