//! Shared memory: globals and heap.
//!
//! All memory is word-addressed: one address = one 64-bit word. The address
//! space is segmented so that the paper's pointer sanity check (Figure 5c:
//! `l_ptr > LowerBound`, default 10,000) is meaningful:
//!
//! * `0 .. LOWER_BOUND`           — never mapped (NULL page analog);
//! * `GLOBAL_BASE ..`             — global variables, laid out in
//!   declaration order;
//! * `HEAP_BASE ..`               — heap blocks from a bump allocator.
//!
//! Dereferencing an unmapped or freed address is a memory fault — the
//! segmentation-fault analog.

use std::collections::BTreeMap;

use conair_ir::{GlobalId, Module};

/// Default pointer lower bound (paper Figure 5c: 10,000).
pub const DEFAULT_LOWER_BOUND: i64 = 10_000;

/// First address of the global segment.
pub const GLOBAL_BASE: i64 = 0x1_0000;

/// First address of the heap segment.
pub const HEAP_BASE: i64 = 0x100_0000;

/// A memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting address.
    pub addr: i64,
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid memory access at {:#x}", self.addr)
    }
}

impl std::error::Error for MemFault {}

#[derive(Debug, Clone)]
struct HeapBlock {
    data: Vec<i64>,
}

/// The shared-memory state of one program run.
#[derive(Debug, Clone)]
pub struct Memory {
    /// Flattened global words.
    globals: Vec<i64>,
    /// Word offset of each global in `globals`.
    offsets: Vec<usize>,
    /// Live heap blocks keyed by base address.
    heap: BTreeMap<i64, HeapBlock>,
    next_heap: i64,
    /// Words allocated over the lifetime of the run (diagnostics).
    pub total_allocated: usize,
}

impl Memory {
    /// Initializes memory for `module`'s globals.
    pub fn new(module: &Module) -> Self {
        let mut globals = Vec::new();
        let mut offsets = Vec::with_capacity(module.globals.len());
        for g in &module.globals {
            offsets.push(globals.len());
            globals.extend(std::iter::repeat_n(g.init, g.words));
        }
        Self {
            globals,
            offsets,
            heap: BTreeMap::new(),
            next_heap: HEAP_BASE,
            total_allocated: 0,
        }
    }

    /// The address of word 0 of `global`.
    ///
    /// # Panics
    ///
    /// Panics if `global` is out of range (validated modules never do this).
    pub fn global_addr(&self, global: GlobalId) -> i64 {
        GLOBAL_BASE + self.offsets[global.index()] as i64
    }

    /// Reads global word 0 directly (the common scalar-global fast path).
    pub fn read_global(&self, global: GlobalId) -> i64 {
        self.globals[self.offsets[global.index()]]
    }

    /// Writes global word 0 directly.
    pub fn write_global(&mut self, global: GlobalId, value: i64) {
        let off = self.offsets[global.index()];
        self.globals[off] = value;
    }

    /// Allocates `words` heap words, returning the block base address.
    pub fn alloc(&mut self, words: usize) -> i64 {
        let words = words.max(1);
        let base = self.next_heap;
        // Pad between blocks so off-by-one pointers fault rather than
        // silently touching a neighbor.
        self.next_heap += words as i64 + 1;
        self.heap.insert(
            base,
            HeapBlock {
                data: vec![0; words],
            },
        );
        self.total_allocated += words;
        base
    }

    /// Frees the block based at `base`.
    ///
    /// # Errors
    ///
    /// Faults if `base` is not the base of a live block (double free or
    /// wild free).
    pub fn free(&mut self, base: i64) -> Result<(), MemFault> {
        self.heap
            .remove(&base)
            .map(|_| ())
            .ok_or(MemFault { addr: base })
    }

    /// Whether `addr` is a currently-valid (mapped) address.
    pub fn is_valid(&self, addr: i64) -> bool {
        self.resolve(addr).is_some()
    }

    /// Reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Faults on unmapped addresses.
    pub fn read(&self, addr: i64) -> Result<i64, MemFault> {
        match self.resolve(addr) {
            Some(Slot::Global(off)) => Ok(self.globals[off]),
            Some(Slot::Heap(base, idx)) => Ok(self.heap[&base].data[idx]),
            None => Err(MemFault { addr }),
        }
    }

    /// Writes the word at `addr`.
    ///
    /// # Errors
    ///
    /// Faults on unmapped addresses.
    pub fn write(&mut self, addr: i64, value: i64) -> Result<(), MemFault> {
        match self.resolve(addr) {
            Some(Slot::Global(off)) => {
                self.globals[off] = value;
                Ok(())
            }
            Some(Slot::Heap(base, idx)) => {
                self.heap.get_mut(&base).expect("resolved block").data[idx] = value;
                Ok(())
            }
            None => Err(MemFault { addr }),
        }
    }

    /// Number of live heap blocks (leak checks in tests).
    pub fn live_blocks(&self) -> usize {
        self.heap.len()
    }

    fn resolve(&self, addr: i64) -> Option<Slot> {
        if (GLOBAL_BASE..GLOBAL_BASE + self.globals.len() as i64).contains(&addr) {
            return Some(Slot::Global((addr - GLOBAL_BASE) as usize));
        }
        if addr >= HEAP_BASE {
            if let Some((&base, block)) = self.heap.range(..=addr).next_back() {
                let idx = (addr - base) as usize;
                if idx < block.data.len() {
                    return Some(Slot::Heap(base, idx));
                }
            }
        }
        None
    }
}

enum Slot {
    Global(usize),
    Heap(i64, usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::ModuleBuilder;

    fn memory() -> (Memory, GlobalId, GlobalId) {
        let mut mb = ModuleBuilder::new("m");
        let a = mb.global("a", 7);
        let b = mb.global_array("b", 4, -1);
        let m = mb.finish();
        (Memory::new(&m), a, b)
    }

    #[test]
    fn globals_initialized_and_addressable() {
        let (mem, a, b) = memory();
        assert_eq!(mem.read_global(a), 7);
        assert_eq!(mem.read(mem.global_addr(a)).unwrap(), 7);
        // Array words are contiguous.
        for i in 0..4 {
            assert_eq!(mem.read(mem.global_addr(b) + i).unwrap(), -1);
        }
        // One past the end faults.
        assert!(mem.read(mem.global_addr(b) + 4).is_err());
    }

    #[test]
    fn global_writes_via_both_paths_agree() {
        let (mut mem, a, _) = memory();
        mem.write_global(a, 42);
        assert_eq!(mem.read(mem.global_addr(a)).unwrap(), 42);
        mem.write(mem.global_addr(a), 43).unwrap();
        assert_eq!(mem.read_global(a), 43);
    }

    #[test]
    fn heap_alloc_read_write_free() {
        let (mut mem, _, _) = memory();
        let p = mem.alloc(3);
        assert!(p >= HEAP_BASE);
        mem.write(p + 2, 99).unwrap();
        assert_eq!(mem.read(p + 2).unwrap(), 99);
        assert_eq!(mem.read(p).unwrap(), 0, "heap zero-initialized");
        assert!(mem.read(p + 3).is_err(), "past-the-end faults");
        assert_eq!(mem.live_blocks(), 1);
        mem.free(p).unwrap();
        assert_eq!(mem.live_blocks(), 0);
        assert!(mem.read(p).is_err(), "use-after-free faults");
        assert!(mem.free(p).is_err(), "double free faults");
    }

    #[test]
    fn null_and_low_addresses_fault() {
        let (mem, _, _) = memory();
        assert!(mem.read(0).is_err());
        assert!(mem.read(DEFAULT_LOWER_BOUND - 1).is_err());
        assert!(!mem.is_valid(0));
    }

    #[test]
    fn blocks_are_padded() {
        let (mut mem, _, _) = memory();
        let p1 = mem.alloc(2);
        let p2 = mem.alloc(2);
        assert!(p2 > p1 + 2, "gap between blocks");
        assert!(mem.read(p1 + 2).is_err(), "gap word is unmapped");
    }

    #[test]
    fn zero_word_alloc_rounds_up() {
        let (mut mem, _, _) = memory();
        let p = mem.alloc(0);
        assert!(mem.read(p).is_ok());
    }
}
