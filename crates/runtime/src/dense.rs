//! Dense program lowering: a flat-indexed instruction table built once
//! before execution, so the step loop fetches `&Inst` by `u32` program
//! counter with zero per-step cloning.
//!
//! The numbering is [`conair_ir::FlatLayout`] — the same flat index the
//! analyses key their region bitsets by — so a resume position in a
//! checkpoint is a plain `u32` and block entry of `BlockId(0)` is always
//! pc `0`.

use conair_ir::{BlockId, FlatLayout, FuncId, Inst, InstPos, Loc, Module};

/// One function's pre-lowered instruction table.
pub struct FuncLayout<'p> {
    insts: Vec<&'p Inst>,
    layout: FlatLayout,
    num_regs: usize,
    num_locals: usize,
}

impl<'p> FuncLayout<'p> {
    fn new(func: &'p conair_ir::Function) -> Self {
        let layout = FlatLayout::new(func);
        let insts = func.blocks.iter().flat_map(|b| b.insts.iter()).collect();
        Self {
            insts,
            layout,
            num_regs: func.num_regs,
            num_locals: func.num_locals,
        }
    }

    /// The instruction at `pc`. The returned reference borrows the
    /// *program* (lifetime `'p`), not this table — which is what lets the
    /// interpreter hold it across a `&mut self` dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn inst(&self, pc: u32) -> &'p Inst {
        self.insts[pc as usize]
    }

    /// The instruction at `pc`, or `None` past the function's end.
    #[inline]
    pub fn get(&self, pc: u32) -> Option<&'p Inst> {
        self.insts.get(pc as usize).copied()
    }

    /// Flat pc of a block's first instruction.
    #[inline]
    pub fn block_start(&self, block: BlockId) -> u32 {
        self.layout.block_start(block)
    }

    /// The `(block, inst)` position of a pc (trace/diagnostics only).
    #[inline]
    pub fn pos(&self, pc: u32) -> InstPos {
        self.layout.pos(pc)
    }

    /// A source location for diagnostics.
    pub fn loc(&self, func: FuncId, pc: u32) -> Loc {
        let pos = self.pos(pc);
        Loc::new(func, pos.block, pos.inst)
    }

    /// The shared flat numbering.
    pub fn layout(&self) -> &FlatLayout {
        &self.layout
    }

    /// Total instructions.
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Register-file width of the function's frames (pre-lowered so the
    /// call path never consults the module).
    #[inline]
    pub fn num_regs(&self) -> usize {
        self.num_regs
    }

    /// Stack-slot count of the function's frames.
    #[inline]
    pub fn num_locals(&self) -> usize {
        self.num_locals
    }
}

/// The pre-lowered instruction tables of every function in a module.
pub struct DenseProgram<'p> {
    funcs: Vec<FuncLayout<'p>>,
}

impl<'p> DenseProgram<'p> {
    /// Lowers `module` (one pass, before execution starts).
    pub fn new(module: &'p Module) -> Self {
        Self {
            funcs: module.functions.iter().map(FuncLayout::new).collect(),
        }
    }

    /// One function's table.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    #[inline]
    pub fn func(&self, func: FuncId) -> &FuncLayout<'p> {
        &self.funcs[func.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{FuncBuilder, ModuleBuilder};

    #[test]
    fn lowering_matches_block_walk() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = FuncBuilder::new("main", 0);
        let c = fb.copy(1);
        let (then_bb, else_bb) = (fb.new_block(), fb.new_block());
        fb.branch(c, then_bb, else_bb);
        fb.switch_to(then_bb);
        fb.ret();
        fb.switch_to(else_bb);
        fb.ret();
        mb.function(fb.finish());
        let module = mb.finish();

        let dense = DenseProgram::new(&module);
        let table = dense.func(FuncId(0));
        let func = module.func(FuncId(0));
        let mut flat = 0u32;
        for (bid, block) in func.iter_blocks() {
            assert_eq!(table.block_start(bid), flat);
            for (i, inst) in block.insts.iter().enumerate() {
                assert!(
                    std::ptr::eq(table.inst(flat), inst),
                    "table entry {flat} aliases the module instruction"
                );
                assert_eq!(table.pos(flat), InstPos::new(bid, i));
                flat += 1;
            }
        }
        assert_eq!(table.num_insts() as u32, flat);
        assert_eq!(table.get(flat), None);
    }
}
