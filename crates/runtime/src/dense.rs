//! Dense program lowering: a flat-indexed instruction table built once
//! before execution, so the step loop fetches `&Inst` by `u32` program
//! counter with zero per-step cloning.
//!
//! The numbering is [`conair_ir::FlatLayout`] — the same flat index the
//! analyses key their region bitsets by — so a resume position in a
//! checkpoint is a plain `u32` and block entry of `BlockId(0)` is always
//! pc `0`.
//!
//! Lowering also interns marker names module-wide to dense `u32` ids (so
//! marker hit counts are a `Vec` index instead of a string-keyed map probe)
//! and pre-classifies every instruction into its scheduling
//! [`PointKind`](crate::PointKind), so per-step gate checks and decision
//! masking never inspect instruction payloads.

use conair_ir::{
    BlockId, DOp, DecodedFunc, DecodedInst, FlatLayout, FuncId, Inst, InstPos, Loc, Module,
};

use crate::sched::PointKind;

/// Sentinel in the per-pc marker-id table for "not a marker".
const NOT_A_MARKER: u32 = u32::MAX;

/// One function's pre-lowered instruction table.
pub struct FuncLayout<'p> {
    insts: Vec<&'p Inst>,
    layout: FlatLayout,
    /// Interned marker id per pc (`NOT_A_MARKER` elsewhere).
    marker_ids: Vec<u32>,
    /// Scheduling-point kind per pc. `Return` is classified
    /// [`PointKind::ThreadExit`]; the machine downgrades it to `Local`
    /// when the thread has caller frames below.
    kinds: Vec<PointKind>,
    /// Pre-decoded fixed-size instruction streams (plain + fused), with
    /// marker ids already patched to this module's interning.
    decoded: DecodedFunc<'p>,
    num_regs: usize,
    num_locals: usize,
}

impl<'p> FuncLayout<'p> {
    fn new(func: &'p conair_ir::Function, interner: &mut MarkerInterner<'p>) -> Self {
        let layout = FlatLayout::new(func);
        let insts: Vec<&'p Inst> = func.blocks.iter().flat_map(|b| b.insts.iter()).collect();
        let marker_ids: Vec<u32> = insts
            .iter()
            .map(|i| match i {
                Inst::Marker { name } => interner.intern(name.as_str()),
                _ => NOT_A_MARKER,
            })
            .collect();
        let kinds = insts.iter().map(|i| PointKind::of_inst(i)).collect();
        let mut decoded = DecodedFunc::decode(func, &layout);
        for (pc, &id) in marker_ids.iter().enumerate() {
            if id != NOT_A_MARKER {
                decoded.patch_marker_id(pc as u32, id);
            }
        }
        Self {
            insts,
            layout,
            marker_ids,
            kinds,
            decoded,
            num_regs: func.num_regs,
            num_locals: func.num_locals,
        }
    }

    /// The instruction at `pc`. The returned reference borrows the
    /// *program* (lifetime `'p`), not this table — which is what lets the
    /// interpreter hold it across a `&mut self` dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn inst(&self, pc: u32) -> &'p Inst {
        self.insts[pc as usize]
    }

    /// The instruction at `pc`, or `None` past the function's end.
    #[inline]
    pub fn get(&self, pc: u32) -> Option<&'p Inst> {
        self.insts.get(pc as usize).copied()
    }

    /// The interned marker id at `pc`, when the instruction there is a
    /// marker (out-of-range pcs included).
    #[inline]
    pub fn marker_id(&self, pc: u32) -> Option<u32> {
        match self.marker_ids.get(pc as usize) {
            Some(&id) if id != NOT_A_MARKER => Some(id),
            _ => None,
        }
    }

    /// The scheduling-point kind at `pc` (`Local` past the end).
    #[inline]
    pub fn point_kind(&self, pc: u32) -> PointKind {
        self.kinds
            .get(pc as usize)
            .copied()
            .unwrap_or(PointKind::Local)
    }

    /// The pre-decoded instruction at `pc` (plain stream — one logical
    /// step per entry).
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn decoded(&self, pc: u32) -> DecodedInst {
        self.decoded.code(pc)
    }

    /// The pre-decoded instruction at `pc` from the *fused* stream
    /// (superinstructions on pair heads).
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn decoded_fused(&self, pc: u32) -> DecodedInst {
        self.decoded.fused(pc)
    }

    /// One flattened `Call` argument from the decoded side table.
    #[inline]
    pub fn call_arg(&self, i: u32) -> DOp {
        self.decoded.call_arg(i)
    }

    /// An interned string (label/message) from the decoded side table.
    /// Borrows the program (`'p`), not this table.
    #[inline]
    pub fn str_at(&self, i: u32) -> &'p str {
        self.decoded.str_at(i)
    }

    /// How many instruction pairs the fusion pass collapsed.
    pub fn fused_pairs(&self) -> usize {
        self.decoded.fused_pairs()
    }

    /// Flat pc of a block's first instruction.
    #[inline]
    pub fn block_start(&self, block: BlockId) -> u32 {
        self.layout.block_start(block)
    }

    /// The `(block, inst)` position of a pc (trace/diagnostics only).
    #[inline]
    pub fn pos(&self, pc: u32) -> InstPos {
        self.layout.pos(pc)
    }

    /// A source location for diagnostics.
    pub fn loc(&self, func: FuncId, pc: u32) -> Loc {
        let pos = self.pos(pc);
        Loc::new(func, pos.block, pos.inst)
    }

    /// The shared flat numbering.
    pub fn layout(&self) -> &FlatLayout {
        &self.layout
    }

    /// Total instructions.
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Register-file width of the function's frames (pre-lowered so the
    /// call path never consults the module).
    #[inline]
    pub fn num_regs(&self) -> usize {
        self.num_regs
    }

    /// Stack-slot count of the function's frames.
    #[inline]
    pub fn num_locals(&self) -> usize {
        self.num_locals
    }
}

/// Module-wide marker interner: first-seen order over functions in id
/// order, so ids are deterministic for a given module.
#[derive(Default)]
struct MarkerInterner<'p> {
    names: Vec<&'p str>,
}

impl<'p> MarkerInterner<'p> {
    fn intern(&mut self, name: &'p str) -> u32 {
        if let Some(i) = self.names.iter().position(|n| *n == name) {
            return i as u32;
        }
        self.names.push(name);
        (self.names.len() - 1) as u32
    }
}

/// The pre-lowered instruction tables of every function in a module.
pub struct DenseProgram<'p> {
    funcs: Vec<FuncLayout<'p>>,
    /// Interned marker names, indexed by marker id.
    markers: Vec<&'p str>,
}

impl<'p> DenseProgram<'p> {
    /// Lowers `module` (one pass, before execution starts).
    pub fn new(module: &'p Module) -> Self {
        let mut interner = MarkerInterner::default();
        let funcs = module
            .functions
            .iter()
            .map(|f| FuncLayout::new(f, &mut interner))
            .collect();
        Self {
            funcs,
            markers: interner.names,
        }
    }

    /// One function's table.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    #[inline]
    pub fn func(&self, func: FuncId) -> &FuncLayout<'p> {
        &self.funcs[func.index()]
    }

    /// Distinct marker names in the module.
    pub fn num_markers(&self) -> usize {
        self.markers.len()
    }

    /// The interned id of a marker name, when the module contains it.
    /// Linear scan — this is a compile-time (script/gate resolution)
    /// lookup, never on the execution path.
    pub fn marker_id(&self, name: &str) -> Option<u32> {
        self.markers
            .iter()
            .position(|n| *n == name)
            .map(|i| i as u32)
    }

    /// The marker name for an interned id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn marker_name(&self, id: u32) -> &'p str {
        self.markers[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{FuncBuilder, ModuleBuilder};

    #[test]
    fn lowering_matches_block_walk() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = FuncBuilder::new("main", 0);
        let c = fb.copy(1);
        let (then_bb, else_bb) = (fb.new_block(), fb.new_block());
        fb.branch(c, then_bb, else_bb);
        fb.switch_to(then_bb);
        fb.ret();
        fb.switch_to(else_bb);
        fb.ret();
        mb.function(fb.finish());
        let module = mb.finish();

        let dense = DenseProgram::new(&module);
        let table = dense.func(FuncId(0));
        let func = module.func(FuncId(0));
        let mut flat = 0u32;
        for (bid, block) in func.iter_blocks() {
            assert_eq!(table.block_start(bid), flat);
            for (i, inst) in block.insts.iter().enumerate() {
                assert!(
                    std::ptr::eq(table.inst(flat), inst),
                    "table entry {flat} aliases the module instruction"
                );
                assert_eq!(table.pos(flat), InstPos::new(bid, i));
                flat += 1;
            }
        }
        assert_eq!(table.num_insts() as u32, flat);
        assert_eq!(table.get(flat), None);
    }

    #[test]
    fn markers_are_interned_module_wide() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = FuncBuilder::new("a", 0);
        fb.marker("shared");
        fb.marker("only_a");
        fb.ret();
        mb.function(fb.finish());
        let mut fb = FuncBuilder::new("b", 0);
        fb.marker("only_b");
        fb.marker("shared");
        fb.ret();
        mb.function(fb.finish());
        let module = mb.finish();

        let dense = DenseProgram::new(&module);
        assert_eq!(dense.num_markers(), 3);
        let shared = dense.marker_id("shared").unwrap();
        assert_eq!(dense.marker_name(shared), "shared");
        assert_eq!(dense.marker_id("missing"), None);
        // The same name gets the same id in both functions.
        assert_eq!(dense.func(FuncId(0)).marker_id(0), Some(shared));
        assert_eq!(dense.func(FuncId(1)).marker_id(1), Some(shared));
        // Non-marker pcs and out-of-range pcs report no marker.
        assert_eq!(dense.func(FuncId(0)).marker_id(2), None);
        assert_eq!(dense.func(FuncId(0)).marker_id(999), None);
    }

    #[test]
    fn decoded_markers_carry_module_interned_ids() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = FuncBuilder::new("a", 0);
        fb.marker("shared");
        fb.ret();
        mb.function(fb.finish());
        let mut fb = FuncBuilder::new("b", 0);
        fb.marker("other");
        fb.marker("shared");
        fb.ret();
        mb.function(fb.finish());
        let module = mb.finish();
        let dense = DenseProgram::new(&module);
        let shared = dense.marker_id("shared").unwrap();
        let other = dense.marker_id("other").unwrap();
        assert_eq!(
            dense.func(FuncId(0)).decoded(0),
            DecodedInst::Marker { id: shared }
        );
        assert_eq!(
            dense.func(FuncId(1)).decoded(0),
            DecodedInst::Marker { id: other }
        );
        assert_eq!(
            dense.func(FuncId(1)).decoded_fused(1),
            DecodedInst::Marker { id: shared }
        );
    }

    #[test]
    fn point_kinds_are_prelowered() {
        use crate::sched::PointKind;
        let mut mb = ModuleBuilder::new("t");
        let lk = mb.lock("l");
        let mut fb = FuncBuilder::new("f", 0);
        fb.lock(lk);
        fb.marker("m");
        fb.unlock(lk);
        fb.ret();
        mb.function(fb.finish());
        let module = mb.finish();
        let dense = DenseProgram::new(&module);
        let table = dense.func(FuncId(0));
        assert_eq!(table.point_kind(0), PointKind::LockAcquire);
        assert_eq!(table.point_kind(1), PointKind::Marker);
        assert_eq!(table.point_kind(2), PointKind::LockRelease);
        assert_eq!(table.point_kind(3), PointKind::ThreadExit);
        assert_eq!(table.point_kind(999), PointKind::Local, "past the end");
    }
}
