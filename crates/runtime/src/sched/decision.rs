//! Recorded scheduler decisions — the serialized schedule.
//!
//! A [`DecisionTrace`] is the compact log of every pick the machine asked
//! its scheduler for during one run: one `u32` thread index per decision
//! point, plus the [`PointMask`](super::PointMask) the decisions were made
//! under. Because the interpreter is deterministic, *(program, config,
//! decision trace)* fully determines a run — replaying the trace with a
//! [`ReplayScheduler`](super::ReplayScheduler) under the same machine
//! config reproduces the original `RunOutcome` bit-identically.

use serde::{Deserialize, Serialize};

use super::point::PointMask;
use crate::locks::ThreadId;

/// One run's scheduling decisions, in decision order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionTrace {
    /// The strategy that produced the schedule (informational).
    pub scheduler: String,
    /// The seed the strategy ran with (informational; replay does not
    /// need it).
    pub seed: u64,
    /// [`PointMask`] bits the decisions were recorded under. Replay *must*
    /// use the same mask, or decision points would not line up.
    pub mask: u8,
    /// The chosen thread index at each decision point.
    pub decisions: Vec<u32>,
}

impl DecisionTrace {
    /// An empty trace for a strategy.
    pub fn new(scheduler: impl Into<String>, seed: u64, mask: PointMask) -> Self {
        Self {
            scheduler: scheduler.into(),
            seed,
            mask: mask.bits(),
            decisions: Vec::new(),
        }
    }

    /// Appends a decision.
    #[inline]
    pub fn push(&mut self, tid: ThreadId) {
        self.decisions.push(tid.index() as u32);
    }

    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether no decision was recorded.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// The decision mask.
    pub fn point_mask(&self) -> PointMask {
        PointMask::from_bits(self.mask)
    }

    /// A stable 64-bit FNV-1a hash over the *schedule identity* — the mask
    /// and the decision sequence, deliberately excluding the strategy name
    /// and seed so the same interleaving found by different strategies
    /// hashes equal.
    pub fn hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        };
        eat(self.mask);
        for d in &self.decisions {
            for b in d.to_le_bytes() {
                eat(b);
            }
        }
        h
    }

    /// Serializes to pretty JSON (the `--out` / `--replay` file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("decision trace serializes")
    }

    /// Parses the JSON form.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid decision trace: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let mut t = DecisionTrace::new("pct", 7, PointMask::SYNC);
        t.push(ThreadId(0));
        t.push(ThreadId(2));
        t.push(ThreadId(1));
        let back = DecisionTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.len(), 3);
        assert_eq!(back.point_mask(), PointMask::SYNC);
    }

    #[test]
    fn hash_ignores_provenance_but_not_schedule() {
        let mut a = DecisionTrace::new("pct", 1, PointMask::SYNC);
        let mut b = DecisionTrace::new("bounded", 99, PointMask::SYNC);
        for d in [0, 1, 1, 0] {
            a.push(ThreadId(d));
            b.push(ThreadId(d));
        }
        assert_eq!(a.hash(), b.hash(), "provenance excluded");
        b.push(ThreadId(0));
        assert_ne!(a.hash(), b.hash(), "decisions included");
        let c = DecisionTrace::new("pct", 1, PointMask::ALL);
        let d = DecisionTrace::new("pct", 1, PointMask::SYNC);
        assert_ne!(c.hash(), d.hash(), "mask included");
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(DecisionTrace::from_json("not json").is_err());
    }
}
