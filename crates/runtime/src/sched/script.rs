//! Schedule scripts: gate-based bug forcing.
//!
//! A gate holds a thread whenever its next instruction is a given marker,
//! until some other marker has executed a given number of times — the
//! analog of the sleeps the paper injects to force failure-inducing
//! interleavings. Gates are evaluated by the machine before scheduling, so
//! they compose with any scheduler.
//!
//! The string-keyed [`ScheduleScript`] is the authoring surface; at machine
//! construction it is compiled against the module's interned marker ids
//! into a [`CompiledScript`] — a per-thread table keyed by `u32` marker id,
//! so the per-step hold check is integer compares over the holding thread's
//! own gates instead of string compares over every gate.

use crate::dense::DenseProgram;

/// A gate: hold `thread` at `at_marker` until `until_marker` has executed
/// `until_count` times (the sleep-injection analog).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// The held thread (index into the program's thread list).
    pub thread: usize,
    /// Hold while the thread's next instruction is this marker…
    pub at_marker: String,
    /// …until this marker has executed…
    pub until_marker: String,
    /// …this many times.
    pub until_count: u64,
}

impl Gate {
    /// Convenience constructor with `until_count = 1`.
    pub fn new(
        thread: usize,
        at_marker: impl Into<String>,
        until_marker: impl Into<String>,
    ) -> Self {
        Self {
            thread,
            at_marker: at_marker.into(),
            until_marker: until_marker.into(),
            until_count: 1,
        }
    }
}

/// A set of gates forcing one interleaving.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleScript {
    /// The gates, all active simultaneously.
    pub gates: Vec<Gate>,
}

impl ScheduleScript {
    /// The empty script (no forcing).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a script from gates.
    pub fn with_gates(gates: Vec<Gate>) -> Self {
        Self { gates }
    }

    /// Whether `thread`, whose next instruction is the marker named
    /// `next_marker` (if any), is held given current marker counts.
    ///
    /// This is the string-keyed reference semantics; the machine's hot
    /// path uses the [`CompiledScript`] equivalent.
    pub fn is_held(
        &self,
        thread: usize,
        next_marker: Option<&str>,
        marker_count: impl Fn(&str) -> u64,
    ) -> bool {
        let Some(marker) = next_marker else {
            return false;
        };
        self.gates.iter().any(|g| {
            g.thread == thread
                && g.at_marker == marker
                && marker_count(&g.until_marker) < g.until_count
        })
    }

    /// Compiles the script against a lowered program's marker interner:
    /// marker names become `u32` ids and gates are bucketed per thread.
    pub(crate) fn compile(&self, threads: usize, dense: &DenseProgram<'_>) -> CompiledScript {
        let mut by_thread: Vec<Vec<CompiledGate>> = vec![Vec::new(); threads];
        for g in &self.gates {
            if g.thread >= threads || g.until_count == 0 {
                // A gate for a thread that doesn't run, or one already
                // satisfied, never holds anything.
                continue;
            }
            // A gate at a marker the module doesn't contain can never
            // match a thread's next instruction.
            let Some(at) = dense.marker_id(&g.at_marker) else {
                continue;
            };
            // An `until` marker the module doesn't contain keeps its count
            // at zero forever — the gate holds unconditionally.
            let until = dense.marker_id(&g.until_marker);
            by_thread[g.thread].push(CompiledGate {
                at,
                until,
                count: g.until_count,
            });
        }
        let any = by_thread.iter().any(|v| !v.is_empty());
        CompiledScript { by_thread, any }
    }
}

/// One gate, resolved to interned marker ids.
#[derive(Debug, Clone, Copy)]
struct CompiledGate {
    /// Interned id of the gate's `at` marker.
    at: u32,
    /// Interned id of the `until` marker (`None`: the marker does not
    /// exist in the module, so its count is zero forever and the gate
    /// never releases).
    until: Option<u32>,
    /// Release threshold.
    count: u64,
}

/// A [`ScheduleScript`] compiled against a module's marker interner.
#[derive(Debug, Clone, Default)]
pub(crate) struct CompiledScript {
    by_thread: Vec<Vec<CompiledGate>>,
    any: bool,
}

impl CompiledScript {
    /// Whether any compiled gate exists (cheap per-step early-out).
    #[inline]
    pub(crate) fn any(&self) -> bool {
        self.any
    }

    /// Whether any gate could still hold a thread given `counts` (indexed
    /// by marker id). Marker counts only grow during a run, so once this
    /// returns `false` every gate has released for good — the machine
    /// re-evaluates it only when a marker executes, and treats a fully
    /// released script like an empty one on the per-step path.
    pub(crate) fn any_unreleased(&self, counts: &[u64]) -> bool {
        self.by_thread.iter().flatten().any(|g| match g.until {
            Some(u) => counts[u as usize] < g.count,
            None => true,
        })
    }

    /// Whether `thread`, whose next instruction is the marker with interned
    /// id `marker`, is held given `counts` (indexed by marker id).
    #[inline]
    pub(crate) fn is_held(&self, thread: usize, marker: u32, counts: &[u64]) -> bool {
        let Some(gates) = self.by_thread.get(thread) else {
            return false;
        };
        gates.iter().any(|g| {
            g.at == marker
                && match g.until {
                    Some(u) => counts[u as usize] < g.count,
                    None => true,
                }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{FuncBuilder, ModuleBuilder};
    use std::collections::HashMap;

    #[test]
    fn gates_hold_until_marker_count() {
        let script = ScheduleScript::with_gates(vec![Gate::new(1, "init_start", "read_done")]);
        let mut counts: HashMap<&str, u64> = HashMap::new();
        let count = |m: &str| counts.get(m).copied().unwrap_or(0);
        assert!(script.is_held(1, Some("init_start"), count));
        assert!(
            !script.is_held(0, Some("init_start"), count),
            "other thread unaffected"
        );
        assert!(
            !script.is_held(1, Some("other"), count),
            "other marker unaffected"
        );
        assert!(!script.is_held(1, None, count));
        counts.insert("read_done", 1);
        let count = |m: &str| counts.get(m).copied().unwrap_or(0);
        assert!(!script.is_held(1, Some("init_start"), count), "released");
    }

    #[test]
    fn gate_with_higher_count() {
        let mut g = Gate::new(0, "a", "b");
        g.until_count = 3;
        let script = ScheduleScript::with_gates(vec![g]);
        assert!(script.is_held(0, Some("a"), |_| 2));
        assert!(!script.is_held(0, Some("a"), |_| 3));
    }

    fn two_marker_module() -> conair_ir::Module {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = FuncBuilder::new("f", 0);
        fb.marker("a");
        fb.marker("b");
        fb.ret();
        mb.function(fb.finish());
        mb.finish()
    }

    #[test]
    fn compiled_script_matches_reference_semantics() {
        let module = two_marker_module();
        let dense = DenseProgram::new(&module);
        let a = dense.marker_id("a").unwrap();
        let mut g = Gate::new(0, "a", "b");
        g.until_count = 2;
        let script = ScheduleScript::with_gates(vec![g]);
        let compiled = script.compile(2, &dense);
        assert!(compiled.any());

        let b = dense.marker_id("b").unwrap() as usize;
        let mut counts = vec![0u64; 2];
        assert!(compiled.is_held(0, a, &counts));
        assert!(!compiled.is_held(1, a, &counts), "other thread unaffected");
        counts[b] = 1;
        assert!(compiled.is_held(0, a, &counts), "count not reached yet");
        counts[b] = 2;
        assert!(!compiled.is_held(0, a, &counts), "released");
    }

    #[test]
    fn compiled_script_drops_unmatchable_and_keeps_unreleasable_gates() {
        let module = two_marker_module();
        let dense = DenseProgram::new(&module);
        let a = dense.marker_id("a").unwrap();
        let script = ScheduleScript::with_gates(vec![
            Gate::new(0, "no_such_marker", "b"), // can never match: dropped
            Gate::new(1, "a", "no_such_marker"), // can never release: holds
        ]);
        let compiled = script.compile(2, &dense);
        let counts = vec![u64::MAX; 2];
        assert!(!compiled.is_held(0, a, &counts));
        assert!(compiled.is_held(1, a, &counts), "holds forever");
    }

    #[test]
    fn empty_script_compiles_to_inactive() {
        let module = two_marker_module();
        let dense = DenseProgram::new(&module);
        let compiled = ScheduleScript::none().compile(2, &dense);
        assert!(!compiled.any());
    }
}
