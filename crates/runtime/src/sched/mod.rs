//! Scheduling: strategies, schedule scripts, and schedule exploration.
//!
//! The interpreter executes one instruction per step, choosing the thread
//! via a [`Scheduler`]. Determinism is the point: every experiment seeds
//! its scheduler, and every pick the machine asks for can be recorded into
//! a [`DecisionTrace`] and replayed bit-identically later.
//!
//! The subsystem is layered:
//!
//! * [`point`](self) — *scheduling points*. The machine classifies the next
//!   instruction of the running thread into a [`PointKind`] (lock
//!   acquire/release, shared-memory access, marker, thread spawn/exit, or
//!   plain local work) and consults the scheduler only at the kinds the
//!   strategy's [`Scheduler::decision_mask`] selects. A mask of
//!   [`PointMask::ALL`] reproduces the historical pick-every-step behavior
//!   exactly; sync-only masks keep decision logs compact enough to
//!   enumerate.
//! * strategies — [`RoundRobin`] and [`SeededRandom`] (the original
//!   workhorses), [`PctScheduler`] (randomized priorities with `d`
//!   priority-change points), and the [`FrontierScheduler`] primitive the
//!   bounded-preemption explorer branches with.
//! * [`ReplayScheduler`] — re-executes any recorded [`DecisionTrace`];
//!   [`minimize`] — delta-debugs a failing trace down while preserving the
//!   failure; [`explore`] — drives whole schedule-space searches, fanned
//!   across a [`crate::TrialPool`] with index-ordered deterministic merge.
//! * [`ScheduleScript`] *gates* — the analog of the sleeps the paper
//!   injects into buggy code regions to force failure-inducing
//!   interleavings (Section 5). Gates are evaluated by the machine before
//!   scheduling, so they compose with any scheduler. Exploration exists to
//!   find the same interleavings *without* hand-written gates.

mod basic;
mod bounded;
mod decision;
mod explore;
mod minimize;
mod pct;
mod point;
mod replay;
mod script;

pub use basic::{RoundRobin, SeededRandom};
pub use bounded::{Consult, FrontierScheduler};
pub use decision::DecisionTrace;
pub use explore::{
    explore, explore_observed, ExploreConfig, ExploreObserver, ExplorePhases, ExploreReport,
    ExploreStrategy, FoundSchedule,
};
pub use minimize::{minimize, MinimizeReport};
pub use pct::{PctConfig, PctScheduler};
pub use point::{Footprint, PointKind, PointMask};
pub use replay::{run_replay, Divergence, ReplayScheduler};
pub use script::{Gate, ScheduleScript};

pub(crate) use script::CompiledScript;

use crate::locks::ThreadId;

/// Scheduling context handed to a scheduler at each decision point.
#[derive(Debug)]
pub struct SchedContext<'a> {
    /// Threads eligible to run this step (runnable, un-gated, lock
    /// available if blocked on one).
    pub eligible: &'a [ThreadId],
    /// The global step counter.
    pub step: u64,
    /// Total threads in the program (eligible or not).
    pub threads: usize,
    /// The thread that ran last step (`None` before the first pick).
    pub last: Option<ThreadId>,
    /// The [`PointKind`] of the decision point, when the machine computed
    /// one (schedulers with [`PointMask::ALL`] masks are consulted every
    /// step and see `None`).
    pub point: Option<PointKind>,
    /// Per-eligible-thread [`Footprint`]s (aligned with `eligible`), when
    /// the machine computed them — only during decision-recording runs,
    /// where the explorer's independence check consumes them. Empty
    /// otherwise.
    pub footprints: &'a [point::Footprint],
}

impl<'a> SchedContext<'a> {
    /// A context for tests and standalone scheduler use: every thread in
    /// `eligible` exists, nothing ran before, no point kind.
    pub fn simple(eligible: &'a [ThreadId], step: u64) -> Self {
        let threads = eligible.iter().map(|t| t.index() + 1).max().unwrap_or(0);
        Self {
            eligible,
            step,
            threads,
            last: None,
            point: None,
            footprints: &[],
        }
    }
}

/// Picks the next thread to execute.
pub trait Scheduler {
    /// Chooses one of `ctx.eligible` (guaranteed non-empty).
    fn pick(&mut self, ctx: &SchedContext<'_>) -> ThreadId;

    /// A short name for reports.
    fn name(&self) -> &'static str {
        "scheduler"
    }

    /// Which scheduling points this strategy wants to decide at.
    ///
    /// With the default [`PointMask::ALL`] the machine consults the
    /// scheduler before every instruction (the historical behavior).
    /// Narrower masks make the machine continue the previously running
    /// thread silently between masked points — the scheduler is then only
    /// consulted when the running thread reaches a masked point, blocks,
    /// or exits, which is what keeps [`DecisionTrace`]s compact.
    fn decision_mask(&self) -> PointMask {
        PointMask::ALL
    }
}
