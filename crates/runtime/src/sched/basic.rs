//! The original strategies: deterministic round-robin and seeded random.
//!
//! Both keep the default [`PointMask::ALL`](super::PointMask::ALL) mask —
//! they are consulted before every instruction, exactly as before the
//! scheduler layer grew decision masks, so every historical seed still
//! produces the same interleaving.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::{SchedContext, Scheduler};
use crate::locks::ThreadId;

/// Deterministic round-robin.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, ctx: &SchedContext<'_>) -> ThreadId {
        // Rotate over eligible threads by a moving cursor on thread ids, so
        // the choice is stable regardless of how eligibility fluctuates.
        let chosen = ctx
            .eligible
            .iter()
            .copied()
            .find(|t| t.index() >= self.next)
            .unwrap_or(ctx.eligible[0]);
        self.next = chosen.index() + 1;
        if ctx.eligible.iter().all(|t| t.index() < self.next) {
            self.next = 0;
        }
        chosen
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Seeded uniform-random scheduler; the workhorse for overhead and
/// recovery trials (same seed ⇒ same interleaving).
#[derive(Debug)]
pub struct SeededRandom {
    rng: SmallRng,
}

impl SeededRandom {
    /// Creates a random scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for SeededRandom {
    fn pick(&mut self, ctx: &SchedContext<'_>) -> ThreadId {
        ctx.eligible[self.rng.gen_range(0..ctx.eligible.len())]
    }

    fn name(&self) -> &'static str {
        "seeded-random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new();
        let all = [ThreadId(0), ThreadId(1), ThreadId(2)];
        let picks: Vec<usize> = (0..6)
            .map(|s| rr.pick(&SchedContext::simple(&all, s)).index())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_ineligible() {
        let mut rr = RoundRobin::new();
        let some = [ThreadId(0), ThreadId(2)];
        let a = rr.pick(&SchedContext::simple(&some, 0)).index();
        let b = rr.pick(&SchedContext::simple(&some, 1)).index();
        assert_eq!((a, b), (0, 2));
    }

    #[test]
    fn seeded_random_is_deterministic() {
        let all = [ThreadId(0), ThreadId(1), ThreadId(2), ThreadId(3)];
        let run = |seed| {
            let mut s = SeededRandom::new(seed);
            (0..32)
                .map(|step| s.pick(&SchedContext::simple(&all, step)).index())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds diverge");
    }
}
