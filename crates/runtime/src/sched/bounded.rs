//! The branching primitive of bounded-preemption systematic search.
//!
//! A [`FrontierScheduler`] executes a *forced prefix* of decisions, then
//! continues non-preemptively (keep the running thread while it is
//! eligible, else switch to the lowest-id eligible thread), recording every
//! consult — eligible set, chosen thread, previously running thread. The
//! explorer turns those consults into child schedules: at each decision at
//! or past the frontier, every unchosen eligible thread becomes a new
//! prefix, and switching away from a still-eligible running thread costs
//! one unit of *preemption budget* (the CHESS insight: most concurrency
//! bugs need very few preemptions, so bounding them makes the schedule
//! tree small enough to enumerate).

use super::point::{Footprint, PointMask};
use super::{SchedContext, Scheduler};
use crate::locks::ThreadId;

/// One recorded scheduler consult.
#[derive(Debug, Clone)]
pub struct Consult {
    /// Threads that were eligible, in thread-id order.
    pub eligible: Vec<ThreadId>,
    /// Footprints of the eligible threads' next instructions, aligned with
    /// `eligible` (empty when the machine did not compute them).
    pub footprints: Vec<Footprint>,
    /// The thread the scheduler chose.
    pub chosen: ThreadId,
    /// The previously running thread (`None` on the first consult).
    pub last: Option<ThreadId>,
}

impl Consult {
    /// The recorded footprint of `pick`'s next instruction
    /// ([`Footprint::Opaque`] when none was recorded).
    pub fn footprint_for(&self, pick: ThreadId) -> Footprint {
        self.eligible
            .iter()
            .position(|&t| t == pick)
            .and_then(|i| self.footprints.get(i).copied())
            .unwrap_or(Footprint::Opaque)
    }

    /// Whether choosing `pick` here would preempt a still-eligible running
    /// thread.
    pub fn is_preemption_for(&self, pick: ThreadId) -> bool {
        match self.last {
            Some(prev) => prev != pick && self.eligible.contains(&prev),
            None => false,
        }
    }

    /// Whether the recorded choice preempted the running thread.
    pub fn is_preemption(&self) -> bool {
        self.is_preemption_for(self.chosen)
    }
}

/// Forced-prefix + non-preemptive-continuation scheduler.
#[derive(Debug)]
pub struct FrontierScheduler {
    prefix: Vec<u32>,
    mask: PointMask,
    idx: usize,
    consults: Vec<Consult>,
    infeasible: bool,
    picks: u64,
}

impl FrontierScheduler {
    /// A scheduler forcing `prefix` (thread indices, one per decision
    /// point) and continuing non-preemptively past it.
    pub fn new(prefix: Vec<u32>, mask: PointMask) -> Self {
        Self::resume(prefix, 0, mask)
    }

    /// A scheduler resuming a run whose first `start` decisions already
    /// happened (the machine was restored from a snapshot at that depth):
    /// forcing starts at `prefix[start]`, and consults are recorded from
    /// there — the caller accounts for the skipped ones.
    pub fn resume(prefix: Vec<u32>, start: usize, mask: PointMask) -> Self {
        Self {
            prefix,
            mask,
            idx: start,
            consults: Vec::new(),
            infeasible: false,
            picks: 0,
        }
    }

    /// Decisions this scheduler made live (excluding decisions skipped by
    /// resuming from a snapshot) — the registry's per-scheduler decision
    /// count.
    pub fn picks(&self) -> u64 {
        self.picks
    }

    /// The recorded consults, in decision order.
    pub fn consults(&self) -> &[Consult] {
        &self.consults
    }

    /// Consumes the scheduler, returning its consults.
    pub fn into_consults(self) -> Vec<Consult> {
        self.consults
    }

    /// Length of the forced prefix.
    pub fn prefix_len(&self) -> usize {
        self.prefix.len()
    }

    /// Whether a forced decision named an ineligible thread. Never happens
    /// when the prefix came from a prior run of the same program and
    /// config — execution up to the frontier is bit-identical.
    pub fn infeasible(&self) -> bool {
        self.infeasible
    }
}

impl Scheduler for FrontierScheduler {
    fn pick(&mut self, ctx: &SchedContext<'_>) -> ThreadId {
        let forced = self.prefix.get(self.idx).map(|&d| ThreadId(d as usize));
        self.idx += 1;
        let chosen = match forced {
            Some(want) if ctx.eligible.contains(&want) => want,
            other => {
                if other.is_some() {
                    self.infeasible = true;
                }
                match ctx.last {
                    Some(prev) if ctx.eligible.contains(&prev) => prev,
                    _ => ctx.eligible[0],
                }
            }
        };
        self.picks += 1;
        self.consults.push(Consult {
            eligible: ctx.eligible.to_vec(),
            footprints: ctx.footprints.to_vec(),
            chosen,
            last: ctx.last,
        });
        chosen
    }

    fn name(&self) -> &'static str {
        "bounded"
    }

    fn decision_mask(&self) -> PointMask {
        self.mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_prefix_is_nonpreemptive_default() {
        let mut s = FrontierScheduler::new(Vec::new(), PointMask::SYNC);
        let all = [ThreadId(0), ThreadId(1)];
        let mut ctx = SchedContext::simple(&all, 1);
        assert_eq!(s.pick(&ctx), ThreadId(0), "no last: lowest id");
        ctx.last = Some(ThreadId(1));
        assert_eq!(s.pick(&ctx), ThreadId(1), "keeps the running thread");
        let only0 = [ThreadId(0)];
        let mut ctx = SchedContext::simple(&only0, 2);
        ctx.last = Some(ThreadId(1));
        assert_eq!(s.pick(&ctx), ThreadId(0), "last ineligible: lowest id");
        assert!(!s.infeasible());
        assert_eq!(s.consults().len(), 3);
        assert_eq!(s.picks(), 3);
    }

    #[test]
    fn forced_prefix_overrides_default() {
        let mut s = FrontierScheduler::new(vec![1, 0], PointMask::SYNC);
        let all = [ThreadId(0), ThreadId(1)];
        let mut ctx = SchedContext::simple(&all, 1);
        assert_eq!(s.pick(&ctx), ThreadId(1));
        ctx.last = Some(ThreadId(1));
        assert_eq!(s.pick(&ctx), ThreadId(0), "forced preemption");
        assert_eq!(s.pick(&ctx), ThreadId(1), "past prefix: keep running");
        let consults = s.into_consults();
        assert!(!consults[0].is_preemption(), "first pick never preempts");
        assert!(consults[1].is_preemption());
        assert!(!consults[2].is_preemption());
    }

    #[test]
    fn infeasible_forced_decision_falls_back() {
        let mut s = FrontierScheduler::new(vec![7], PointMask::SYNC);
        let all = [ThreadId(0)];
        assert_eq!(s.pick(&SchedContext::simple(&all, 1)), ThreadId(0));
        assert!(s.infeasible());
    }

    #[test]
    fn preemption_cost_of_alternatives() {
        let c = Consult {
            eligible: vec![ThreadId(0), ThreadId(1), ThreadId(2)],
            footprints: Vec::new(),
            chosen: ThreadId(1),
            last: Some(ThreadId(1)),
        };
        assert!(!c.is_preemption_for(ThreadId(1)));
        assert!(c.is_preemption_for(ThreadId(0)));
        assert!(c.is_preemption_for(ThreadId(2)));
        let blocked_last = Consult {
            eligible: vec![ThreadId(0), ThreadId(2)],
            footprints: Vec::new(),
            chosen: ThreadId(0),
            last: Some(ThreadId(1)),
        };
        assert!(
            !blocked_last.is_preemption_for(ThreadId(2)),
            "switching away from a blocked thread is free"
        );
    }
}
