//! PCT: probabilistic concurrency testing (Burckhardt et al., ASPLOS '10).
//!
//! Each run draws a random priority permutation over the threads and `d−1`
//! *priority-change points* uniformly from `[1, k]` (`k` ≈ the run's
//! decision count, estimated by a probe run). The scheduler always runs
//! the highest-priority eligible thread; when the decision counter crosses
//! a change point, the thread just picked drops to a fresh low priority.
//! For a bug of depth `d` this guarantees detection probability at least
//! `1/(n·k^(d−1))` per run — which is why PCT finds shallow ordering and
//! atomicity bugs in tens of runs where uniform random scheduling needs
//! thousands.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::point::PointMask;
use super::{SchedContext, Scheduler};
use crate::locks::ThreadId;

/// PCT parameters.
#[derive(Debug, Clone, Copy)]
pub struct PctConfig {
    /// Bug depth `d`: the number of ordering constraints the target bug
    /// needs (`d−1` priority-change points are inserted). Depth 3 covers
    /// single order violations and atomicity violations.
    pub depth: usize,
    /// Estimated decisions per run `k` (change points are drawn from
    /// `[1, k]`). [`explore`](super::explore) measures it with a probe run.
    pub k: u64,
    /// The decision mask PCT runs under.
    pub mask: PointMask,
}

impl Default for PctConfig {
    fn default() -> Self {
        Self {
            depth: 3,
            k: 256,
            mask: PointMask::SYNC,
        }
    }
}

/// The PCT scheduler for one run.
#[derive(Debug)]
pub struct PctScheduler {
    cfg: PctConfig,
    rng: SmallRng,
    /// Per-thread priority; higher runs first. Initial values are
    /// `d+1 ..= d+n` (a random permutation), change points hand out
    /// `d−1, d−2, …, 1` — all below every initial value and distinct.
    priorities: Vec<u64>,
    /// Sorted decision counts at which the running thread is demoted.
    change_points: Vec<u64>,
    next_change: usize,
    decisions: u64,
    demotions: u64,
}

impl PctScheduler {
    /// A PCT scheduler for one run; `seed` draws both the priority
    /// permutation and the change points.
    pub fn new(seed: u64, cfg: PctConfig) -> Self {
        Self {
            cfg,
            rng: SmallRng::seed_from_u64(seed),
            priorities: Vec::new(),
            change_points: Vec::new(),
            next_change: 0,
            decisions: 0,
            demotions: 0,
        }
    }

    /// Decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Priority demotions applied so far (change points crossed) — at most
    /// `depth − 1` per run, surfaced by the exploration metrics registry.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    fn init(&mut self, threads: usize) {
        let d = self.cfg.depth.max(1) as u64;
        self.priorities = (0..threads).map(|i| d + 1 + i as u64).collect();
        // Fisher–Yates; the vendored rand has no shuffle helper.
        for i in (1..self.priorities.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            self.priorities.swap(i, j);
        }
        let k = self.cfg.k.max(1);
        self.change_points = (1..self.cfg.depth)
            .map(|_| self.rng.gen_range(1..=k))
            .collect();
        self.change_points.sort_unstable();
    }
}

impl Scheduler for PctScheduler {
    fn pick(&mut self, ctx: &SchedContext<'_>) -> ThreadId {
        if self.priorities.is_empty() {
            self.init(ctx.threads.max(ctx.eligible.len()));
        }
        self.decisions += 1;
        let chosen = ctx
            .eligible
            .iter()
            .copied()
            .max_by_key(|t| self.priorities[t.index()])
            .expect("eligible is non-empty");
        // Crossing the i-th change point (1-based) demotes the running
        // thread to priority d−i — strictly below all initial priorities
        // and all earlier demotions.
        while self.next_change < self.change_points.len()
            && self.change_points[self.next_change] <= self.decisions
        {
            let d = self.cfg.depth.max(1) as u64;
            self.priorities[chosen.index()] = d - 1 - self.next_change as u64;
            self.next_change += 1;
            self.demotions += 1;
        }
        chosen
    }

    fn name(&self) -> &'static str {
        "pct"
    }

    fn decision_mask(&self) -> PointMask {
        self.cfg.mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn picks(seed: u64, cfg: PctConfig, rounds: u64) -> Vec<usize> {
        let all = [ThreadId(0), ThreadId(1), ThreadId(2)];
        let mut s = PctScheduler::new(seed, cfg);
        (0..rounds)
            .map(|step| s.pick(&SchedContext::simple(&all, step)).index())
            .collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = PctConfig::default();
        assert_eq!(picks(11, cfg, 64), picks(11, cfg, 64));
    }

    #[test]
    fn seeds_draw_different_priority_orders() {
        let cfg = PctConfig::default();
        let first: Vec<usize> = (0..32).map(|s| picks(s, cfg, 1)[0]).collect();
        for t in 0..3 {
            assert!(
                first.contains(&t),
                "thread {t} never highest-priority across 32 seeds"
            );
        }
    }

    #[test]
    fn change_points_demote_the_running_thread() {
        // With k = 1 every change point fires on the first decision, so a
        // depth-2 run must switch threads after the first pick.
        let cfg = PctConfig {
            depth: 2,
            k: 1,
            mask: PointMask::SYNC,
        };
        let p = picks(5, cfg, 8);
        assert_ne!(p[0], p[1], "first pick demoted, second differs");
        assert!(
            p[1..].iter().all(|&t| t == p[1]),
            "single change point: priorities stable afterwards"
        );
    }

    #[test]
    fn highest_priority_runs_until_demoted() {
        // No change points (depth 1): the same thread is picked while
        // eligible.
        let cfg = PctConfig {
            depth: 1,
            k: 100,
            mask: PointMask::SYNC,
        };
        let p = picks(3, cfg, 16);
        assert!(p.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn respects_eligibility() {
        let cfg = PctConfig::default();
        let mut s = PctScheduler::new(9, cfg);
        let all = [ThreadId(0), ThreadId(1), ThreadId(2)];
        let top = s.pick(&SchedContext::simple(&all, 0));
        let without_top: Vec<ThreadId> = all.iter().copied().filter(|t| *t != top).collect();
        let mut ctx = SchedContext::simple(&without_top, 1);
        ctx.threads = 3;
        let next = s.pick(&ctx);
        assert_ne!(next, top);
    }

    #[test]
    fn counts_decisions_and_demotions() {
        // k = 1: every change point fires on the first decision.
        let cfg = PctConfig {
            depth: 3,
            k: 1,
            mask: PointMask::SYNC,
        };
        let mut s = PctScheduler::new(7, cfg);
        let all = [ThreadId(0), ThreadId(1)];
        for step in 0..4 {
            s.pick(&SchedContext::simple(&all, step));
        }
        assert_eq!(s.decisions(), 4);
        assert_eq!(s.demotions(), 2, "depth 3 ⇒ two change points");
    }
}
