//! Delta-debugging minimization of failing decision traces.
//!
//! A failing schedule found by exploration may carry hundreds of decisions
//! that have nothing to do with the bug. The minimizer shrinks the trace
//! while preserving the *failure signature* (outcome class, failure kind,
//! site and thread), in two phases:
//!
//! 1. **Prefix truncation** — binary-search the shortest failing prefix
//!    (decisions after the bug triggers are dead weight; dropping the tail
//!    usually removes most of the trace at `log n` cost).
//! 2. **ddmin chunk removal** — classic delta debugging over the
//!    remaining decisions at progressively finer granularity.
//!
//! Every candidate executes under a lenient [`ReplayScheduler`] with
//! re-recording on; a candidate is accepted only if its failure signature
//! matches **and** its re-recorded trace is no longer than the current
//! one. The accepted re-recording becomes the new current trace, so the
//! final result is always the exact decision log of a real failing run —
//! strictly replayable, never longer than the input.

use serde::{Deserialize, Serialize};

use super::decision::DecisionTrace;
use super::replay::run_replay;
use crate::machine::MachineConfig;
use crate::outcome::RunOutcome;
use crate::program::Program;

/// What a minimization did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinimizeReport {
    /// Decisions in the input trace.
    pub original_len: usize,
    /// Decisions in the minimized trace.
    pub minimized_len: usize,
    /// Candidate replays executed.
    pub candidates: usize,
    /// The minimized trace (the decision log of a real failing run).
    pub trace: DecisionTrace,
    /// The failing outcome the minimized trace reproduces.
    pub outcome: RunOutcome,
}

/// The equivalence class minimization preserves: two runs fail "the same
/// way" when their outcome class, failure kind, site and thread agree.
fn signature(outcome: &RunOutcome) -> Option<String> {
    match outcome {
        RunOutcome::Completed => None,
        RunOutcome::Failed(f) => Some(format!(
            "failed:{:?}:{:?}:{}",
            f.kind,
            f.site,
            f.thread.index()
        )),
        RunOutcome::Hang { .. } => Some("hang".into()),
        RunOutcome::StepLimit => Some("step-limit".into()),
    }
}

/// Minimizes `trace` (a failing schedule of `program` under `config`),
/// executing at most `budget` candidate replays.
///
/// Errors if the input trace does not fail when replayed.
pub fn minimize(
    program: &Program,
    config: &MachineConfig,
    trace: &DecisionTrace,
    budget: usize,
) -> Result<MinimizeReport, String> {
    let mut cfg = *config;
    cfg.record_decisions = true;
    let candidates = std::cell::Cell::new(0usize);
    let run = |decisions: &[u32]| {
        candidates.set(candidates.get() + 1);
        let cand = DecisionTrace {
            scheduler: trace.scheduler.clone(),
            seed: trace.seed,
            mask: trace.mask,
            decisions: decisions.to_vec(),
        };
        let (result, _divergence) = run_replay(program, &cfg, &cand);
        let recorded = result.decisions.unwrap_or(cand);
        (result.outcome, recorded)
    };

    let (outcome, recorded) = run(&trace.decisions);
    let Some(sig) = signature(&outcome) else {
        return Err("trace does not fail under replay; nothing to minimize".into());
    };
    // The baseline re-recording is the canonical form of the input (a
    // failing run stops at the failure, so it is never longer — but clamp
    // to the input anyway to keep the no-longer-than-original guarantee).
    let (mut current, mut current_outcome) = if recorded.len() <= trace.len() {
        (recorded, outcome)
    } else {
        (trace.clone(), outcome)
    };

    let matches = |o: &RunOutcome| signature(o).as_deref() == Some(sig.as_str());

    // Phase 1: shortest failing prefix by binary search.
    let mut lo = 0usize;
    let mut hi = current.len();
    while lo < hi && candidates.get() < budget {
        let mid = lo + (hi - lo) / 2;
        let (o, rec) = run(&current.decisions[..mid]);
        if matches(&o) && rec.len() <= current.len() {
            hi = mid.min(rec.len());
            current = rec;
            current_outcome = o;
        } else {
            lo = mid + 1;
        }
    }

    // Phase 2: ddmin-style chunk removal.
    let mut n = 2usize;
    while current.len() >= 2 && candidates.get() < budget {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() && candidates.get() < budget {
            let mut cand: Vec<u32> = current.decisions[..start].to_vec();
            cand.extend_from_slice(&current.decisions[(start + chunk).min(current.len())..]);
            let (o, rec) = run(&cand);
            if matches(&o) && rec.len() <= current.len() {
                current = rec;
                current_outcome = o;
                reduced = true;
                // Stay at the same offset: the next chunk slid into place.
            } else {
                start += chunk;
            }
        }
        if reduced {
            n = n.saturating_sub(1).max(2);
        } else if chunk <= 1 {
            break;
        } else {
            n = (n * 2).min(current.len());
        }
    }

    Ok(MinimizeReport {
        original_len: trace.len(),
        minimized_len: current.len(),
        candidates: candidates.get(),
        trace: current,
        outcome: current_outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{explore, ExploreConfig, ExploreStrategy, PointMask};
    use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};

    fn order_violation() -> Program {
        let mut mb = ModuleBuilder::new("ov");
        let flag = mb.global("flag", 0);
        let mut fb = FuncBuilder::new("reader", 0);
        // Busy filler before the racy load, so traces have slack to shrink.
        for _ in 0..4 {
            fb.marker("spin");
        }
        let v = fb.load_global(flag);
        let ok = fb.cmp(CmpKind::Ne, v, 0);
        fb.assert(ok, "writer must have published");
        fb.ret();
        mb.function(fb.finish());
        let mut fb = FuncBuilder::new("writer", 0);
        for _ in 0..4 {
            fb.marker("wspin");
        }
        fb.store_global(flag, 1);
        fb.ret();
        mb.function(fb.finish());
        Program::from_entry_names(mb.finish(), &["reader", "writer"])
    }

    #[test]
    fn minimized_trace_still_fails_and_is_no_longer() {
        let program = order_violation();
        let config = MachineConfig::default();
        let mut ec = ExploreConfig::new(ExploreStrategy::Pct { depth: 3 });
        ec.mask = PointMask::SYNC_SHARED;
        let report = explore(&program, &config, &ec);
        let found = report.first_failure.expect("bug found");
        let min = minimize(&program, &config, &found.trace, 256).unwrap();
        assert_eq!(signature(&min.outcome), signature(&found.outcome));
        assert!(min.minimized_len <= min.original_len);
        assert_eq!(min.trace.len(), min.minimized_len);
        // The minimized trace replays to the same failure, cleanly.
        let mut cfg = config;
        cfg.record_decisions = true;
        let (replayed, div) = run_replay(&program, &cfg, &min.trace);
        assert_eq!(div, None);
        assert_eq!(replayed.outcome, min.outcome);
    }

    #[test]
    fn completing_trace_is_an_error() {
        let program = order_violation();
        let config = MachineConfig::default();
        // An empty trace replays as the default continuation: reader runs
        // first and fails — so force the benign order instead by letting
        // the writer go first.
        let mut benign = DecisionTrace::new("test", 0, PointMask::SYNC_SHARED);
        for _ in 0..64 {
            benign.decisions.push(1);
        }
        let (result, _div) = run_replay(&program, &config, &benign);
        assert!(result.outcome.is_completed(), "writer-first completes");
        assert!(minimize(&program, &config, &benign, 64).is_err());
    }
}
