//! Bit-identical re-execution of a recorded [`DecisionTrace`].
//!
//! The interpreter is deterministic: given the same program, the same
//! [`MachineConfig`] and the same sequence of scheduler picks at the same
//! decision mask, every instruction executes identically. A
//! [`ReplayScheduler`] therefore reproduces a recorded run's `RunOutcome`
//! exactly — including failure site, step and message — which is what
//! makes explored failures debuggable artifacts instead of one-off
//! observations (the in-situ replay idea of iReplayer, scaled down to a
//! deterministic interpreter).
//!
//! Replay is *lenient*: if a recorded decision names a thread that is not
//! eligible (the program, config or mask changed since recording), the
//! scheduler falls back to the default continuation and records the first
//! [`Divergence`] for the caller to surface. A clean replay of an
//! unmodified trace never diverges.

use super::decision::DecisionTrace;
use super::point::PointMask;
use super::{SchedContext, Scheduler};
use crate::locks::ThreadId;
use crate::machine::{Machine, MachineConfig};
use crate::outcome::RunResult;
use crate::program::Program;

/// Where a replay first stopped following its trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Decision index at which replay diverged.
    pub at: usize,
    /// The recorded thread that was not eligible (`None`: the trace was
    /// exhausted and the run still needed decisions).
    pub wanted: Option<ThreadId>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.wanted {
            Some(t) => write!(f, "decision {}: recorded {t} not eligible", self.at),
            None => write!(f, "trace exhausted after {} decisions", self.at),
        }
    }
}

/// Replays a [`DecisionTrace`] decision by decision.
#[derive(Debug)]
pub struct ReplayScheduler {
    trace: DecisionTrace,
    idx: usize,
    divergence: Option<Divergence>,
}

impl ReplayScheduler {
    /// A scheduler replaying `trace`.
    pub fn new(trace: DecisionTrace) -> Self {
        Self {
            trace,
            idx: 0,
            divergence: None,
        }
    }

    /// The first divergence, if the run stopped following the trace.
    pub fn divergence(&self) -> Option<&Divergence> {
        self.divergence.as_ref()
    }

    /// Decisions consumed from the trace.
    pub fn consumed(&self) -> usize {
        self.idx
    }
}

impl Scheduler for ReplayScheduler {
    fn pick(&mut self, ctx: &SchedContext<'_>) -> ThreadId {
        if let Some(&d) = self.trace.decisions.get(self.idx) {
            let at = self.idx;
            self.idx += 1;
            let want = ThreadId(d as usize);
            if ctx.eligible.contains(&want) {
                return want;
            }
            if self.divergence.is_none() {
                self.divergence = Some(Divergence {
                    at,
                    wanted: Some(want),
                });
            }
        } else if self.divergence.is_none() {
            self.divergence = Some(Divergence {
                at: self.idx,
                wanted: None,
            });
        }
        // Default continuation: keep the last thread running, else the
        // lowest-id eligible thread.
        match ctx.last {
            Some(prev) if ctx.eligible.contains(&prev) => prev,
            _ => ctx.eligible[0],
        }
    }

    fn name(&self) -> &'static str {
        "replay"
    }

    fn decision_mask(&self) -> PointMask {
        self.trace.point_mask()
    }
}

/// Replays `trace` on `program` and returns the result plus the first
/// divergence, if any. `config.record_decisions` is honored, so a replay
/// can re-record its own (possibly shorter) canonical trace — the
/// minimizer relies on this.
pub fn run_replay(
    program: &Program,
    config: &MachineConfig,
    trace: &DecisionTrace,
) -> (RunResult, Option<Divergence>) {
    let mut sched = ReplayScheduler::new(trace.clone());
    let result = Machine::new(program, *config).run(&mut sched);
    let divergence = sched.divergence().cloned();
    (result, divergence)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn follows_trace_then_falls_back() {
        let mut trace = DecisionTrace::new("test", 0, PointMask::ALL);
        trace.push(ThreadId(1));
        trace.push(ThreadId(0));
        let mut s = ReplayScheduler::new(trace);
        let all = [ThreadId(0), ThreadId(1)];
        assert_eq!(s.pick(&SchedContext::simple(&all, 1)), ThreadId(1));
        assert_eq!(s.pick(&SchedContext::simple(&all, 2)), ThreadId(0));
        assert!(s.divergence().is_none());
        // Trace exhausted: default continuation (no last → lowest id),
        // divergence recorded.
        assert_eq!(s.pick(&SchedContext::simple(&all, 3)), ThreadId(0));
        assert_eq!(
            s.divergence(),
            Some(&Divergence {
                at: 2,
                wanted: None
            })
        );
    }

    #[test]
    fn ineligible_decision_diverges_once() {
        let mut trace = DecisionTrace::new("test", 0, PointMask::ALL);
        trace.push(ThreadId(5));
        trace.push(ThreadId(1));
        let mut s = ReplayScheduler::new(trace);
        let all = [ThreadId(0), ThreadId(1)];
        let mut ctx = SchedContext::simple(&all, 1);
        ctx.last = Some(ThreadId(1));
        assert_eq!(s.pick(&ctx), ThreadId(1), "falls back to last");
        assert_eq!(
            s.divergence(),
            Some(&Divergence {
                at: 0,
                wanted: Some(ThreadId(5))
            })
        );
        // Later valid decisions still apply; the first divergence sticks.
        assert_eq!(s.pick(&SchedContext::simple(&all, 2)), ThreadId(1));
        assert_eq!(s.divergence().unwrap().at, 0);
        assert_eq!(s.consumed(), 2);
    }
}
