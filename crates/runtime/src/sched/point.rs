//! Scheduling-point kinds and masks.
//!
//! A *scheduling point* is the moment just before a thread's next
//! instruction executes. The machine classifies that instruction into a
//! [`PointKind`]; a strategy's [`PointMask`](crate::Scheduler) says at
//! which kinds it wants to be consulted. Interleavings of data-race-free
//! synchronization-only programs are fully determined by their order of
//! sync operations, so masks restricted to sync-relevant kinds shrink the
//! decision space from "every instruction" to "every lock/marker/exit"
//! without losing the schedules that matter — the same insight CHESS and
//! PCT build on.

use conair_ir::Inst;

/// What kind of instruction a thread is about to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PointKind {
    /// Thread-local work (arithmetic, locals, control flow).
    Local,
    /// A lock acquisition (`lock` or hardened `timedlock`).
    LockAcquire,
    /// A lock release.
    LockRelease,
    /// A shared-memory access (global/pointer load or store, alloc/free,
    /// observable output).
    SharedAccess,
    /// A named marker — the instrumentation points schedule-script gates
    /// reference.
    Marker,
    /// The thread's very first instruction.
    ThreadSpawn,
    /// The thread's final return.
    ThreadExit,
}

impl PointKind {
    /// The mask bit for this kind.
    #[inline]
    pub const fn bit(self) -> u8 {
        1u8 << (self as u8)
    }

    /// Classifies an instruction (spawn/exit refinement is the machine's:
    /// it knows instruction counts and stack depths).
    pub fn of_inst(inst: &Inst) -> PointKind {
        match inst {
            Inst::Lock { .. } | Inst::TimedLock { .. } => PointKind::LockAcquire,
            Inst::Unlock { .. } => PointKind::LockRelease,
            Inst::LoadGlobal { .. }
            | Inst::StoreGlobal { .. }
            | Inst::LoadPtr { .. }
            | Inst::StorePtr { .. }
            | Inst::Alloc { .. }
            | Inst::Free { .. }
            | Inst::Output { .. }
            | Inst::OutputAssert { .. } => PointKind::SharedAccess,
            Inst::Marker { .. } => PointKind::Marker,
            // `Return` may be a call return or a thread exit; the table
            // marks it Exit and the machine downgrades to Local when the
            // thread still has frames below.
            Inst::Return { .. } => PointKind::ThreadExit,
            _ => PointKind::Local,
        }
    }
}

/// A set of [`PointKind`]s a scheduler wants to decide at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PointMask(u8);

impl PointMask {
    /// Every kind, including [`PointKind::Local`] — the machine consults
    /// the scheduler before every instruction.
    pub const ALL: PointMask = PointMask(0x7F);

    /// Synchronization-relevant points only: lock acquire/release, markers,
    /// thread spawn/exit. The default exploration mask — compact decision
    /// logs, and every gate-expressible interleaving remains reachable
    /// (gates hold threads at markers, which are masked).
    pub const SYNC: PointMask = PointMask(
        PointKind::LockAcquire.bit()
            | PointKind::LockRelease.bit()
            | PointKind::Marker.bit()
            | PointKind::ThreadSpawn.bit()
            | PointKind::ThreadExit.bit(),
    );

    /// [`PointMask::SYNC`] plus shared-memory accesses — finer-grained
    /// exploration for races not bracketed by locks or markers, at the
    /// price of much longer decision logs.
    pub const SYNC_SHARED: PointMask = PointMask(Self::SYNC.0 | PointKind::SharedAccess.bit());

    /// The raw bits (for serialization into decision traces).
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs a mask from trace bits.
    #[inline]
    pub const fn from_bits(bits: u8) -> PointMask {
        PointMask(bits & 0x7F)
    }

    /// Whether `kind` is in the mask.
    #[inline]
    pub const fn contains(self, kind: PointKind) -> bool {
        self.0 & kind.bit() != 0
    }

    /// Whether this is the consult-every-step mask.
    #[inline]
    pub const fn is_all(self) -> bool {
        self.0 == Self::ALL.0
    }

    /// Parses a CLI-facing mask name: `sync`, `shared`, or `all`.
    pub fn parse(name: &str) -> Option<PointMask> {
        match name {
            "sync" => Some(Self::SYNC),
            "shared" => Some(Self::SYNC_SHARED),
            "all" => Some(Self::ALL),
            _ => None,
        }
    }

    /// The CLI-facing name of the mask, when it is one of the named masks.
    pub fn name(self) -> &'static str {
        if self == Self::SYNC {
            "sync"
        } else if self == Self::SYNC_SHARED {
            "shared"
        } else if self == Self::ALL {
            "all"
        } else {
            "custom"
        }
    }
}

impl Default for PointMask {
    fn default() -> Self {
        Self::ALL
    }
}

/// The first shared effect a thread's next instruction would have — the
/// evidence the explorer's independence check works from. Two adjacent
/// decisions with provably disjoint footprints commute, so only one of
/// them needs exploring as a preemption point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Footprint {
    /// Acquire or release of one specific lock.
    Lock(u32),
    /// Read of one specific shared address.
    Read(i64),
    /// Write of one specific shared address.
    Write(i64),
    /// Unknown or compound effect — conservatively conflicts with
    /// everything.
    #[default]
    Opaque,
}

impl Footprint {
    /// Whether two footprints provably commute: distinct locks, reads of
    /// anything, or memory operations on distinct addresses. `Opaque`
    /// never commutes.
    pub fn independent(self, other: Footprint) -> bool {
        use Footprint::*;
        match (self, other) {
            (Lock(a), Lock(b)) => a != b,
            (Read(_), Read(_)) => true,
            (Read(a), Write(b)) | (Write(a), Read(b)) | (Write(a), Write(b)) => a != b,
            // Lock words and memory words live in disjoint state.
            (Lock(_), Read(_) | Write(_)) | (Read(_) | Write(_), Lock(_)) => true,
            (Opaque, _) | (_, Opaque) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{FuncBuilder, ModuleBuilder};

    #[test]
    fn masks_contain_their_kinds() {
        assert!(PointMask::ALL.contains(PointKind::Local));
        assert!(PointMask::ALL.is_all());
        assert!(!PointMask::SYNC.contains(PointKind::Local));
        assert!(!PointMask::SYNC.contains(PointKind::SharedAccess));
        assert!(PointMask::SYNC.contains(PointKind::LockAcquire));
        assert!(PointMask::SYNC.contains(PointKind::Marker));
        assert!(PointMask::SYNC.contains(PointKind::ThreadExit));
        assert!(PointMask::SYNC_SHARED.contains(PointKind::SharedAccess));
        assert!(!PointMask::SYNC.is_all());
    }

    #[test]
    fn bits_roundtrip() {
        for mask in [PointMask::ALL, PointMask::SYNC, PointMask::SYNC_SHARED] {
            assert_eq!(PointMask::from_bits(mask.bits()), mask);
            assert_eq!(PointMask::parse(mask.name()), Some(mask));
        }
        assert_eq!(PointMask::parse("bogus"), None);
    }

    #[test]
    fn classification_covers_sync_ops() {
        let mut mb = ModuleBuilder::new("t");
        let lk = mb.lock("l");
        let g = mb.global("g", 0);
        let mut fb = FuncBuilder::new("f", 0);
        fb.lock(lk);
        let v = fb.load_global(g);
        fb.unlock(lk);
        fb.marker("m");
        fb.output("out", v);
        fb.ret();
        mb.function(fb.finish());
        let module = mb.finish();
        let kinds: Vec<PointKind> = module.functions[0].blocks[0]
            .insts
            .iter()
            .map(PointKind::of_inst)
            .collect();
        assert_eq!(
            kinds,
            vec![
                PointKind::LockAcquire,
                PointKind::SharedAccess,
                PointKind::LockRelease,
                PointKind::Marker,
                PointKind::SharedAccess,
                PointKind::ThreadExit,
            ]
        );
    }
}
