//! Schedule-space exploration: drive many schedules at a program until one
//! fails, with deterministic parallel fan-out and prefix-sharing snapshot
//! reuse.
//!
//! Two strategies share one engine:
//!
//! * **PCT** — independent randomized-priority runs seeded `seed+1,
//!   seed+2, …` after a probe run that measures `k` (decisions per run).
//! * **Bounded preemption** — systematic breadth-first enumeration of the
//!   schedule tree: each executed schedule's consults spawn children that
//!   replay the decisions up to a branch point and pick a different
//!   eligible thread there, as long as the path's preemption count stays
//!   within budget.
//!
//! Schedules execute in waves fanned across a
//! [`TrialPool`](crate::TrialPool); results merge in schedule-index order.
//! Wave widths ramp 16 → 256 as a function of the wave index only (never
//! of `--jobs`), so the explored set, the failure counts and the first
//! failing schedule are **bit-identical across job counts** — parallelism
//! changes wall time only.
//!
//! Three layers make the bounded search cheap without changing what it
//! reports (all deterministic, all enforced bit-identical by tests):
//!
//! * **Prefix-sharing snapshot tree** — bounded/CHESS neighbors share long
//!   decision prefixes by construction, so executed runs deposit
//!   [`MachineSnapshot`]s keyed by decision prefix into a [`SnapshotTree`]
//!   (LRU-bounded by `--snapshot-budget`), and each candidate resumes from
//!   its deepest retained ancestor instead of interpreting from step zero.
//! * **Decision-trace dedup** — past its forced prefix a candidate
//!   continues deterministically, so every forced-or-longer prefix of an
//!   executed trace identifies a schedule whose whole run is already
//!   known. Candidates hashing into that set are skipped, not re-run.
//! * **Independence pruning** (masks that include shared accesses only,
//!   where a consult's transition is exactly one instruction wide) — an
//!   alternative whose next instruction provably commutes with the chosen
//!   thread's is not enqueued as a preemption point.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use super::bounded::{Consult, FrontierScheduler};
use super::decision::DecisionTrace;
use super::pct::{PctConfig, PctScheduler};
use super::point::{PointKind, PointMask};
use crate::dense::DenseProgram;
use crate::harness::TrialPool;
use crate::machine::{Machine, MachineConfig, MachineSnapshot};
use crate::metrics::{Histogram, MetricsRegistry};
use crate::outcome::RunOutcome;
use crate::program::Program;
use crate::trace::{TraceEvent, TraceSink};

/// First-wave width; widths double each wave up to [`WAVE_MAX`]. Small
/// early waves keep stop-at-first searches from overshooting the first
/// failure; large late waves amortize the fan-out barrier (the fixed
/// 16-wide waves of the first engine cost PCT its parallel speedup).
const WAVE_BASE: usize = 16;

/// Wave-width ceiling.
const WAVE_MAX: usize = 256;

/// Snapshots one run may deposit into the tree: captures cover decision
/// indices `[frontier, frontier + CAPTURE_PER_RUN)`, exactly where the
/// run's own children branch.
const CAPTURE_PER_RUN: usize = 64;

/// Which search strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExploreStrategy {
    /// PCT randomized priorities with the given bug depth.
    Pct {
        /// Bug depth `d` (see [`PctConfig::depth`]).
        depth: usize,
    },
    /// Bounded-preemption systematic search.
    Bounded {
        /// Maximum preemptions per schedule.
        preemptions: usize,
    },
}

impl ExploreStrategy {
    /// A stable report label.
    pub fn label(&self) -> String {
        match self {
            ExploreStrategy::Pct { depth } => format!("pct(d={depth})"),
            ExploreStrategy::Bounded { preemptions } => format!("bounded(k={preemptions})"),
        }
    }
}

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// The strategy.
    pub strategy: ExploreStrategy,
    /// Base seed (PCT run `i` uses `seed + i`).
    pub seed: u64,
    /// Maximum schedules to execute.
    pub budget: usize,
    /// Worker threads for the wave fan-out (wall time only — results are
    /// identical across job counts).
    pub jobs: usize,
    /// The decision mask schedules run under.
    pub mask: PointMask,
    /// Stop at the end of the first wave that contains a failure (the
    /// default). `false` exhausts the budget — for measuring failure
    /// density and throughput.
    pub stop_at_first: bool,
    /// Override PCT's `k` instead of probing for it.
    pub pct_k: Option<u64>,
    /// Retained snapshots the prefix tree may hold (bounded search only;
    /// `0` disables the cache entirely). Pure perf: reports are
    /// bit-identical at any value.
    pub snapshot_budget: usize,
    /// Pin every wave to this width instead of the 16 → 256 ramp.
    pub wave: Option<usize>,
}

impl ExploreConfig {
    /// Defaults: seed 1, budget 256, sequential, sync mask, stop at first
    /// failure, 256 retained snapshots, ramped wave widths.
    pub fn new(strategy: ExploreStrategy) -> Self {
        Self {
            strategy,
            seed: 1,
            budget: 256,
            jobs: 1,
            mask: PointMask::SYNC,
            stop_at_first: true,
            pct_k: None,
            snapshot_budget: 256,
            wave: None,
        }
    }
}

/// A failing schedule the exploration found.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoundSchedule {
    /// Schedule index within the exploration (0 = the probe / root).
    pub index: usize,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// The recorded decisions — replayable and minimizable.
    pub trace: DecisionTrace,
}

/// The explorer's self-profiling phase breakdown: wall-time attributed to
/// snapshot capture, snapshot restore, schedule interpretation, and wave
/// assembly/merge, in microseconds. `minimize_us` is filled by the caller
/// that owns minimization (the CLI); the explorer leaves it zero. All
/// fields are wall-clock and therefore nondeterministic — they are zeroed
/// by [`ExploreReport::normalized`] alongside `wall_ms`.
///
/// Timers are collected unconditionally (two `Instant` reads per run and
/// per wave, next to the ones the machine already takes for
/// [`crate::RunStats::wall`]), so the breakdown is present in every report
/// whether or not an observer is attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExplorePhases {
    /// µs spent capturing machine snapshots (inside executed runs).
    pub capture_us: u64,
    /// µs spent restoring machine snapshots before resumed runs.
    pub restore_us: u64,
    /// µs spent interpreting schedules (run wall minus capture).
    pub interpret_us: u64,
    /// µs the exploring thread spent assembling waves (dedup + ancestor
    /// lookup) and merging their results.
    pub merge_us: u64,
    /// µs spent minimizing the first failure (CLI-owned; 0 in reports
    /// written by [`explore`] itself).
    pub minimize_us: u64,
}

impl ExplorePhases {
    /// Field-wise difference `self − prev` (saturating) — the per-wave
    /// delta the observer emits.
    fn delta_since(&self, prev: &ExplorePhases) -> ExplorePhases {
        ExplorePhases {
            capture_us: self.capture_us.saturating_sub(prev.capture_us),
            restore_us: self.restore_us.saturating_sub(prev.restore_us),
            interpret_us: self.interpret_us.saturating_sub(prev.interpret_us),
            merge_us: self.merge_us.saturating_sub(prev.merge_us),
            minimize_us: self.minimize_us.saturating_sub(prev.minimize_us),
        }
    }

    /// Sum of all phases, µs.
    pub fn total_us(&self) -> u64 {
        self.capture_us + self.restore_us + self.interpret_us + self.merge_us + self.minimize_us
    }
}

/// What an exploration did.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExploreReport {
    /// Strategy label (e.g. `pct(d=3)`).
    pub strategy: String,
    /// Decision-mask bits the exploration ran under.
    pub mask: u8,
    /// The schedule budget.
    pub budget: usize,
    /// Schedules actually executed.
    pub schedules: usize,
    /// Executed schedules that failed (failure, hang, or step-limit).
    pub failures: usize,
    /// The first failing schedule, by schedule index.
    pub first_failure: Option<FoundSchedule>,
    /// Bounded search only: branch points still queued when the
    /// exploration stopped (0 = tree exhausted within budget).
    pub frontier: usize,
    /// Decisions the probe (schedule 0, the non-preemptive default run)
    /// made — PCT's measured `k`.
    pub probe_decisions: u64,
    /// Snapshots deposited into the prefix tree (0 with the cache off).
    pub snapshots_taken: u64,
    /// Executed schedules that resumed from a retained ancestor snapshot
    /// instead of interpreting from step zero.
    pub snapshot_hits: u64,
    /// Interpreter steps those resumes skipped (sum of resumed snapshots'
    /// step counters).
    pub steps_saved: u64,
    /// Candidate schedules skipped because their decision trace was
    /// provably already executed (cache-independent, so *not* zeroed by
    /// [`ExploreReport::normalized`]).
    pub dedup_skips: u64,
    /// Branch alternatives never enqueued because their footprint provably
    /// commuted with the chosen thread's (cache-independent).
    pub independence_skips: u64,
    /// Schedules executed by each fan-out wave, in wave order (the probe
    /// is schedule 0, outside any wave). Deterministic — widths are a
    /// function of the wave index, budget, and stop mode only, never of
    /// `jobs` — so [`ExploreReport::normalized`] keeps them.
    pub wave_widths: Vec<u64>,
    /// Wall-clock milliseconds (nondeterministic, like `phases`).
    pub wall_ms: u64,
    /// Self-profiling wall-time breakdown (nondeterministic; zeroed by
    /// [`ExploreReport::normalized`]).
    pub phases: ExplorePhases,
}

/// Hand-written so reports recorded before the `phases`/self-profiling
/// fields existed keep loading: the PR 4/5-era core fields stay required
/// (which also keeps `conair report`'s format sniffing from mistaking
/// other JSON shapes for a report), while the newer perf counters and the
/// phase breakdown default to zero when absent.
impl serde::Deserialize for ExploreReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let pairs = v
            .as_object_slice()
            .ok_or_else(|| serde::Error::custom("ExploreReport: expected object"))?;
        let opt_u64 = |name: &str| -> Result<u64, serde::Error> {
            match pairs.iter().find(|(k, _)| k == name) {
                Some((_, v)) => u64::from_value(v),
                None => Ok(0),
            }
        };
        let phases = match pairs.iter().find(|(k, _)| k == "phases") {
            Some((_, v)) => ExplorePhases::from_value(v)?,
            None => ExplorePhases::default(),
        };
        Ok(Self {
            strategy: String::from_value(serde::field(pairs, "strategy")?)?,
            mask: u8::from_value(serde::field(pairs, "mask")?)?,
            budget: usize::from_value(serde::field(pairs, "budget")?)?,
            schedules: usize::from_value(serde::field(pairs, "schedules")?)?,
            failures: usize::from_value(serde::field(pairs, "failures")?)?,
            first_failure: Option::<FoundSchedule>::from_value(serde::field(
                pairs,
                "first_failure",
            )?)?,
            frontier: usize::from_value(serde::field(pairs, "frontier")?)?,
            probe_decisions: u64::from_value(serde::field(pairs, "probe_decisions")?)?,
            snapshots_taken: opt_u64("snapshots_taken")?,
            snapshot_hits: opt_u64("snapshot_hits")?,
            steps_saved: opt_u64("steps_saved")?,
            dedup_skips: opt_u64("dedup_skips")?,
            independence_skips: opt_u64("independence_skips")?,
            wave_widths: match pairs.iter().find(|(k, _)| k == "wave_widths") {
                Some((_, v)) => Vec::<u64>::from_value(v)?,
                None => Vec::new(),
            },
            wall_ms: u64::from_value(serde::field(pairs, "wall_ms")?)?,
            phases,
        })
    }
}

impl ExploreReport {
    /// Failures per thousand executed schedules.
    pub fn failures_per_1k(&self) -> f64 {
        if self.schedules == 0 {
            0.0
        } else {
            self.failures as f64 * 1000.0 / self.schedules as f64
        }
    }

    /// Decision depth of the first failing schedule.
    pub fn first_failure_depth(&self) -> Option<usize> {
        self.first_failure.as_ref().map(|f| f.trace.len())
    }

    /// A copy with the nondeterministic wall time (total and per-phase)
    /// and the cache-dependent perf counters zeroed — equal across
    /// `--jobs` values *and* across snapshot budgets by construction
    /// (asserted in tests and CI). `dedup_skips`/`independence_skips` are
    /// kept: they are functions of the search alone, not of the cache.
    pub fn normalized(&self) -> Self {
        Self {
            wall_ms: 0,
            snapshots_taken: 0,
            snapshot_hits: 0,
            steps_saved: 0,
            phases: ExplorePhases::default(),
            ..self.clone()
        }
    }
}

/// One executed schedule: outcome + recorded decisions (+ consults and
/// captured snapshots when a frontier scheduler ran it).
struct Executed {
    outcome: RunOutcome,
    trace: DecisionTrace,
    consults: Vec<Consult>,
    /// Decision index of the first recorded consult: the snapshot depth
    /// when the run resumed mid-tree, 0 from scratch.
    consult_base: usize,
    /// Preemptions spent by the decisions before `consult_base`.
    base_preemptions: usize,
    /// Captured snapshots `(decision depth, image)`, ascending depth.
    snaps: Vec<(usize, MachineSnapshot)>,
    /// The run's wall time (capture time included).
    run_wall: Duration,
    /// Portion of `run_wall` spent capturing snapshots.
    capture_wall: Duration,
    /// Wall time spent restoring the resume snapshot (zero from scratch).
    restore_wall: Duration,
    /// Live scheduler decisions (excludes decisions a resume skipped).
    picks: u64,
    /// PCT priority demotions (0 for frontier runs).
    demotions: u64,
    /// Register undo-log depths at the run's rollbacks (prefix samples
    /// repeat across schedules sharing a resumed prefix).
    undo_depth: Histogram,
}

/// How to execute one candidate schedule.
struct RunPlan {
    /// Forced decision prefix.
    prefix: Vec<u32>,
    /// Deepest retained ancestor `(image, depth, preemptions before it)`,
    /// when the tree held one.
    resume: Option<(Arc<MachineSnapshot>, usize, usize)>,
    /// Maximum snapshots this run may capture (0 = none).
    capture: usize,
}

fn run_frontier<'p>(
    program: &'p Program,
    config: &MachineConfig,
    dense: &Arc<DenseProgram<'p>>,
    plan: &RunPlan,
    mask: PointMask,
) -> Executed {
    let mut machine = Machine::with_shared_dense(program, dense.clone(), *config);
    let (mut sched, consult_base, base_preemptions, restore_wall) = match &plan.resume {
        Some((snap, depth, pre)) => {
            let restore_start = Instant::now();
            machine.restore_from(snap);
            (
                FrontierScheduler::resume(plan.prefix.clone(), *depth, mask),
                *depth,
                *pre,
                restore_start.elapsed(),
            )
        }
        None => (
            FrontierScheduler::new(plan.prefix.clone(), mask),
            0,
            0,
            Duration::ZERO,
        ),
    };
    // Capture where this run's own children will branch: at and past the
    // forced frontier (the depth-0 root state saves nothing — skip it).
    let capture_from = plan.prefix.len().max(1);
    let (result, snaps) = machine.run_captured(&mut sched, capture_from, plan.capture);
    debug_assert!(!sched.infeasible(), "prefixes come from recorded runs");
    let picks = sched.picks();
    Executed {
        outcome: result.outcome,
        trace: result
            .decisions
            .unwrap_or_else(|| DecisionTrace::new("bounded", 0, mask)),
        consults: sched.into_consults(),
        consult_base,
        base_preemptions,
        snaps,
        run_wall: result.stats.wall,
        capture_wall: result.stats.snapshot_wall,
        restore_wall,
        picks,
        demotions: 0,
        undo_depth: result.metrics.undo_depth,
    }
}

fn run_pct<'p>(
    program: &'p Program,
    config: &MachineConfig,
    dense: &Arc<DenseProgram<'p>>,
    seed: u64,
    cfg: PctConfig,
) -> Executed {
    let mut sched = PctScheduler::new(seed, cfg);
    let result = Machine::with_shared_dense(program, dense.clone(), *config).run(&mut sched);
    let mut trace = result
        .decisions
        .unwrap_or_else(|| DecisionTrace::new("pct", seed, cfg.mask));
    trace.seed = seed;
    Executed {
        outcome: result.outcome,
        trace,
        consults: Vec::new(),
        consult_base: 0,
        base_preemptions: 0,
        snaps: Vec::new(),
        run_wall: result.stats.wall,
        capture_wall: Duration::ZERO,
        restore_wall: Duration::ZERO,
        picks: sched.decisions(),
        demotions: sched.demotions(),
        undo_depth: result.metrics.undo_depth,
    }
}

/// Retained snapshots keyed by decision prefix — a trie over the
/// [`DecisionTrace`] u32 log, stored flat (the keys *are* the paths).
///
/// All lookups and inserts happen on the exploring thread in
/// schedule-index order, so hits, evictions and the LRU clock are
/// deterministic and identical across `--jobs`. Workers only ever read
/// images through the `Arc`.
struct SnapshotTree {
    budget: usize,
    nodes: HashMap<Vec<u32>, TreeNode>,
    clock: u64,
    /// LRU evictions performed so far (registry telemetry).
    evictions: u64,
}

struct TreeNode {
    snap: Arc<MachineSnapshot>,
    /// Preemptions spent by the first `depth` decisions of any schedule
    /// through this node (a function of the prefix alone).
    preemptions: usize,
    last_used: u64,
}

impl SnapshotTree {
    fn new(budget: usize) -> Self {
        Self {
            budget,
            nodes: HashMap::new(),
            clock: 0,
            evictions: 0,
        }
    }

    /// Live nodes (tree occupancy).
    fn len(&self) -> usize {
        self.nodes.len()
    }

    /// The deepest retained ancestor of `prefix` (depth `1..=len`),
    /// LRU-touched. Depth `len` is the prefix itself — a full hit.
    fn lookup(&mut self, prefix: &[u32]) -> Option<(Arc<MachineSnapshot>, usize, usize)> {
        if self.budget == 0 {
            return None;
        }
        for depth in (1..=prefix.len()).rev() {
            if let Some(node) = self.nodes.get_mut(&prefix[..depth]) {
                self.clock += 1;
                node.last_used = self.clock;
                return Some((node.snap.clone(), depth, node.preemptions));
            }
        }
        None
    }

    /// Retains `snap` under `key` unless present; at capacity the
    /// least-recently-used node is evicted first. Subtrees the search has
    /// exhausted stop being looked up, so their nodes age out naturally.
    /// Returns whether a new node was added.
    fn insert(&mut self, key: &[u32], snap: MachineSnapshot, preemptions: usize) -> bool {
        if self.budget == 0 || self.nodes.contains_key(key) {
            return false;
        }
        if self.nodes.len() >= self.budget {
            // The clock is strictly increasing, so the minimum is unique
            // and eviction is deterministic despite the map's iteration
            // order.
            let victim = self
                .nodes
                .iter()
                .min_by_key(|(_, n)| n.last_used)
                .map(|(k, _)| k.clone())
                .expect("tree at capacity is non-empty");
            self.nodes.remove(&victim);
            self.evictions += 1;
        }
        self.clock += 1;
        self.nodes.insert(
            key.to_vec(),
            TreeNode {
                snap: Arc::new(snap),
                preemptions,
                last_used: self.clock,
            },
        );
        true
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_push(mut h: u64, word: u32) -> u64 {
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn prefix_hash(decisions: &[u32]) -> u64 {
    decisions.iter().fold(FNV_OFFSET, |h, &d| fnv_push(h, d))
}

/// Marks every forced-or-longer prefix of an executed run's trace as
/// seen. Past its forced prefix a frontier run continues deterministically
/// (non-preemptive default), so a future candidate whose whole forced
/// prefix equals one of these trace prefixes would reproduce this very
/// run decision-for-decision — skipping it loses nothing.
fn note_executed(seen: &mut HashSet<u64>, forced: usize, decisions: &[u32]) {
    let mut h = FNV_OFFSET;
    if forced == 0 {
        seen.insert(h);
    }
    for (i, &d) in decisions.iter().enumerate() {
        h = fnv_push(h, d);
        if i + 1 >= forced {
            seen.insert(h);
        }
    }
}

/// Preemptions spent by the first `depth` decisions of an executed run.
fn preemptions_before(ex: &Executed, depth: usize) -> usize {
    debug_assert!(depth >= ex.consult_base, "capture precedes resume point");
    let local = depth - ex.consult_base;
    ex.base_preemptions
        + ex.consults[..local]
            .iter()
            .filter(|c| c.is_preemption())
            .count()
}

/// Deposits an executed run's captured snapshots into the tree, in
/// ascending depth order.
fn absorb_snapshots(tree: &mut SnapshotTree, report: &mut ExploreReport, ex: &mut Executed) {
    let snaps = std::mem::take(&mut ex.snaps);
    for (depth, snap) in snaps {
        let pre = preemptions_before(ex, depth);
        if tree.insert(&ex.trace.decisions[..depth], snap, pre) {
            report.snapshots_taken += 1;
        }
    }
}

/// Width of wave `i`: the 16 → 256 ramp, or the `--wave` override. A
/// function of the wave index only — never of `jobs` or the stop mode —
/// so the explored schedule set is invariant across both.
fn wave_width(ec: &ExploreConfig, wave: usize) -> usize {
    ec.wave
        .unwrap_or_else(|| (WAVE_BASE << wave.min(4)).min(WAVE_MAX))
        .max(1)
}

/// Observability hooks for [`explore_observed`]: a [`MetricsRegistry`] the
/// explorer updates at wave boundaries, an optional [`TraceSink`]
/// receiving [`TraceEvent::ExploreWave`] (every wave) and
/// [`TraceEvent::ExploreProgress`] (rate-limited by the sampling
/// interval), and the interval itself.
///
/// The observer is strictly read-only with respect to the search: every
/// update reads wave-boundary state the explorer already computed, so an
/// observed exploration's report is bit-identical to an unobserved one
/// (normalized for wall time) — pinned by tests and a CI diff.
pub struct ExploreObserver {
    sink: Option<Box<dyn TraceSink>>,
    registry: MetricsRegistry,
    interval_ms: u64,
    last_sample_ms: Option<u64>,
    last_phases: ExplorePhases,
}

impl ExploreObserver {
    /// An observer updating `registry`, with no sink and a 500 ms progress
    /// sampling interval.
    pub fn new(registry: MetricsRegistry) -> Self {
        Self {
            sink: None,
            registry,
            interval_ms: 500,
            last_sample_ms: None,
            last_phases: ExplorePhases::default(),
        }
    }

    /// Attaches an event sink for the progress/wave stream.
    pub fn with_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Sets the minimum milliseconds between `ExploreProgress` samples
    /// (0 = sample every wave). Wave events are never rate-limited.
    pub fn with_interval_ms(mut self, ms: u64) -> Self {
        self.interval_ms = ms;
        self
    }

    /// The registry this observer updates.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Folds one executed run's per-run telemetry into the registry.
    fn observe_run(&mut self, strategy: ExploreStrategy, ex: &Executed) {
        match strategy {
            ExploreStrategy::Bounded { .. } => self.registry.decisions_bounded.add(ex.picks),
            ExploreStrategy::Pct { .. } => {
                self.registry.decisions_pct.add(ex.picks);
                self.registry.pct_demotions.add(ex.demotions);
            }
        }
        if !ex.undo_depth.is_empty() {
            self.registry.undo_depth.merge(&ex.undo_depth);
        }
    }

    /// Publishes a completed wave: registry stores/deltas, an
    /// `ExploreWave` event, and — when the sampling interval has elapsed
    /// or the exploration is done — an `ExploreProgress` sample.
    fn observe_wave(&mut self, report: &ExploreReport, elapsed_ms: u64, w: &WaveObs) {
        let phases = report.phases.delta_since(&self.last_phases);
        self.last_phases = report.phases;
        let reg = &self.registry;
        reg.schedules.store(report.schedules as u64);
        reg.failures.store(report.failures as u64);
        reg.waves.add(1);
        reg.wave_width.set(w.width);
        reg.frontier_depth.set(w.frontier);
        reg.snapshot_nodes.set(w.tree_nodes);
        reg.snapshot_evictions.store(w.tree_evictions);
        reg.snapshots_taken.store(report.snapshots_taken);
        reg.snapshot_hits.store(report.snapshot_hits);
        reg.steps_saved.store(report.steps_saved);
        reg.dedup_skips.store(report.dedup_skips);
        reg.independence_skips.store(report.independence_skips);
        reg.phase_capture_us.add(phases.capture_us);
        reg.phase_restore_us.add(phases.restore_us);
        reg.phase_interpret_us.add(phases.interpret_us);
        reg.phase_merge_us.add(phases.merge_us);
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        sink.record(TraceEvent::ExploreWave {
            step: elapsed_ms,
            wave: w.wave,
            width: w.width,
            executed: w.executed,
            wall_us: w.wall_us,
            capture_us: phases.capture_us,
            restore_us: phases.restore_us,
            interpret_us: phases.interpret_us,
            merge_us: phases.merge_us,
        });
        let due = w.last
            || match self.last_sample_ms {
                None => true,
                Some(t) => elapsed_ms.saturating_sub(t) >= self.interval_ms,
            };
        if due {
            self.last_sample_ms = Some(elapsed_ms);
            sink.record(TraceEvent::ExploreProgress {
                step: elapsed_ms,
                schedules: report.schedules as u64,
                budget: report.budget as u64,
                failures: report.failures as u64,
                first_failure: report.first_failure.as_ref().map(|f| f.index as u64),
                frontier: w.frontier,
                snapshot_nodes: w.tree_nodes,
                steps_saved: report.steps_saved,
                wave: w.wave + 1,
            });
        }
    }
}

/// Wave-boundary state handed to [`ExploreObserver::observe_wave`].
struct WaveObs {
    wave: u64,
    width: u64,
    executed: u64,
    wall_us: u64,
    frontier: u64,
    tree_nodes: u64,
    tree_evictions: u64,
    last: bool,
}

/// Running phase-timer accumulators; converted to [`ExplorePhases`] (µs)
/// at each wave boundary.
#[derive(Default)]
struct PhaseClock {
    capture: Duration,
    restore: Duration,
    interpret: Duration,
    merge: Duration,
}

impl PhaseClock {
    /// Attributes one executed run's wall time: capture and restore as
    /// measured, the rest of the run as interpretation.
    fn note_run(&mut self, ex: &Executed) {
        self.capture += ex.capture_wall;
        self.restore += ex.restore_wall;
        self.interpret += ex.run_wall.saturating_sub(ex.capture_wall);
    }

    fn to_phases(&self) -> ExplorePhases {
        ExplorePhases {
            capture_us: self.capture.as_micros() as u64,
            restore_us: self.restore.as_micros() as u64,
            interpret_us: self.interpret.as_micros() as u64,
            merge_us: self.merge.as_micros() as u64,
            minimize_us: 0,
        }
    }
}

/// Explores schedules of `program` under `config` per `ec`.
///
/// No schedule script is involved: exploration exists to find
/// failure-inducing interleavings *without* hand-written gates.
pub fn explore(program: &Program, config: &MachineConfig, ec: &ExploreConfig) -> ExploreReport {
    explore_observed(program, config, ec, None)
}

/// [`explore`] with observability attached: wave-boundary registry
/// updates, progress/wave events, and the same report. `explore(p, c, e)`
/// is exactly `explore_observed(p, c, e, None)` — the unobserved path
/// allocates no registry and emits no events.
pub fn explore_observed(
    program: &Program,
    config: &MachineConfig,
    ec: &ExploreConfig,
    mut observer: Option<&mut ExploreObserver>,
) -> ExploreReport {
    let start = Instant::now();
    let mut cfg = *config;
    cfg.record_decisions = true;
    // One lowering shared by every run of the search (and every worker).
    let dense = Arc::new(DenseProgram::new(&program.module));

    let mut report = ExploreReport {
        strategy: ec.strategy.label(),
        mask: ec.mask.bits(),
        budget: ec.budget,
        schedules: 0,
        failures: 0,
        first_failure: None,
        frontier: 0,
        probe_decisions: 0,
        snapshots_taken: 0,
        snapshot_hits: 0,
        steps_saved: 0,
        dedup_skips: 0,
        independence_skips: 0,
        wave_widths: Vec::new(),
        wall_ms: 0,
        phases: ExplorePhases::default(),
    };
    let mut clock = PhaseClock::default();

    // Snapshots only pay off for the bounded tree (PCT runs share no
    // forced prefixes).
    let capture = match ec.strategy {
        ExploreStrategy::Bounded { .. } if ec.snapshot_budget > 0 => CAPTURE_PER_RUN,
        _ => 0,
    };

    // Schedule 0 in both strategies: the probe — the non-preemptive
    // default schedule (empty forced prefix). It measures PCT's `k`, is
    // the root of the bounded search tree, and catches bugs that need no
    // preemption at all.
    let probe_plan = RunPlan {
        prefix: Vec::new(),
        resume: None,
        capture,
    };
    let mut probe = run_frontier(program, &cfg, &dense, &probe_plan, ec.mask);
    report.probe_decisions = probe.trace.len() as u64;
    clock.note_run(&probe);
    if let Some(obs) = observer.as_deref_mut() {
        // The probe is a frontier (non-preemptive default) run under both
        // strategies.
        obs.observe_run(ExploreStrategy::Bounded { preemptions: 0 }, &probe);
    }
    let record = |report: &mut ExploreReport, index: usize, ex: &Executed| {
        report.schedules += 1;
        if ex.outcome.is_failure() {
            report.failures += 1;
            if report.first_failure.is_none() {
                report.first_failure = Some(FoundSchedule {
                    index,
                    outcome: ex.outcome.clone(),
                    trace: ex.trace.clone(),
                });
            }
        }
    };
    record(&mut report, 0, &probe);

    let pool = TrialPool::auto(ec.jobs);
    let done = |report: &ExploreReport| {
        report.schedules >= ec.budget || (ec.stop_at_first && report.first_failure.is_some())
    };

    match ec.strategy {
        ExploreStrategy::Pct { depth } => {
            let pct = PctConfig {
                depth,
                k: ec.pct_k.unwrap_or_else(|| report.probe_decisions.max(16)),
                mask: ec.mask,
            };
            let mut wave = 0usize;
            while !done(&report) {
                let wave_start = Instant::now();
                let base = report.schedules;
                // PCT runs are mutually independent — nothing flows between
                // waves except the stop-at-first check. Without it, the
                // 16 → 256 ramp only inserts fan-out barriers (a fresh
                // thread scope + channel drain per wave) between runs that
                // never needed to synchronize: on a full-budget search that
                // overhead ate the whole parallel speedup. One wave takes
                // the entire remaining budget instead; the ramp stays for
                // stop-at-first searches, where small early waves keep the
                // search from overshooting the first failure.
                let count = if ec.stop_at_first {
                    wave_width(ec, wave).min(ec.budget - base)
                } else {
                    ec.budget - base
                };
                report.wave_widths.push(count as u64);
                let results = pool.map(count, |j| {
                    run_pct(program, &cfg, &dense, ec.seed + (base + j) as u64, pct)
                });
                let merge_start = Instant::now();
                for (j, ex) in results.iter().enumerate() {
                    record(&mut report, base + j, ex);
                    clock.note_run(ex);
                    if let Some(obs) = observer.as_deref_mut() {
                        obs.observe_run(ec.strategy, ex);
                    }
                }
                clock.merge += merge_start.elapsed();
                report.phases = clock.to_phases();
                if let Some(obs) = observer.as_deref_mut() {
                    obs.observe_wave(
                        &report,
                        start.elapsed().as_millis() as u64,
                        &WaveObs {
                            wave: wave as u64,
                            width: count as u64,
                            executed: count as u64,
                            wall_us: wave_start.elapsed().as_micros() as u64,
                            frontier: 0,
                            tree_nodes: 0,
                            tree_evictions: 0,
                            last: done(&report),
                        },
                    );
                }
                wave += 1;
            }
        }
        ExploreStrategy::Bounded { preemptions } => {
            // Independence pruning is only sound when a consult's
            // transition is a single instruction wide: under sync-only
            // masks the silent continuation between consults performs
            // shared accesses the footprints don't see.
            let prune = ec.mask.contains(PointKind::SharedAccess);
            // Breadth-first over branch points; children are enqueued in
            // (parent schedule index, decision index, thread id) order, so
            // the visit order is deterministic.
            let mut queue: VecDeque<Vec<u32>> = VecDeque::new();
            let mut seen: HashSet<u64> = HashSet::new();
            let mut tree = SnapshotTree::new(ec.snapshot_budget);
            note_executed(&mut seen, 0, &probe.trace.decisions);
            absorb_snapshots(&mut tree, &mut report, &mut probe);
            push_children(&mut queue, &probe, 0, preemptions, prune, &mut report);
            let mut wave = 0usize;
            while !done(&report) {
                let wave_start = Instant::now();
                let base = report.schedules;
                let room = wave_width(ec, wave).min(ec.budget - base);
                // Once the frontier outgrows the tree budget, FIFO pops
                // lag inserts by more than the LRU can span: every capture
                // would be evicted unused. Stop capturing; while the queue
                // is still small, cap the wave's total inserts near the
                // tree budget so one wide wave cannot evict the ancestors
                // the next wave is about to resume from. Both knobs read
                // only wave-boundary state, so they stay jobs-invariant.
                let wave_capture = if queue.len() <= ec.snapshot_budget {
                    capture.min((ec.snapshot_budget / room.max(1)).max(1))
                } else {
                    0
                };
                // Assemble the wave on this thread: dedup, then ancestor
                // lookup — both in candidate order, so the cache behaves
                // identically whatever executes the batch.
                let assemble_start = Instant::now();
                let mut batch: Vec<RunPlan> = Vec::with_capacity(room);
                while batch.len() < room {
                    let Some(prefix) = queue.pop_front() else {
                        break;
                    };
                    if seen.contains(&prefix_hash(&prefix)) {
                        report.dedup_skips += 1;
                        continue;
                    }
                    let resume = tree.lookup(&prefix);
                    if let Some((snap, _, _)) = &resume {
                        report.snapshot_hits += 1;
                        report.steps_saved += snap.step();
                    }
                    batch.push(RunPlan {
                        prefix,
                        resume,
                        capture: wave_capture,
                    });
                }
                clock.merge += assemble_start.elapsed();
                if batch.is_empty() {
                    break;
                }
                let results = pool.map(batch.len(), |j| {
                    run_frontier(program, &cfg, &dense, &batch[j], ec.mask)
                });
                let merge_start = Instant::now();
                let executed = results.len();
                report.wave_widths.push(executed as u64);
                for (j, mut ex) in results.into_iter().enumerate() {
                    record(&mut report, base + j, &ex);
                    note_executed(&mut seen, batch[j].prefix.len(), &ex.trace.decisions);
                    absorb_snapshots(&mut tree, &mut report, &mut ex);
                    push_children(
                        &mut queue,
                        &ex,
                        batch[j].prefix.len(),
                        preemptions,
                        prune,
                        &mut report,
                    );
                    clock.note_run(&ex);
                    if let Some(obs) = observer.as_deref_mut() {
                        obs.observe_run(ec.strategy, &ex);
                    }
                }
                clock.merge += merge_start.elapsed();
                report.phases = clock.to_phases();
                if let Some(obs) = observer.as_deref_mut() {
                    obs.observe_wave(
                        &report,
                        start.elapsed().as_millis() as u64,
                        &WaveObs {
                            wave: wave as u64,
                            width: room as u64,
                            executed: executed as u64,
                            wall_us: wave_start.elapsed().as_micros() as u64,
                            frontier: queue.len() as u64,
                            tree_nodes: tree.len() as u64,
                            tree_evictions: tree.evictions,
                            last: done(&report) || queue.is_empty(),
                        },
                    );
                }
                wave += 1;
            }
            report.frontier = queue.len();
        }
    }

    report.phases = clock.to_phases();
    report.wall_ms = start.elapsed().as_millis() as u64;
    report
}

/// Enqueues every within-budget child of an executed schedule: for each
/// consult at or past the forced frontier, each unchosen eligible thread
/// becomes a new prefix — unless pruned as independent of the chosen
/// thread's step.
fn push_children(
    queue: &mut VecDeque<Vec<u32>>,
    ex: &Executed,
    frontier: usize,
    preemptions: usize,
    prune: bool,
    report: &mut ExploreReport,
) {
    debug_assert!(frontier >= ex.consult_base, "resume point is an ancestor");
    let mut used = ex.base_preemptions;
    for (j, c) in ex.consults.iter().enumerate() {
        let i = ex.consult_base + j;
        if i >= frontier {
            for &alt in &c.eligible {
                if alt == c.chosen {
                    continue;
                }
                let cost = used + usize::from(c.is_preemption_for(alt));
                if cost > preemptions {
                    continue;
                }
                if prune
                    && c.is_preemption_for(alt)
                    && c.footprint_for(c.chosen).independent(c.footprint_for(alt))
                {
                    report.independence_skips += 1;
                    continue;
                }
                let mut prefix = ex.trace.decisions[..i].to_vec();
                prefix.push(alt.index() as u32);
                queue.push_back(prefix);
            }
        }
        used += usize::from(c.is_preemption());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};

    /// reader asserts a flag that writer sets — fails only when the
    /// reader's load runs before the writer's store.
    fn order_violation() -> Program {
        let mut mb = ModuleBuilder::new("ov");
        let flag = mb.global("flag", 0);
        let mut fb = FuncBuilder::new("reader", 0);
        let v = fb.load_global(flag);
        let ok = fb.cmp(CmpKind::Ne, v, 0);
        fb.assert(ok, "writer must have published");
        fb.ret();
        mb.function(fb.finish());
        let mut fb = FuncBuilder::new("writer", 0);
        fb.store_global(flag, 1);
        fb.ret();
        mb.function(fb.finish());
        Program::from_entry_names(mb.finish(), &["reader", "writer"])
    }

    fn assert_finds_and_replays(strategy: ExploreStrategy, mask: PointMask) {
        let program = order_violation();
        let mut ec = ExploreConfig::new(strategy);
        ec.mask = mask;
        ec.budget = 64;
        let report = explore(&program, &MachineConfig::default(), &ec);
        let found = report.first_failure.as_ref().expect("bug found");
        assert!(found.outcome.is_failure());
        // Replay reproduces the outcome bit-identically.
        let cfg = MachineConfig {
            record_decisions: true,
            ..MachineConfig::default()
        };
        let (replayed, div) = super::super::replay::run_replay(&program, &cfg, &found.trace);
        assert_eq!(div, None, "clean replay");
        assert_eq!(replayed.outcome, found.outcome);
    }

    #[test]
    fn bounded_finds_order_violation() {
        assert_finds_and_replays(ExploreStrategy::Bounded { preemptions: 1 }, PointMask::SYNC);
    }

    #[test]
    fn pct_finds_order_violation() {
        assert_finds_and_replays(ExploreStrategy::Pct { depth: 3 }, PointMask::SYNC_SHARED);
    }

    #[test]
    fn results_identical_across_jobs() {
        let program = order_violation();
        for strategy in [
            ExploreStrategy::Pct { depth: 3 },
            ExploreStrategy::Bounded { preemptions: 2 },
        ] {
            let mut ec = ExploreConfig::new(strategy);
            ec.mask = PointMask::SYNC_SHARED;
            ec.budget = 48;
            ec.stop_at_first = false;
            let reports: Vec<ExploreReport> = [1usize, 2, 4]
                .iter()
                .map(|&jobs| {
                    let mut ec = ec.clone();
                    ec.jobs = jobs;
                    explore(&program, &MachineConfig::default(), &ec).normalized()
                })
                .collect();
            assert_eq!(reports[0], reports[1], "{strategy:?}: 1 vs 2 jobs");
            assert_eq!(reports[0], reports[2], "{strategy:?}: 1 vs 4 jobs");
        }
    }

    #[test]
    fn results_identical_with_cache_off() {
        let program = order_violation();
        let mut ec = ExploreConfig::new(ExploreStrategy::Bounded { preemptions: 2 });
        ec.mask = PointMask::SYNC_SHARED;
        ec.budget = 64;
        ec.stop_at_first = false;
        let cached = explore(&program, &MachineConfig::default(), &ec);
        ec.snapshot_budget = 0;
        let uncached = explore(&program, &MachineConfig::default(), &ec);
        assert_eq!(uncached.snapshots_taken, 0);
        assert_eq!(uncached.snapshot_hits, 0);
        assert_eq!(uncached.steps_saved, 0);
        assert_eq!(cached.normalized(), uncached.normalized());
        assert!(cached.snapshot_hits > 0, "the tree explores deep prefixes");
    }

    #[test]
    fn dedup_guard_confirms_schedule_uniqueness() {
        // The frontier discipline (children only at-or-past the forced
        // prefix, deterministic default continuation) generates each
        // distinct schedule at most once — the seen-set is the *runtime
        // enforcement* of that invariant, and this test pins it: on an
        // exhausted tree the guard found nothing to skip, i.e. every
        // executed schedule really was unique.
        let program = order_violation();
        let mut ec = ExploreConfig::new(ExploreStrategy::Bounded { preemptions: 2 });
        ec.mask = PointMask::SYNC_SHARED;
        ec.budget = 10_000;
        ec.stop_at_first = false;
        let report = explore(&program, &MachineConfig::default(), &ec);
        assert_eq!(report.frontier, 0, "tree exhausted");
        assert_eq!(report.dedup_skips, 0, "enumeration is duplicate-free");
    }

    #[test]
    fn pinned_wave_width_still_finds_the_bug() {
        let program = order_violation();
        let mut ec = ExploreConfig::new(ExploreStrategy::Bounded { preemptions: 1 });
        ec.wave = Some(4);
        ec.budget = 64;
        let report = explore(&program, &MachineConfig::default(), &ec);
        assert!(report.first_failure.is_some());
    }

    #[test]
    fn budget_caps_schedules() {
        let program = order_violation();
        // PCT generates schedules indefinitely, so the budget is the only cap.
        let mut ec = ExploreConfig::new(ExploreStrategy::Pct { depth: 3 });
        ec.mask = PointMask::SYNC_SHARED;
        ec.budget = 5;
        ec.stop_at_first = false;
        let report = explore(&program, &MachineConfig::default(), &ec);
        assert_eq!(report.schedules, 5);
    }

    #[test]
    fn bounded_search_exhausts_small_trees_under_budget() {
        let program = order_violation();
        let mut ec = ExploreConfig::new(ExploreStrategy::Bounded { preemptions: 2 });
        ec.mask = PointMask::SYNC_SHARED;
        ec.budget = 10_000;
        ec.stop_at_first = false;
        let report = explore(&program, &MachineConfig::default(), &ec);
        // The whole tree fits well under the budget and the frontier drains.
        assert!(report.schedules < ec.budget);
        assert_eq!(report.frontier, 0);
        assert!(report.failures >= 1);
    }

    #[test]
    fn snapshot_tree_lru_evicts_deterministically() {
        use crate::sched::basic::RoundRobin;
        // Build a real snapshot to populate entries with.
        let program = order_violation();
        let cfg = MachineConfig {
            record_decisions: true,
            ..MachineConfig::default()
        };
        let mut sched = RoundRobin::default();
        let (_, snaps) = Machine::new(&program, cfg).run_captured(&mut sched, 1, 1);
        let (_, snap) = snaps.into_iter().next().expect("one capture");

        let mut tree = SnapshotTree::new(2);
        assert!(tree.insert(&[0], snap.clone(), 0));
        assert!(tree.insert(&[0, 1], snap.clone(), 1));
        assert!(!tree.insert(&[0, 1], snap.clone(), 1), "no duplicate keys");
        // Touch [0] so [0, 1] is the LRU victim.
        assert!(tree.lookup(&[0, 7]).is_some());
        assert!(tree.insert(&[1], snap.clone(), 0));
        assert!(
            tree.lookup(&[0, 1]).map(|(_, d, _)| d) == Some(1),
            "evicted to ancestor"
        );
        // Deepest ancestor wins and carries its preemption count.
        assert!(tree.insert(&[1, 2], snap, 1));
        let (_, depth, pre) = tree.lookup(&[1, 2, 3]).expect("ancestor");
        assert_eq!((depth, pre), (2, 1));
        // Budget 0 disables everything.
        let mut off = SnapshotTree::new(0);
        assert!(off.lookup(&[0]).is_none());
    }

    #[test]
    fn report_derived_stats() {
        let mut report = ExploreReport {
            strategy: "pct(d=3)".into(),
            mask: PointMask::SYNC.bits(),
            budget: 100,
            schedules: 50,
            failures: 2,
            first_failure: None,
            frontier: 0,
            probe_decisions: 10,
            snapshots_taken: 7,
            snapshot_hits: 5,
            steps_saved: 900,
            dedup_skips: 3,
            independence_skips: 2,
            wave_widths: vec![16, 34],
            wall_ms: 123,
            phases: ExplorePhases {
                capture_us: 10,
                restore_us: 20,
                interpret_us: 30,
                merge_us: 40,
                minimize_us: 50,
            },
        };
        assert!((report.failures_per_1k() - 40.0).abs() < 1e-9);
        assert_eq!(report.first_failure_depth(), None);
        let norm = report.normalized();
        assert_eq!(norm.wall_ms, 0);
        assert_eq!(norm.snapshots_taken, 0);
        assert_eq!(norm.snapshot_hits, 0);
        assert_eq!(norm.steps_saved, 0);
        assert_eq!(norm.dedup_skips, 3, "search-shape counters survive");
        assert_eq!(norm.independence_skips, 2);
        assert_eq!(norm.wave_widths, vec![16, 34], "widths are search shape");
        assert_eq!(
            norm.phases,
            ExplorePhases::default(),
            "phases are wall time"
        );
        assert_eq!(report.phases.total_us(), 150);
        report.schedules = 0;
        assert_eq!(report.failures_per_1k(), 0.0);
    }

    #[test]
    fn unobserved_explore_allocates_no_registry() {
        let _guard = crate::metrics::registry_test_guard();
        let program = order_violation();
        let mut ec = ExploreConfig::new(ExploreStrategy::Bounded { preemptions: 2 });
        ec.mask = PointMask::SYNC_SHARED;
        ec.budget = 48;
        ec.stop_at_first = false;
        // A registry allocated before the run must see no counter traffic
        // from it…
        let bystander = MetricsRegistry::new();
        let quiet = bystander.render_prometheus();
        let before = MetricsRegistry::instances();
        let report = explore(&program, &MachineConfig::default(), &ec);
        // …and the run itself must not have allocated any registry.
        assert_eq!(
            MetricsRegistry::instances(),
            before,
            "unobserved explore constructed a registry"
        );
        assert_eq!(
            bystander.render_prometheus(),
            quiet,
            "unobserved explore touched a registry"
        );
        assert!(report.schedules > 0);
    }

    #[test]
    fn observed_explore_reports_identically_and_populates_registry() {
        use crate::trace::EventBuffer;
        let _guard = crate::metrics::registry_test_guard();
        let program = order_violation();
        for strategy in [
            ExploreStrategy::Bounded { preemptions: 2 },
            ExploreStrategy::Pct { depth: 3 },
        ] {
            let mut ec = ExploreConfig::new(strategy);
            ec.mask = PointMask::SYNC_SHARED;
            ec.budget = 48;
            ec.stop_at_first = false;
            let plain = explore(&program, &MachineConfig::default(), &ec);
            let registry = MetricsRegistry::new();
            let buffer = EventBuffer::new();
            let mut obs = ExploreObserver::new(registry.clone())
                .with_sink(Box::new(buffer.clone()))
                .with_interval_ms(0);
            let observed =
                explore_observed(&program, &MachineConfig::default(), &ec, Some(&mut obs));
            assert_eq!(
                plain.normalized(),
                observed.normalized(),
                "{strategy:?}: observability changed the report"
            );
            assert_eq!(registry.schedules.get(), observed.schedules as u64);
            assert_eq!(registry.failures.get(), observed.failures as u64);
            assert!(registry.waves.get() > 0);
            let events = buffer.take();
            let waves = events
                .iter()
                .filter(|e| matches!(e, TraceEvent::ExploreWave { .. }))
                .count();
            assert_eq!(waves as u64, registry.waves.get());
            let last_progress = events
                .iter()
                .rev()
                .find_map(|e| match e {
                    TraceEvent::ExploreProgress { schedules, .. } => Some(*schedules),
                    _ => None,
                })
                .expect("interval 0 samples every wave");
            assert_eq!(last_progress, observed.schedules as u64);
            match strategy {
                ExploreStrategy::Bounded { .. } => {
                    assert!(registry.decisions_bounded.get() > 0);
                    assert_eq!(registry.snapshots_taken.get(), observed.snapshots_taken);
                }
                ExploreStrategy::Pct { .. } => assert!(registry.decisions_pct.get() > 0),
            }
            assert!(
                observed.phases.interpret_us > 0 || observed.wall_ms == 0,
                "interpretation dominates a real exploration"
            );
        }
    }

    #[test]
    fn report_deserialize_tolerates_pre_phases_schema() {
        // A PR 5-era report: no `phases`. Core fields required, newer
        // counters default.
        let old = r#"{
            "strategy": "bounded(k=2)", "mask": 3, "budget": 64,
            "schedules": 10, "failures": 1, "first_failure": null,
            "frontier": 0, "probe_decisions": 7, "snapshots_taken": 4,
            "snapshot_hits": 2, "steps_saved": 100, "dedup_skips": 0,
            "independence_skips": 5, "wall_ms": 12
        }"#;
        let report: ExploreReport = serde_json::from_str(old).unwrap();
        assert_eq!(report.schedules, 10);
        assert_eq!(report.snapshot_hits, 2);
        assert_eq!(report.phases, ExplorePhases::default());
        // Pre-snapshot-tree (PR 4) reports load too.
        let older = r#"{
            "strategy": "pct(d=3)", "mask": 3, "budget": 64,
            "schedules": 10, "failures": 0, "first_failure": null,
            "frontier": 0, "probe_decisions": 7, "wall_ms": 12
        }"#;
        let report: ExploreReport = serde_json::from_str(older).unwrap();
        assert_eq!(report.steps_saved, 0);
        // Non-report JSON (e.g. a decision trace) still fails: core fields
        // stay required, so format sniffing cannot mis-accept it.
        let trace = r#"{"scheduler": "pct", "seed": 3, "mask": 3, "decisions": []}"#;
        assert!(serde_json::from_str::<ExploreReport>(trace).is_err());
        // And the current schema round-trips.
        let mut current = ExploreReport {
            strategy: "bounded(k=1)".into(),
            mask: 1,
            budget: 8,
            schedules: 8,
            failures: 0,
            first_failure: None,
            frontier: 2,
            probe_decisions: 3,
            snapshots_taken: 1,
            snapshot_hits: 1,
            steps_saved: 9,
            dedup_skips: 0,
            independence_skips: 0,
            wave_widths: vec![4, 4],
            wall_ms: 1,
            phases: ExplorePhases::default(),
        };
        current.phases.capture_us = 77;
        let back: ExploreReport =
            serde_json::from_str(&serde_json::to_string(&current).unwrap()).unwrap();
        assert_eq!(back, current);
    }
}
