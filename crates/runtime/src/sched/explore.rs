//! Schedule-space exploration: drive many schedules at a program until one
//! fails, with deterministic parallel fan-out.
//!
//! Two strategies share one engine:
//!
//! * **PCT** — independent randomized-priority runs seeded `seed+1,
//!   seed+2, …` after a probe run that measures `k` (decisions per run).
//! * **Bounded preemption** — systematic breadth-first enumeration of the
//!   schedule tree: each executed schedule's consults spawn children that
//!   replay the decisions up to a branch point and pick a different
//!   eligible thread there, as long as the path's preemption count stays
//!   within budget.
//!
//! Schedules execute in fixed-size waves fanned across a
//! [`TrialPool`](crate::TrialPool); results merge in schedule-index order
//! and the engine stops after the first wave containing a failure. Wave
//! size is independent of `--jobs`, so the explored set, the failure
//! counts and the first failing schedule are **bit-identical across job
//! counts** — parallelism changes wall time only.

use std::collections::VecDeque;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use super::bounded::FrontierScheduler;
use super::decision::DecisionTrace;
use super::pct::{PctConfig, PctScheduler};
use super::point::PointMask;
use crate::harness::TrialPool;
use crate::machine::{Machine, MachineConfig};
use crate::outcome::RunOutcome;
use crate::program::Program;

/// Schedules per wave. A constant (never derived from `jobs`): the
/// explored schedule set depends only on the strategy and budget.
const WAVE: usize = 16;

/// Which search strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExploreStrategy {
    /// PCT randomized priorities with the given bug depth.
    Pct {
        /// Bug depth `d` (see [`PctConfig::depth`]).
        depth: usize,
    },
    /// Bounded-preemption systematic search.
    Bounded {
        /// Maximum preemptions per schedule.
        preemptions: usize,
    },
}

impl ExploreStrategy {
    /// A stable report label.
    pub fn label(&self) -> String {
        match self {
            ExploreStrategy::Pct { depth } => format!("pct(d={depth})"),
            ExploreStrategy::Bounded { preemptions } => format!("bounded(k={preemptions})"),
        }
    }
}

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// The strategy.
    pub strategy: ExploreStrategy,
    /// Base seed (PCT run `i` uses `seed + i`).
    pub seed: u64,
    /// Maximum schedules to execute.
    pub budget: usize,
    /// Worker threads for the wave fan-out (wall time only — results are
    /// identical across job counts).
    pub jobs: usize,
    /// The decision mask schedules run under.
    pub mask: PointMask,
    /// Stop at the end of the first wave that contains a failure (the
    /// default). `false` exhausts the budget — for measuring failure
    /// density and throughput.
    pub stop_at_first: bool,
    /// Override PCT's `k` instead of probing for it.
    pub pct_k: Option<u64>,
}

impl ExploreConfig {
    /// Defaults: seed 1, budget 256, sequential, sync mask, stop at first
    /// failure.
    pub fn new(strategy: ExploreStrategy) -> Self {
        Self {
            strategy,
            seed: 1,
            budget: 256,
            jobs: 1,
            mask: PointMask::SYNC,
            stop_at_first: true,
            pct_k: None,
        }
    }
}

/// A failing schedule the exploration found.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoundSchedule {
    /// Schedule index within the exploration (0 = the probe / root).
    pub index: usize,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// The recorded decisions — replayable and minimizable.
    pub trace: DecisionTrace,
}

/// What an exploration did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploreReport {
    /// Strategy label (e.g. `pct(d=3)`).
    pub strategy: String,
    /// Decision-mask bits the exploration ran under.
    pub mask: u8,
    /// The schedule budget.
    pub budget: usize,
    /// Schedules actually executed.
    pub schedules: usize,
    /// Executed schedules that failed (failure, hang, or step-limit).
    pub failures: usize,
    /// The first failing schedule, by schedule index.
    pub first_failure: Option<FoundSchedule>,
    /// Bounded search only: branch points still queued when the
    /// exploration stopped (0 = tree exhausted within budget).
    pub frontier: usize,
    /// Decisions the probe (schedule 0, the non-preemptive default run)
    /// made — PCT's measured `k`.
    pub probe_decisions: u64,
    /// Wall-clock milliseconds (the only nondeterministic field).
    pub wall_ms: u64,
}

impl ExploreReport {
    /// Failures per thousand executed schedules.
    pub fn failures_per_1k(&self) -> f64 {
        if self.schedules == 0 {
            0.0
        } else {
            self.failures as f64 * 1000.0 / self.schedules as f64
        }
    }

    /// Decision depth of the first failing schedule.
    pub fn first_failure_depth(&self) -> Option<usize> {
        self.first_failure.as_ref().map(|f| f.trace.len())
    }

    /// A copy with the nondeterministic wall time zeroed — equal across
    /// `--jobs` values by construction (asserted in tests and CI).
    pub fn normalized(&self) -> Self {
        Self {
            wall_ms: 0,
            ..self.clone()
        }
    }
}

/// One executed schedule: outcome + recorded decisions (+ consults when a
/// frontier scheduler ran it).
struct Executed {
    outcome: RunOutcome,
    trace: DecisionTrace,
    consults: Vec<super::bounded::Consult>,
}

fn run_frontier(
    program: &Program,
    config: &MachineConfig,
    prefix: Vec<u32>,
    mask: PointMask,
) -> Executed {
    let mut sched = FrontierScheduler::new(prefix, mask);
    let result = Machine::new(program, *config).run(&mut sched);
    debug_assert!(!sched.infeasible(), "prefixes come from recorded runs");
    Executed {
        outcome: result.outcome,
        trace: result
            .decisions
            .unwrap_or_else(|| DecisionTrace::new("bounded", 0, mask)),
        consults: sched.into_consults(),
    }
}

fn run_pct(program: &Program, config: &MachineConfig, seed: u64, cfg: PctConfig) -> Executed {
    let mut sched = PctScheduler::new(seed, cfg);
    let result = Machine::new(program, *config).run(&mut sched);
    let mut trace = result
        .decisions
        .unwrap_or_else(|| DecisionTrace::new("pct", seed, cfg.mask));
    trace.seed = seed;
    Executed {
        outcome: result.outcome,
        trace,
        consults: Vec::new(),
    }
}

/// Explores schedules of `program` under `config` per `ec`.
///
/// No schedule script is involved: exploration exists to find
/// failure-inducing interleavings *without* hand-written gates.
pub fn explore(program: &Program, config: &MachineConfig, ec: &ExploreConfig) -> ExploreReport {
    let start = Instant::now();
    let mut cfg = *config;
    cfg.record_decisions = true;

    let mut report = ExploreReport {
        strategy: ec.strategy.label(),
        mask: ec.mask.bits(),
        budget: ec.budget,
        schedules: 0,
        failures: 0,
        first_failure: None,
        frontier: 0,
        probe_decisions: 0,
        wall_ms: 0,
    };

    // Schedule 0 in both strategies: the probe — the non-preemptive
    // default schedule (empty forced prefix). It measures PCT's `k`, is
    // the root of the bounded search tree, and catches bugs that need no
    // preemption at all.
    let probe = run_frontier(program, &cfg, Vec::new(), ec.mask);
    report.probe_decisions = probe.trace.len() as u64;
    let record = |report: &mut ExploreReport, index: usize, ex: &Executed| {
        report.schedules += 1;
        if ex.outcome.is_failure() {
            report.failures += 1;
            if report.first_failure.is_none() {
                report.first_failure = Some(FoundSchedule {
                    index,
                    outcome: ex.outcome.clone(),
                    trace: ex.trace.clone(),
                });
            }
        }
    };
    record(&mut report, 0, &probe);

    let pool = TrialPool::new(ec.jobs);
    let done = |report: &ExploreReport| {
        report.schedules >= ec.budget || (ec.stop_at_first && report.first_failure.is_some())
    };

    match ec.strategy {
        ExploreStrategy::Pct { depth } => {
            let pct = PctConfig {
                depth,
                k: ec.pct_k.unwrap_or_else(|| report.probe_decisions.max(16)),
                mask: ec.mask,
            };
            while !done(&report) {
                let base = report.schedules;
                let count = WAVE.min(ec.budget - base);
                let wave = pool.map(count, |j| {
                    run_pct(program, &cfg, ec.seed + (base + j) as u64, pct)
                });
                for (j, ex) in wave.iter().enumerate() {
                    record(&mut report, base + j, ex);
                }
            }
        }
        ExploreStrategy::Bounded { preemptions } => {
            // Breadth-first over branch points; children are enqueued in
            // (parent schedule index, decision index, thread id) order, so
            // the visit order is deterministic.
            let mut queue: VecDeque<Vec<u32>> = VecDeque::new();
            push_children(&mut queue, &probe, 0, preemptions);
            while !done(&report) && !queue.is_empty() {
                let base = report.schedules;
                let count = WAVE.min(ec.budget - base).min(queue.len());
                let batch: Vec<Vec<u32>> = queue.drain(..count).collect();
                let wave = pool.map(count, |j| {
                    run_frontier(program, &cfg, batch[j].clone(), ec.mask)
                });
                for (j, ex) in wave.iter().enumerate() {
                    record(&mut report, base + j, ex);
                    push_children(&mut queue, ex, batch[j].len(), preemptions);
                }
            }
            report.frontier = queue.len();
        }
    }

    report.wall_ms = start.elapsed().as_millis() as u64;
    report
}

/// Enqueues every within-budget child of an executed schedule: for each
/// consult at or past the forced frontier, each unchosen eligible thread
/// becomes a new prefix.
fn push_children(
    queue: &mut VecDeque<Vec<u32>>,
    ex: &Executed,
    frontier: usize,
    preemptions: usize,
) {
    let mut used = 0usize;
    for (i, c) in ex.consults.iter().enumerate() {
        if i >= frontier {
            for &alt in &c.eligible {
                if alt == c.chosen {
                    continue;
                }
                let cost = used + usize::from(c.is_preemption_for(alt));
                if cost <= preemptions {
                    let mut prefix = ex.trace.decisions[..i].to_vec();
                    prefix.push(alt.index() as u32);
                    queue.push_back(prefix);
                }
            }
        }
        used += usize::from(c.is_preemption());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};

    /// reader asserts a flag that writer sets — fails only when the
    /// reader's load runs before the writer's store.
    fn order_violation() -> Program {
        let mut mb = ModuleBuilder::new("ov");
        let flag = mb.global("flag", 0);
        let mut fb = FuncBuilder::new("reader", 0);
        let v = fb.load_global(flag);
        let ok = fb.cmp(CmpKind::Ne, v, 0);
        fb.assert(ok, "writer must have published");
        fb.ret();
        mb.function(fb.finish());
        let mut fb = FuncBuilder::new("writer", 0);
        fb.store_global(flag, 1);
        fb.ret();
        mb.function(fb.finish());
        Program::from_entry_names(mb.finish(), &["reader", "writer"])
    }

    fn assert_finds_and_replays(strategy: ExploreStrategy, mask: PointMask) {
        let program = order_violation();
        let mut ec = ExploreConfig::new(strategy);
        ec.mask = mask;
        ec.budget = 64;
        let report = explore(&program, &MachineConfig::default(), &ec);
        let found = report.first_failure.as_ref().expect("bug found");
        assert!(found.outcome.is_failure());
        // Replay reproduces the outcome bit-identically.
        let cfg = MachineConfig {
            record_decisions: true,
            ..MachineConfig::default()
        };
        let (replayed, div) = super::super::replay::run_replay(&program, &cfg, &found.trace);
        assert_eq!(div, None, "clean replay");
        assert_eq!(replayed.outcome, found.outcome);
    }

    #[test]
    fn bounded_finds_order_violation() {
        assert_finds_and_replays(ExploreStrategy::Bounded { preemptions: 1 }, PointMask::SYNC);
    }

    #[test]
    fn pct_finds_order_violation() {
        assert_finds_and_replays(ExploreStrategy::Pct { depth: 3 }, PointMask::SYNC_SHARED);
    }

    #[test]
    fn results_identical_across_jobs() {
        let program = order_violation();
        for strategy in [
            ExploreStrategy::Pct { depth: 3 },
            ExploreStrategy::Bounded { preemptions: 2 },
        ] {
            let mut ec = ExploreConfig::new(strategy);
            ec.mask = PointMask::SYNC_SHARED;
            ec.budget = 48;
            ec.stop_at_first = false;
            let reports: Vec<ExploreReport> = [1usize, 2, 4]
                .iter()
                .map(|&jobs| {
                    let mut ec = ec.clone();
                    ec.jobs = jobs;
                    explore(&program, &MachineConfig::default(), &ec).normalized()
                })
                .collect();
            assert_eq!(reports[0], reports[1], "{strategy:?}: 1 vs 2 jobs");
            assert_eq!(reports[0], reports[2], "{strategy:?}: 1 vs 4 jobs");
        }
    }

    #[test]
    fn budget_caps_schedules() {
        let program = order_violation();
        // PCT generates schedules indefinitely, so the budget is the only cap.
        let mut ec = ExploreConfig::new(ExploreStrategy::Pct { depth: 3 });
        ec.mask = PointMask::SYNC_SHARED;
        ec.budget = 5;
        ec.stop_at_first = false;
        let report = explore(&program, &MachineConfig::default(), &ec);
        assert_eq!(report.schedules, 5);
    }

    #[test]
    fn bounded_search_exhausts_small_trees_under_budget() {
        let program = order_violation();
        let mut ec = ExploreConfig::new(ExploreStrategy::Bounded { preemptions: 2 });
        ec.mask = PointMask::SYNC_SHARED;
        ec.budget = 10_000;
        ec.stop_at_first = false;
        let report = explore(&program, &MachineConfig::default(), &ec);
        // The whole tree fits well under the budget and the frontier drains.
        assert!(report.schedules < ec.budget);
        assert_eq!(report.frontier, 0);
        assert!(report.failures >= 1);
    }

    #[test]
    fn report_derived_stats() {
        let mut report = ExploreReport {
            strategy: "pct(d=3)".into(),
            mask: PointMask::SYNC.bits(),
            budget: 100,
            schedules: 50,
            failures: 2,
            first_failure: None,
            frontier: 0,
            probe_decisions: 10,
            wall_ms: 123,
        };
        assert!((report.failures_per_1k() - 40.0).abs() < 1e-9);
        assert_eq!(report.first_failure_depth(), None);
        assert_eq!(report.normalized().wall_ms, 0);
        report.schedules = 0;
        assert_eq!(report.failures_per_1k(), 0.0);
    }
}
