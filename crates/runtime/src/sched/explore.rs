//! Schedule-space exploration: drive many schedules at a program until one
//! fails, with deterministic parallel fan-out and prefix-sharing snapshot
//! reuse.
//!
//! Two strategies share one engine:
//!
//! * **PCT** — independent randomized-priority runs seeded `seed+1,
//!   seed+2, …` after a probe run that measures `k` (decisions per run).
//! * **Bounded preemption** — systematic breadth-first enumeration of the
//!   schedule tree: each executed schedule's consults spawn children that
//!   replay the decisions up to a branch point and pick a different
//!   eligible thread there, as long as the path's preemption count stays
//!   within budget.
//!
//! Schedules execute in waves fanned across a
//! [`TrialPool`](crate::TrialPool); results merge in schedule-index order.
//! Wave widths ramp 16 → 256 as a function of the wave index only (never
//! of `--jobs`), so the explored set, the failure counts and the first
//! failing schedule are **bit-identical across job counts** — parallelism
//! changes wall time only.
//!
//! Three layers make the bounded search cheap without changing what it
//! reports (all deterministic, all enforced bit-identical by tests):
//!
//! * **Prefix-sharing snapshot tree** — bounded/CHESS neighbors share long
//!   decision prefixes by construction, so executed runs deposit
//!   [`MachineSnapshot`]s keyed by decision prefix into a [`SnapshotTree`]
//!   (LRU-bounded by `--snapshot-budget`), and each candidate resumes from
//!   its deepest retained ancestor instead of interpreting from step zero.
//! * **Decision-trace dedup** — past its forced prefix a candidate
//!   continues deterministically, so every forced-or-longer prefix of an
//!   executed trace identifies a schedule whose whole run is already
//!   known. Candidates hashing into that set are skipped, not re-run.
//! * **Independence pruning** (masks that include shared accesses only,
//!   where a consult's transition is exactly one instruction wide) — an
//!   alternative whose next instruction provably commutes with the chosen
//!   thread's is not enqueued as a preemption point.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use super::bounded::{Consult, FrontierScheduler};
use super::decision::DecisionTrace;
use super::pct::{PctConfig, PctScheduler};
use super::point::{PointKind, PointMask};
use crate::dense::DenseProgram;
use crate::harness::TrialPool;
use crate::machine::{Machine, MachineConfig, MachineSnapshot};
use crate::outcome::RunOutcome;
use crate::program::Program;

/// First-wave width; widths double each wave up to [`WAVE_MAX`]. Small
/// early waves keep stop-at-first searches from overshooting the first
/// failure; large late waves amortize the fan-out barrier (the fixed
/// 16-wide waves of the first engine cost PCT its parallel speedup).
const WAVE_BASE: usize = 16;

/// Wave-width ceiling.
const WAVE_MAX: usize = 256;

/// Snapshots one run may deposit into the tree: captures cover decision
/// indices `[frontier, frontier + CAPTURE_PER_RUN)`, exactly where the
/// run's own children branch.
const CAPTURE_PER_RUN: usize = 64;

/// Which search strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExploreStrategy {
    /// PCT randomized priorities with the given bug depth.
    Pct {
        /// Bug depth `d` (see [`PctConfig::depth`]).
        depth: usize,
    },
    /// Bounded-preemption systematic search.
    Bounded {
        /// Maximum preemptions per schedule.
        preemptions: usize,
    },
}

impl ExploreStrategy {
    /// A stable report label.
    pub fn label(&self) -> String {
        match self {
            ExploreStrategy::Pct { depth } => format!("pct(d={depth})"),
            ExploreStrategy::Bounded { preemptions } => format!("bounded(k={preemptions})"),
        }
    }
}

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// The strategy.
    pub strategy: ExploreStrategy,
    /// Base seed (PCT run `i` uses `seed + i`).
    pub seed: u64,
    /// Maximum schedules to execute.
    pub budget: usize,
    /// Worker threads for the wave fan-out (wall time only — results are
    /// identical across job counts).
    pub jobs: usize,
    /// The decision mask schedules run under.
    pub mask: PointMask,
    /// Stop at the end of the first wave that contains a failure (the
    /// default). `false` exhausts the budget — for measuring failure
    /// density and throughput.
    pub stop_at_first: bool,
    /// Override PCT's `k` instead of probing for it.
    pub pct_k: Option<u64>,
    /// Retained snapshots the prefix tree may hold (bounded search only;
    /// `0` disables the cache entirely). Pure perf: reports are
    /// bit-identical at any value.
    pub snapshot_budget: usize,
    /// Pin every wave to this width instead of the 16 → 256 ramp.
    pub wave: Option<usize>,
}

impl ExploreConfig {
    /// Defaults: seed 1, budget 256, sequential, sync mask, stop at first
    /// failure, 256 retained snapshots, ramped wave widths.
    pub fn new(strategy: ExploreStrategy) -> Self {
        Self {
            strategy,
            seed: 1,
            budget: 256,
            jobs: 1,
            mask: PointMask::SYNC,
            stop_at_first: true,
            pct_k: None,
            snapshot_budget: 256,
            wave: None,
        }
    }
}

/// A failing schedule the exploration found.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoundSchedule {
    /// Schedule index within the exploration (0 = the probe / root).
    pub index: usize,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// The recorded decisions — replayable and minimizable.
    pub trace: DecisionTrace,
}

/// What an exploration did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploreReport {
    /// Strategy label (e.g. `pct(d=3)`).
    pub strategy: String,
    /// Decision-mask bits the exploration ran under.
    pub mask: u8,
    /// The schedule budget.
    pub budget: usize,
    /// Schedules actually executed.
    pub schedules: usize,
    /// Executed schedules that failed (failure, hang, or step-limit).
    pub failures: usize,
    /// The first failing schedule, by schedule index.
    pub first_failure: Option<FoundSchedule>,
    /// Bounded search only: branch points still queued when the
    /// exploration stopped (0 = tree exhausted within budget).
    pub frontier: usize,
    /// Decisions the probe (schedule 0, the non-preemptive default run)
    /// made — PCT's measured `k`.
    pub probe_decisions: u64,
    /// Snapshots deposited into the prefix tree (0 with the cache off).
    pub snapshots_taken: u64,
    /// Executed schedules that resumed from a retained ancestor snapshot
    /// instead of interpreting from step zero.
    pub snapshot_hits: u64,
    /// Interpreter steps those resumes skipped (sum of resumed snapshots'
    /// step counters).
    pub steps_saved: u64,
    /// Candidate schedules skipped because their decision trace was
    /// provably already executed (cache-independent, so *not* zeroed by
    /// [`ExploreReport::normalized`]).
    pub dedup_skips: u64,
    /// Branch alternatives never enqueued because their footprint provably
    /// commuted with the chosen thread's (cache-independent).
    pub independence_skips: u64,
    /// Wall-clock milliseconds (the only nondeterministic field).
    pub wall_ms: u64,
}

impl ExploreReport {
    /// Failures per thousand executed schedules.
    pub fn failures_per_1k(&self) -> f64 {
        if self.schedules == 0 {
            0.0
        } else {
            self.failures as f64 * 1000.0 / self.schedules as f64
        }
    }

    /// Decision depth of the first failing schedule.
    pub fn first_failure_depth(&self) -> Option<usize> {
        self.first_failure.as_ref().map(|f| f.trace.len())
    }

    /// A copy with the nondeterministic wall time and the cache-dependent
    /// perf counters zeroed — equal across `--jobs` values *and* across
    /// snapshot budgets by construction (asserted in tests and CI).
    /// `dedup_skips`/`independence_skips` are kept: they are functions of
    /// the search alone, not of the cache.
    pub fn normalized(&self) -> Self {
        Self {
            wall_ms: 0,
            snapshots_taken: 0,
            snapshot_hits: 0,
            steps_saved: 0,
            ..self.clone()
        }
    }
}

/// One executed schedule: outcome + recorded decisions (+ consults and
/// captured snapshots when a frontier scheduler ran it).
struct Executed {
    outcome: RunOutcome,
    trace: DecisionTrace,
    consults: Vec<Consult>,
    /// Decision index of the first recorded consult: the snapshot depth
    /// when the run resumed mid-tree, 0 from scratch.
    consult_base: usize,
    /// Preemptions spent by the decisions before `consult_base`.
    base_preemptions: usize,
    /// Captured snapshots `(decision depth, image)`, ascending depth.
    snaps: Vec<(usize, MachineSnapshot)>,
}

/// How to execute one candidate schedule.
struct RunPlan {
    /// Forced decision prefix.
    prefix: Vec<u32>,
    /// Deepest retained ancestor `(image, depth, preemptions before it)`,
    /// when the tree held one.
    resume: Option<(Arc<MachineSnapshot>, usize, usize)>,
    /// Maximum snapshots this run may capture (0 = none).
    capture: usize,
}

fn run_frontier<'p>(
    program: &'p Program,
    config: &MachineConfig,
    dense: &Arc<DenseProgram<'p>>,
    plan: &RunPlan,
    mask: PointMask,
) -> Executed {
    let mut machine = Machine::with_shared_dense(program, dense.clone(), *config);
    let (mut sched, consult_base, base_preemptions) = match &plan.resume {
        Some((snap, depth, pre)) => {
            machine.restore_from(snap);
            (
                FrontierScheduler::resume(plan.prefix.clone(), *depth, mask),
                *depth,
                *pre,
            )
        }
        None => (FrontierScheduler::new(plan.prefix.clone(), mask), 0, 0),
    };
    // Capture where this run's own children will branch: at and past the
    // forced frontier (the depth-0 root state saves nothing — skip it).
    let capture_from = plan.prefix.len().max(1);
    let (result, snaps) = machine.run_captured(&mut sched, capture_from, plan.capture);
    debug_assert!(!sched.infeasible(), "prefixes come from recorded runs");
    Executed {
        outcome: result.outcome,
        trace: result
            .decisions
            .unwrap_or_else(|| DecisionTrace::new("bounded", 0, mask)),
        consults: sched.into_consults(),
        consult_base,
        base_preemptions,
        snaps,
    }
}

fn run_pct<'p>(
    program: &'p Program,
    config: &MachineConfig,
    dense: &Arc<DenseProgram<'p>>,
    seed: u64,
    cfg: PctConfig,
) -> Executed {
    let mut sched = PctScheduler::new(seed, cfg);
    let result = Machine::with_shared_dense(program, dense.clone(), *config).run(&mut sched);
    let mut trace = result
        .decisions
        .unwrap_or_else(|| DecisionTrace::new("pct", seed, cfg.mask));
    trace.seed = seed;
    Executed {
        outcome: result.outcome,
        trace,
        consults: Vec::new(),
        consult_base: 0,
        base_preemptions: 0,
        snaps: Vec::new(),
    }
}

/// Retained snapshots keyed by decision prefix — a trie over the
/// [`DecisionTrace`] u32 log, stored flat (the keys *are* the paths).
///
/// All lookups and inserts happen on the exploring thread in
/// schedule-index order, so hits, evictions and the LRU clock are
/// deterministic and identical across `--jobs`. Workers only ever read
/// images through the `Arc`.
struct SnapshotTree {
    budget: usize,
    nodes: HashMap<Vec<u32>, TreeNode>,
    clock: u64,
}

struct TreeNode {
    snap: Arc<MachineSnapshot>,
    /// Preemptions spent by the first `depth` decisions of any schedule
    /// through this node (a function of the prefix alone).
    preemptions: usize,
    last_used: u64,
}

impl SnapshotTree {
    fn new(budget: usize) -> Self {
        Self {
            budget,
            nodes: HashMap::new(),
            clock: 0,
        }
    }

    /// The deepest retained ancestor of `prefix` (depth `1..=len`),
    /// LRU-touched. Depth `len` is the prefix itself — a full hit.
    fn lookup(&mut self, prefix: &[u32]) -> Option<(Arc<MachineSnapshot>, usize, usize)> {
        if self.budget == 0 {
            return None;
        }
        for depth in (1..=prefix.len()).rev() {
            if let Some(node) = self.nodes.get_mut(&prefix[..depth]) {
                self.clock += 1;
                node.last_used = self.clock;
                return Some((node.snap.clone(), depth, node.preemptions));
            }
        }
        None
    }

    /// Retains `snap` under `key` unless present; at capacity the
    /// least-recently-used node is evicted first. Subtrees the search has
    /// exhausted stop being looked up, so their nodes age out naturally.
    /// Returns whether a new node was added.
    fn insert(&mut self, key: &[u32], snap: MachineSnapshot, preemptions: usize) -> bool {
        if self.budget == 0 || self.nodes.contains_key(key) {
            return false;
        }
        if self.nodes.len() >= self.budget {
            // The clock is strictly increasing, so the minimum is unique
            // and eviction is deterministic despite the map's iteration
            // order.
            let victim = self
                .nodes
                .iter()
                .min_by_key(|(_, n)| n.last_used)
                .map(|(k, _)| k.clone())
                .expect("tree at capacity is non-empty");
            self.nodes.remove(&victim);
        }
        self.clock += 1;
        self.nodes.insert(
            key.to_vec(),
            TreeNode {
                snap: Arc::new(snap),
                preemptions,
                last_used: self.clock,
            },
        );
        true
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_push(mut h: u64, word: u32) -> u64 {
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn prefix_hash(decisions: &[u32]) -> u64 {
    decisions.iter().fold(FNV_OFFSET, |h, &d| fnv_push(h, d))
}

/// Marks every forced-or-longer prefix of an executed run's trace as
/// seen. Past its forced prefix a frontier run continues deterministically
/// (non-preemptive default), so a future candidate whose whole forced
/// prefix equals one of these trace prefixes would reproduce this very
/// run decision-for-decision — skipping it loses nothing.
fn note_executed(seen: &mut HashSet<u64>, forced: usize, decisions: &[u32]) {
    let mut h = FNV_OFFSET;
    if forced == 0 {
        seen.insert(h);
    }
    for (i, &d) in decisions.iter().enumerate() {
        h = fnv_push(h, d);
        if i + 1 >= forced {
            seen.insert(h);
        }
    }
}

/// Preemptions spent by the first `depth` decisions of an executed run.
fn preemptions_before(ex: &Executed, depth: usize) -> usize {
    debug_assert!(depth >= ex.consult_base, "capture precedes resume point");
    let local = depth - ex.consult_base;
    ex.base_preemptions
        + ex.consults[..local]
            .iter()
            .filter(|c| c.is_preemption())
            .count()
}

/// Deposits an executed run's captured snapshots into the tree, in
/// ascending depth order.
fn absorb_snapshots(tree: &mut SnapshotTree, report: &mut ExploreReport, ex: &mut Executed) {
    let snaps = std::mem::take(&mut ex.snaps);
    for (depth, snap) in snaps {
        let pre = preemptions_before(ex, depth);
        if tree.insert(&ex.trace.decisions[..depth], snap, pre) {
            report.snapshots_taken += 1;
        }
    }
}

/// Width of wave `i`: the 16 → 256 ramp, or the `--wave` override. A
/// function of the wave index only — never of `jobs` or the stop mode —
/// so the explored schedule set is invariant across both.
fn wave_width(ec: &ExploreConfig, wave: usize) -> usize {
    ec.wave
        .unwrap_or_else(|| (WAVE_BASE << wave.min(4)).min(WAVE_MAX))
        .max(1)
}

/// Explores schedules of `program` under `config` per `ec`.
///
/// No schedule script is involved: exploration exists to find
/// failure-inducing interleavings *without* hand-written gates.
pub fn explore(program: &Program, config: &MachineConfig, ec: &ExploreConfig) -> ExploreReport {
    let start = Instant::now();
    let mut cfg = *config;
    cfg.record_decisions = true;
    // One lowering shared by every run of the search (and every worker).
    let dense = Arc::new(DenseProgram::new(&program.module));

    let mut report = ExploreReport {
        strategy: ec.strategy.label(),
        mask: ec.mask.bits(),
        budget: ec.budget,
        schedules: 0,
        failures: 0,
        first_failure: None,
        frontier: 0,
        probe_decisions: 0,
        snapshots_taken: 0,
        snapshot_hits: 0,
        steps_saved: 0,
        dedup_skips: 0,
        independence_skips: 0,
        wall_ms: 0,
    };

    // Snapshots only pay off for the bounded tree (PCT runs share no
    // forced prefixes).
    let capture = match ec.strategy {
        ExploreStrategy::Bounded { .. } if ec.snapshot_budget > 0 => CAPTURE_PER_RUN,
        _ => 0,
    };

    // Schedule 0 in both strategies: the probe — the non-preemptive
    // default schedule (empty forced prefix). It measures PCT's `k`, is
    // the root of the bounded search tree, and catches bugs that need no
    // preemption at all.
    let probe_plan = RunPlan {
        prefix: Vec::new(),
        resume: None,
        capture,
    };
    let mut probe = run_frontier(program, &cfg, &dense, &probe_plan, ec.mask);
    report.probe_decisions = probe.trace.len() as u64;
    let record = |report: &mut ExploreReport, index: usize, ex: &Executed| {
        report.schedules += 1;
        if ex.outcome.is_failure() {
            report.failures += 1;
            if report.first_failure.is_none() {
                report.first_failure = Some(FoundSchedule {
                    index,
                    outcome: ex.outcome.clone(),
                    trace: ex.trace.clone(),
                });
            }
        }
    };
    record(&mut report, 0, &probe);

    let pool = TrialPool::auto(ec.jobs);
    let done = |report: &ExploreReport| {
        report.schedules >= ec.budget || (ec.stop_at_first && report.first_failure.is_some())
    };

    match ec.strategy {
        ExploreStrategy::Pct { depth } => {
            let pct = PctConfig {
                depth,
                k: ec.pct_k.unwrap_or_else(|| report.probe_decisions.max(16)),
                mask: ec.mask,
            };
            let mut wave = 0usize;
            while !done(&report) {
                let base = report.schedules;
                let count = wave_width(ec, wave).min(ec.budget - base);
                wave += 1;
                let results = pool.map(count, |j| {
                    run_pct(program, &cfg, &dense, ec.seed + (base + j) as u64, pct)
                });
                for (j, ex) in results.iter().enumerate() {
                    record(&mut report, base + j, ex);
                }
            }
        }
        ExploreStrategy::Bounded { preemptions } => {
            // Independence pruning is only sound when a consult's
            // transition is a single instruction wide: under sync-only
            // masks the silent continuation between consults performs
            // shared accesses the footprints don't see.
            let prune = ec.mask.contains(PointKind::SharedAccess);
            // Breadth-first over branch points; children are enqueued in
            // (parent schedule index, decision index, thread id) order, so
            // the visit order is deterministic.
            let mut queue: VecDeque<Vec<u32>> = VecDeque::new();
            let mut seen: HashSet<u64> = HashSet::new();
            let mut tree = SnapshotTree::new(ec.snapshot_budget);
            note_executed(&mut seen, 0, &probe.trace.decisions);
            absorb_snapshots(&mut tree, &mut report, &mut probe);
            push_children(&mut queue, &probe, 0, preemptions, prune, &mut report);
            let mut wave = 0usize;
            while !done(&report) {
                let base = report.schedules;
                let room = wave_width(ec, wave).min(ec.budget - base);
                wave += 1;
                // Once the frontier outgrows the tree budget, FIFO pops
                // lag inserts by more than the LRU can span: every capture
                // would be evicted unused. Stop capturing; while the queue
                // is still small, cap the wave's total inserts near the
                // tree budget so one wide wave cannot evict the ancestors
                // the next wave is about to resume from. Both knobs read
                // only wave-boundary state, so they stay jobs-invariant.
                let wave_capture = if queue.len() <= ec.snapshot_budget {
                    capture.min((ec.snapshot_budget / room.max(1)).max(1))
                } else {
                    0
                };
                // Assemble the wave on this thread: dedup, then ancestor
                // lookup — both in candidate order, so the cache behaves
                // identically whatever executes the batch.
                let mut batch: Vec<RunPlan> = Vec::with_capacity(room);
                while batch.len() < room {
                    let Some(prefix) = queue.pop_front() else {
                        break;
                    };
                    if seen.contains(&prefix_hash(&prefix)) {
                        report.dedup_skips += 1;
                        continue;
                    }
                    let resume = tree.lookup(&prefix);
                    if let Some((snap, _, _)) = &resume {
                        report.snapshot_hits += 1;
                        report.steps_saved += snap.step();
                    }
                    batch.push(RunPlan {
                        prefix,
                        resume,
                        capture: wave_capture,
                    });
                }
                if batch.is_empty() {
                    break;
                }
                let results = pool.map(batch.len(), |j| {
                    run_frontier(program, &cfg, &dense, &batch[j], ec.mask)
                });
                for (j, mut ex) in results.into_iter().enumerate() {
                    record(&mut report, base + j, &ex);
                    note_executed(&mut seen, batch[j].prefix.len(), &ex.trace.decisions);
                    absorb_snapshots(&mut tree, &mut report, &mut ex);
                    push_children(
                        &mut queue,
                        &ex,
                        batch[j].prefix.len(),
                        preemptions,
                        prune,
                        &mut report,
                    );
                }
            }
            report.frontier = queue.len();
        }
    }

    report.wall_ms = start.elapsed().as_millis() as u64;
    report
}

/// Enqueues every within-budget child of an executed schedule: for each
/// consult at or past the forced frontier, each unchosen eligible thread
/// becomes a new prefix — unless pruned as independent of the chosen
/// thread's step.
fn push_children(
    queue: &mut VecDeque<Vec<u32>>,
    ex: &Executed,
    frontier: usize,
    preemptions: usize,
    prune: bool,
    report: &mut ExploreReport,
) {
    debug_assert!(frontier >= ex.consult_base, "resume point is an ancestor");
    let mut used = ex.base_preemptions;
    for (j, c) in ex.consults.iter().enumerate() {
        let i = ex.consult_base + j;
        if i >= frontier {
            for &alt in &c.eligible {
                if alt == c.chosen {
                    continue;
                }
                let cost = used + usize::from(c.is_preemption_for(alt));
                if cost > preemptions {
                    continue;
                }
                if prune
                    && c.is_preemption_for(alt)
                    && c.footprint_for(c.chosen).independent(c.footprint_for(alt))
                {
                    report.independence_skips += 1;
                    continue;
                }
                let mut prefix = ex.trace.decisions[..i].to_vec();
                prefix.push(alt.index() as u32);
                queue.push_back(prefix);
            }
        }
        used += usize::from(c.is_preemption());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};

    /// reader asserts a flag that writer sets — fails only when the
    /// reader's load runs before the writer's store.
    fn order_violation() -> Program {
        let mut mb = ModuleBuilder::new("ov");
        let flag = mb.global("flag", 0);
        let mut fb = FuncBuilder::new("reader", 0);
        let v = fb.load_global(flag);
        let ok = fb.cmp(CmpKind::Ne, v, 0);
        fb.assert(ok, "writer must have published");
        fb.ret();
        mb.function(fb.finish());
        let mut fb = FuncBuilder::new("writer", 0);
        fb.store_global(flag, 1);
        fb.ret();
        mb.function(fb.finish());
        Program::from_entry_names(mb.finish(), &["reader", "writer"])
    }

    fn assert_finds_and_replays(strategy: ExploreStrategy, mask: PointMask) {
        let program = order_violation();
        let mut ec = ExploreConfig::new(strategy);
        ec.mask = mask;
        ec.budget = 64;
        let report = explore(&program, &MachineConfig::default(), &ec);
        let found = report.first_failure.as_ref().expect("bug found");
        assert!(found.outcome.is_failure());
        // Replay reproduces the outcome bit-identically.
        let cfg = MachineConfig {
            record_decisions: true,
            ..MachineConfig::default()
        };
        let (replayed, div) = super::super::replay::run_replay(&program, &cfg, &found.trace);
        assert_eq!(div, None, "clean replay");
        assert_eq!(replayed.outcome, found.outcome);
    }

    #[test]
    fn bounded_finds_order_violation() {
        assert_finds_and_replays(ExploreStrategy::Bounded { preemptions: 1 }, PointMask::SYNC);
    }

    #[test]
    fn pct_finds_order_violation() {
        assert_finds_and_replays(ExploreStrategy::Pct { depth: 3 }, PointMask::SYNC_SHARED);
    }

    #[test]
    fn results_identical_across_jobs() {
        let program = order_violation();
        for strategy in [
            ExploreStrategy::Pct { depth: 3 },
            ExploreStrategy::Bounded { preemptions: 2 },
        ] {
            let mut ec = ExploreConfig::new(strategy);
            ec.mask = PointMask::SYNC_SHARED;
            ec.budget = 48;
            ec.stop_at_first = false;
            let reports: Vec<ExploreReport> = [1usize, 2, 4]
                .iter()
                .map(|&jobs| {
                    let mut ec = ec.clone();
                    ec.jobs = jobs;
                    explore(&program, &MachineConfig::default(), &ec).normalized()
                })
                .collect();
            assert_eq!(reports[0], reports[1], "{strategy:?}: 1 vs 2 jobs");
            assert_eq!(reports[0], reports[2], "{strategy:?}: 1 vs 4 jobs");
        }
    }

    #[test]
    fn results_identical_with_cache_off() {
        let program = order_violation();
        let mut ec = ExploreConfig::new(ExploreStrategy::Bounded { preemptions: 2 });
        ec.mask = PointMask::SYNC_SHARED;
        ec.budget = 64;
        ec.stop_at_first = false;
        let cached = explore(&program, &MachineConfig::default(), &ec);
        ec.snapshot_budget = 0;
        let uncached = explore(&program, &MachineConfig::default(), &ec);
        assert_eq!(uncached.snapshots_taken, 0);
        assert_eq!(uncached.snapshot_hits, 0);
        assert_eq!(uncached.steps_saved, 0);
        assert_eq!(cached.normalized(), uncached.normalized());
        assert!(cached.snapshot_hits > 0, "the tree explores deep prefixes");
    }

    #[test]
    fn dedup_guard_confirms_schedule_uniqueness() {
        // The frontier discipline (children only at-or-past the forced
        // prefix, deterministic default continuation) generates each
        // distinct schedule at most once — the seen-set is the *runtime
        // enforcement* of that invariant, and this test pins it: on an
        // exhausted tree the guard found nothing to skip, i.e. every
        // executed schedule really was unique.
        let program = order_violation();
        let mut ec = ExploreConfig::new(ExploreStrategy::Bounded { preemptions: 2 });
        ec.mask = PointMask::SYNC_SHARED;
        ec.budget = 10_000;
        ec.stop_at_first = false;
        let report = explore(&program, &MachineConfig::default(), &ec);
        assert_eq!(report.frontier, 0, "tree exhausted");
        assert_eq!(report.dedup_skips, 0, "enumeration is duplicate-free");
    }

    #[test]
    fn pinned_wave_width_still_finds_the_bug() {
        let program = order_violation();
        let mut ec = ExploreConfig::new(ExploreStrategy::Bounded { preemptions: 1 });
        ec.wave = Some(4);
        ec.budget = 64;
        let report = explore(&program, &MachineConfig::default(), &ec);
        assert!(report.first_failure.is_some());
    }

    #[test]
    fn budget_caps_schedules() {
        let program = order_violation();
        // PCT generates schedules indefinitely, so the budget is the only cap.
        let mut ec = ExploreConfig::new(ExploreStrategy::Pct { depth: 3 });
        ec.mask = PointMask::SYNC_SHARED;
        ec.budget = 5;
        ec.stop_at_first = false;
        let report = explore(&program, &MachineConfig::default(), &ec);
        assert_eq!(report.schedules, 5);
    }

    #[test]
    fn bounded_search_exhausts_small_trees_under_budget() {
        let program = order_violation();
        let mut ec = ExploreConfig::new(ExploreStrategy::Bounded { preemptions: 2 });
        ec.mask = PointMask::SYNC_SHARED;
        ec.budget = 10_000;
        ec.stop_at_first = false;
        let report = explore(&program, &MachineConfig::default(), &ec);
        // The whole tree fits well under the budget and the frontier drains.
        assert!(report.schedules < ec.budget);
        assert_eq!(report.frontier, 0);
        assert!(report.failures >= 1);
    }

    #[test]
    fn snapshot_tree_lru_evicts_deterministically() {
        use crate::sched::basic::RoundRobin;
        // Build a real snapshot to populate entries with.
        let program = order_violation();
        let cfg = MachineConfig {
            record_decisions: true,
            ..MachineConfig::default()
        };
        let mut sched = RoundRobin::default();
        let (_, snaps) = Machine::new(&program, cfg).run_captured(&mut sched, 1, 1);
        let (_, snap) = snaps.into_iter().next().expect("one capture");

        let mut tree = SnapshotTree::new(2);
        assert!(tree.insert(&[0], snap.clone(), 0));
        assert!(tree.insert(&[0, 1], snap.clone(), 1));
        assert!(!tree.insert(&[0, 1], snap.clone(), 1), "no duplicate keys");
        // Touch [0] so [0, 1] is the LRU victim.
        assert!(tree.lookup(&[0, 7]).is_some());
        assert!(tree.insert(&[1], snap.clone(), 0));
        assert!(
            tree.lookup(&[0, 1]).map(|(_, d, _)| d) == Some(1),
            "evicted to ancestor"
        );
        // Deepest ancestor wins and carries its preemption count.
        assert!(tree.insert(&[1, 2], snap, 1));
        let (_, depth, pre) = tree.lookup(&[1, 2, 3]).expect("ancestor");
        assert_eq!((depth, pre), (2, 1));
        // Budget 0 disables everything.
        let mut off = SnapshotTree::new(0);
        assert!(off.lookup(&[0]).is_none());
    }

    #[test]
    fn report_derived_stats() {
        let mut report = ExploreReport {
            strategy: "pct(d=3)".into(),
            mask: PointMask::SYNC.bits(),
            budget: 100,
            schedules: 50,
            failures: 2,
            first_failure: None,
            frontier: 0,
            probe_decisions: 10,
            snapshots_taken: 7,
            snapshot_hits: 5,
            steps_saved: 900,
            dedup_skips: 3,
            independence_skips: 2,
            wall_ms: 123,
        };
        assert!((report.failures_per_1k() - 40.0).abs() < 1e-9);
        assert_eq!(report.first_failure_depth(), None);
        let norm = report.normalized();
        assert_eq!(norm.wall_ms, 0);
        assert_eq!(norm.snapshots_taken, 0);
        assert_eq!(norm.snapshot_hits, 0);
        assert_eq!(norm.steps_saved, 0);
        assert_eq!(norm.dedup_skips, 3, "search-shape counters survive");
        assert_eq!(norm.independence_skips, 2);
        report.schedules = 0;
        assert_eq!(report.failures_per_1k(), 0.0);
    }
}
