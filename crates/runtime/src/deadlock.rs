//! Wait-for-graph deadlock diagnosis.
//!
//! The paper notes (Section 3.1.1) that ConAir can work with any deadlock
//! detection mechanism, including catching "cycles in the run-time
//! resource-acquisition graph" as Deadlock-Immunity does. The interpreter's
//! primary mechanism is the paper's time-out based detection, but when a
//! run ends in a hang this module reconstructs the wait-for cycle for the
//! failure report — which threads wait on which locks held by whom.

use conair_ir::LockId;

use crate::locks::ThreadId;

/// One edge of the wait-for graph: `waiter` wants `lock`, held by `owner`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitEdge {
    /// The blocked thread.
    pub waiter: ThreadId,
    /// The contended lock.
    pub lock: LockId,
    /// The thread currently holding the lock (`None` for a lock that is
    /// free — the waiter is merely gated, not deadlocked).
    pub owner: Option<ThreadId>,
}

/// A detected circular wait: the threads on the cycle, in wait order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitCycle {
    /// Threads forming the cycle (each waits on a lock held by the next;
    /// the last waits on one held by the first).
    pub threads: Vec<ThreadId>,
    /// The locks along the cycle, aligned with `threads`.
    pub locks: Vec<LockId>,
}

impl std::fmt::Display for WaitCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (t, l)) in self.threads.iter().zip(&self.locks).enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{t} waits on {l}")?;
        }
        Ok(())
    }
}

/// Finds a circular wait in a set of wait-for edges, if one exists.
///
/// Follows `waiter -> owner` links; a repeat visit closes the cycle. Only
/// edges with a live owner participate (a free lock cannot deadlock).
pub fn find_wait_cycle(edges: &[WaitEdge]) -> Option<WaitCycle> {
    for start in edges {
        let mut threads = Vec::new();
        let mut locks = Vec::new();
        let mut cur = *start;
        loop {
            if threads.contains(&cur.waiter) {
                // Trim the path to the cycle proper.
                let at = threads.iter().position(|t| *t == cur.waiter).expect("seen");
                return Some(WaitCycle {
                    threads: threads.split_off(at),
                    locks: locks.split_off(at),
                });
            }
            threads.push(cur.waiter);
            locks.push(cur.lock);
            let Some(owner) = cur.owner else {
                break; // free lock: no cycle via this path
            };
            match edges.iter().find(|e| e.waiter == owner) {
                Some(next) => cur = *next,
                None => break, // the owner is runnable: no deadlock here
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(w: usize, l: u32, o: Option<usize>) -> WaitEdge {
        WaitEdge {
            waiter: ThreadId(w),
            lock: LockId(l),
            owner: o.map(ThreadId),
        }
    }

    #[test]
    fn two_thread_cycle_detected() {
        // T0 waits on L1 held by T1; T1 waits on L0 held by T0.
        let edges = [edge(0, 1, Some(1)), edge(1, 0, Some(0))];
        let c = find_wait_cycle(&edges).expect("cycle");
        assert_eq!(c.threads.len(), 2);
        assert!(c.threads.contains(&ThreadId(0)) && c.threads.contains(&ThreadId(1)));
        let s = c.to_string();
        assert!(s.contains("waits on"));
    }

    #[test]
    fn three_thread_cycle_detected() {
        let edges = [
            edge(0, 1, Some(1)),
            edge(1, 2, Some(2)),
            edge(2, 0, Some(0)),
        ];
        let c = find_wait_cycle(&edges).expect("cycle");
        assert_eq!(c.threads.len(), 3);
        assert_eq!(c.locks.len(), 3);
    }

    #[test]
    fn chain_without_cycle_is_clean() {
        // T0 waits on a lock held by T1, which is not waiting.
        let edges = [edge(0, 1, Some(1))];
        assert!(find_wait_cycle(&edges).is_none());
    }

    #[test]
    fn free_lock_breaks_the_chain() {
        let edges = [edge(0, 1, None), edge(1, 0, Some(0))];
        assert!(find_wait_cycle(&edges).is_none());
    }

    #[test]
    fn partial_cycle_among_more_threads() {
        // T3 waits into a 2-cycle between T0 and T1: the cycle excludes T3.
        let edges = [
            edge(3, 2, Some(0)),
            edge(0, 1, Some(1)),
            edge(1, 0, Some(0)),
        ];
        let c = find_wait_cycle(&edges).expect("cycle");
        assert_eq!(c.threads.len(), 2);
        assert!(!c.threads.contains(&ThreadId(3)));
    }

    #[test]
    fn empty_graph_no_cycle() {
        assert!(find_wait_cycle(&[]).is_none());
    }
}
