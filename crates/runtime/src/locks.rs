//! The mutex table.
//!
//! Mutexes are non-reentrant and owner-tracked, matching
//! `pthread_mutex_t` with default attributes: re-acquiring a held lock
//! self-deadlocks, and unlocking a lock the thread does not own is reported
//! as a usage error.

use conair_ir::LockId;

/// Identifies a logical thread of the interpreted program.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct ThreadId(pub usize);

impl ThreadId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Result of a lock-acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireResult {
    /// The lock was taken.
    Acquired,
    /// The lock is held by another thread (or by the caller — pthread
    /// default mutexes self-deadlock).
    WouldBlock,
}

/// Error from a bad unlock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnlockError {
    /// The lock involved.
    pub lock: LockId,
    /// The current owner, if any.
    pub owner: Option<ThreadId>,
}

/// The state of every mutex in a run.
#[derive(Debug, Clone)]
pub struct LockTable {
    owners: Vec<Option<ThreadId>>,
    /// Total successful acquisitions (diagnostics).
    pub acquisitions: u64,
}

impl LockTable {
    /// Creates a table of `count` free mutexes.
    pub fn new(count: usize) -> Self {
        Self {
            owners: vec![None; count],
            acquisitions: 0,
        }
    }

    /// Attempts to acquire `lock` for `thread`.
    pub fn try_acquire(&mut self, lock: LockId, thread: ThreadId) -> AcquireResult {
        match self.owners[lock.index()] {
            None => {
                self.owners[lock.index()] = Some(thread);
                self.acquisitions += 1;
                AcquireResult::Acquired
            }
            Some(_) => AcquireResult::WouldBlock,
        }
    }

    /// Releases `lock`, which must be held by `thread`.
    ///
    /// # Errors
    ///
    /// Returns an error when the lock is free or held by another thread.
    pub fn release(&mut self, lock: LockId, thread: ThreadId) -> Result<(), UnlockError> {
        match self.owners[lock.index()] {
            Some(owner) if owner == thread => {
                self.owners[lock.index()] = None;
                Ok(())
            }
            owner => Err(UnlockError { lock, owner }),
        }
    }

    /// Releases `lock` regardless of checks — used by compensation, which
    /// by construction only releases locks the rolling-back thread acquired
    /// in the current epoch.
    pub fn force_release(&mut self, lock: LockId) {
        self.owners[lock.index()] = None;
    }

    /// The current owner of `lock`.
    pub fn owner(&self, lock: LockId) -> Option<ThreadId> {
        self.owners[lock.index()]
    }

    /// Whether `lock` is currently free.
    pub fn is_free(&self, lock: LockId) -> bool {
        self.owners[lock.index()].is_none()
    }

    /// All locks currently held by `thread` (used on thread failure
    /// diagnostics).
    pub fn held_by(&self, thread: ThreadId) -> Vec<LockId> {
        self.owners
            .iter()
            .enumerate()
            .filter(|&(_i, o)| *o == Some(thread))
            .map(|(i, _o)| LockId::from_index(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let mut t = LockTable::new(2);
        let l = LockId(0);
        assert!(t.is_free(l));
        assert_eq!(t.try_acquire(l, ThreadId(0)), AcquireResult::Acquired);
        assert_eq!(t.owner(l), Some(ThreadId(0)));
        assert_eq!(t.try_acquire(l, ThreadId(1)), AcquireResult::WouldBlock);
        t.release(l, ThreadId(0)).unwrap();
        assert!(t.is_free(l));
        assert_eq!(t.try_acquire(l, ThreadId(1)), AcquireResult::Acquired);
        assert_eq!(t.acquisitions, 2);
    }

    #[test]
    fn self_reacquire_blocks() {
        let mut t = LockTable::new(1);
        let l = LockId(0);
        t.try_acquire(l, ThreadId(0));
        assert_eq!(
            t.try_acquire(l, ThreadId(0)),
            AcquireResult::WouldBlock,
            "pthread default mutexes are not reentrant"
        );
    }

    #[test]
    fn bad_unlock_reports_owner() {
        let mut t = LockTable::new(1);
        let l = LockId(0);
        assert_eq!(
            t.release(l, ThreadId(0)),
            Err(UnlockError {
                lock: l,
                owner: None
            })
        );
        t.try_acquire(l, ThreadId(1));
        assert_eq!(
            t.release(l, ThreadId(0)),
            Err(UnlockError {
                lock: l,
                owner: Some(ThreadId(1))
            })
        );
    }

    #[test]
    fn force_release_and_held_by() {
        let mut t = LockTable::new(3);
        t.try_acquire(LockId(0), ThreadId(4));
        t.try_acquire(LockId(2), ThreadId(4));
        assert_eq!(t.held_by(ThreadId(4)), vec![LockId(0), LockId(2)]);
        t.force_release(LockId(0));
        assert_eq!(t.held_by(ThreadId(4)), vec![LockId(2)]);
    }
}
