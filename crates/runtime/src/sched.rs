//! Schedulers and schedule scripts.
//!
//! The interpreter executes one instruction per step, choosing the thread
//! via a [`Scheduler`]. Determinism is the point: every experiment seeds
//! its scheduler, and bug-forcing uses [`ScheduleScript`] *gates* — the
//! analog of the sleeps the paper injects into buggy code regions to force
//! failure-inducing interleavings (Section 5).
//!
//! A gate holds a thread whenever its next instruction is a given marker,
//! until some other marker has executed a given number of times. Gates are
//! evaluated by the machine before scheduling, so they compose with any
//! scheduler.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::locks::ThreadId;

/// Scheduling context handed to a scheduler at each step.
#[derive(Debug)]
pub struct SchedContext<'a> {
    /// Threads eligible to run this step (runnable, un-gated, lock
    /// available if blocked on one).
    pub eligible: &'a [ThreadId],
    /// The global step counter.
    pub step: u64,
}

/// Picks the next thread to execute.
pub trait Scheduler {
    /// Chooses one of `ctx.eligible` (guaranteed non-empty).
    fn pick(&mut self, ctx: &SchedContext<'_>) -> ThreadId;

    /// A short name for reports.
    fn name(&self) -> &'static str {
        "scheduler"
    }
}

/// Deterministic round-robin.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, ctx: &SchedContext<'_>) -> ThreadId {
        // Rotate over eligible threads by a moving cursor on thread ids, so
        // the choice is stable regardless of how eligibility fluctuates.
        let chosen = ctx
            .eligible
            .iter()
            .copied()
            .find(|t| t.index() >= self.next)
            .unwrap_or(ctx.eligible[0]);
        self.next = chosen.index() + 1;
        if ctx.eligible.iter().all(|t| t.index() < self.next) {
            self.next = 0;
        }
        chosen
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Seeded uniform-random scheduler; the workhorse for overhead and
/// recovery trials (same seed ⇒ same interleaving).
#[derive(Debug)]
pub struct SeededRandom {
    rng: SmallRng,
}

impl SeededRandom {
    /// Creates a random scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for SeededRandom {
    fn pick(&mut self, ctx: &SchedContext<'_>) -> ThreadId {
        ctx.eligible[self.rng.gen_range(0..ctx.eligible.len())]
    }

    fn name(&self) -> &'static str {
        "seeded-random"
    }
}

/// A gate: hold `thread` at `at_marker` until `until_marker` has executed
/// `until_count` times (the sleep-injection analog).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// The held thread (index into the program's thread list).
    pub thread: usize,
    /// Hold while the thread's next instruction is this marker…
    pub at_marker: String,
    /// …until this marker has executed…
    pub until_marker: String,
    /// …this many times.
    pub until_count: u64,
}

impl Gate {
    /// Convenience constructor with `until_count = 1`.
    pub fn new(
        thread: usize,
        at_marker: impl Into<String>,
        until_marker: impl Into<String>,
    ) -> Self {
        Self {
            thread,
            at_marker: at_marker.into(),
            until_marker: until_marker.into(),
            until_count: 1,
        }
    }
}

/// A set of gates forcing one interleaving.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleScript {
    /// The gates, all active simultaneously.
    pub gates: Vec<Gate>,
}

impl ScheduleScript {
    /// The empty script (no forcing).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a script from gates.
    pub fn with_gates(gates: Vec<Gate>) -> Self {
        Self { gates }
    }

    /// Whether `thread`, whose next instruction is the marker named
    /// `next_marker` (if any), is held given current marker counts.
    pub fn is_held(
        &self,
        thread: usize,
        next_marker: Option<&str>,
        marker_count: impl Fn(&str) -> u64,
    ) -> bool {
        let Some(marker) = next_marker else {
            return false;
        };
        self.gates.iter().any(|g| {
            g.thread == thread
                && g.at_marker == marker
                && marker_count(&g.until_marker) < g.until_count
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new();
        let all = [ThreadId(0), ThreadId(1), ThreadId(2)];
        let ctx = |step| SchedContext {
            eligible: &all,
            step,
        };
        let picks: Vec<usize> = (0..6).map(|s| rr.pick(&ctx(s)).index()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_ineligible() {
        let mut rr = RoundRobin::new();
        let some = [ThreadId(0), ThreadId(2)];
        let ctx = SchedContext {
            eligible: &some,
            step: 0,
        };
        let a = rr.pick(&ctx).index();
        let ctx = SchedContext {
            eligible: &some,
            step: 1,
        };
        let b = rr.pick(&ctx).index();
        assert_eq!((a, b), (0, 2));
    }

    #[test]
    fn seeded_random_is_deterministic() {
        let all = [ThreadId(0), ThreadId(1), ThreadId(2), ThreadId(3)];
        let run = |seed| {
            let mut s = SeededRandom::new(seed);
            (0..32)
                .map(|step| {
                    s.pick(&SchedContext {
                        eligible: &all,
                        step,
                    })
                    .index()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds diverge");
    }

    #[test]
    fn gates_hold_until_marker_count() {
        let script = ScheduleScript::with_gates(vec![Gate::new(1, "init_start", "read_done")]);
        let mut counts: HashMap<&str, u64> = HashMap::new();
        let count = |m: &str| counts.get(m).copied().unwrap_or(0);
        assert!(script.is_held(1, Some("init_start"), count));
        assert!(
            !script.is_held(0, Some("init_start"), count),
            "other thread unaffected"
        );
        assert!(
            !script.is_held(1, Some("other"), count),
            "other marker unaffected"
        );
        assert!(!script.is_held(1, None, count));
        counts.insert("read_done", 1);
        let count = |m: &str| counts.get(m).copied().unwrap_or(0);
        assert!(!script.is_held(1, Some("init_start"), count), "released");
    }

    #[test]
    fn gate_with_higher_count() {
        let mut g = Gate::new(0, "a", "b");
        g.until_count = 3;
        let script = ScheduleScript::with_gates(vec![g]);
        assert!(script.is_held(0, Some("a"), |_| 2));
        assert!(!script.is_held(0, Some("a"), |_| 3));
    }
}
