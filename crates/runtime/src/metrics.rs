//! Run metrics: low-cost aggregate distributions collected by the machine
//! alongside [`crate::RunStats`], the bucketed [`Histogram`] they are
//! built from, and the exploration [`MetricsRegistry`] — typed atomic
//! counters/gauges/histograms sampled at wave boundaries and exported in
//! Prometheus text format.
//!
//! Metrics differ from [`crate::RunStats`] in two ways: they are
//! distributional (histograms with percentiles, not single counters), and
//! every field is serde-serializable so the CLI and bench exporters can
//! embed them in JSON reports without projection glue.
//!
//! The registry follows the same zero-cost-when-disabled discipline as the
//! [`crate::TraceSink`] layer: an unobserved exploration constructs no
//! registry and performs no atomic traffic at all (pinned by a test via
//! [`MetricsRegistry::instances`]), and observing one never changes what
//! it reports — registry updates read wave-boundary state the search
//! already computed.

use std::fmt::Write as _;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use conair_ir::SiteId;
use serde::{Deserialize, Serialize};

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `b` holds values whose bit length is `b` (bucket 0 holds only the
/// value 0), so recording is O(1) and the memory footprint is fixed at 65
/// counters regardless of sample count. Percentiles are therefore
/// approximate: [`Histogram::percentile`] returns the *upper bound* of the
/// bucket containing the requested quantile, an over-estimate by at most 2×.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a value: its bit length.
fn bucket(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket.
fn bucket_hi(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; 65],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket(v)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, if any samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket containing the quantile sample, clamped to the observed
    /// maximum. `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the quantile sample, 1-based (nearest-rank definition).
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_hi(b).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lo, hi, count)`, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                let lo = if b == 0 { 0 } else { 1u64 << (b - 1) };
                (lo, bucket_hi(b), c)
            })
    }

    /// A compact `p50/p90/max` rendering for reports.
    pub fn summary(&self) -> String {
        match (self.percentile(0.5), self.percentile(0.9), self.max()) {
            (Some(p50), Some(p90), Some(max)) => {
                format!("p50≤{p50} p90≤{p90} max={max} (n={})", self.total)
            }
            _ => "no samples".to_string(),
        }
    }
}

/// Distributional metrics of one run, collected by the machine at the same
/// points where [`crate::TraceEvent`]s are emitted — but unconditionally,
/// since each is a counter bump or an O(1) histogram record.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Rollbacks attempted per site, sorted by site id (the serializable
    /// projection of [`crate::RunStats::site_recovery`] retries).
    pub per_site_retries: Vec<(SiteId, u64)>,
    /// Steps from a site's first failure detection to its recovery
    /// completion, one sample per site that recovered.
    pub rollback_latency: Histogram,
    /// Steps spent blocked per lock acquisition that had to wait (timed-out
    /// waits included).
    pub lock_waits: Histogram,
    /// Register undo-log depth at each rollback: how many registers the
    /// epoch wrote (and restore walked back) — the per-rollback cost of the
    /// featherweight checkpoint representation, one sample per rollback.
    pub undo_depth: Histogram,
    /// Checkpoint instructions executed.
    pub checkpoint_executions: u64,
    /// Checkpoint executions that were re-executions after a rollback (the
    /// rest are first-time captures).
    pub checkpoint_reexecutions: u64,
    /// Heap blocks freed by compensation during rollbacks.
    pub compensation_frees: u64,
    /// Locks force-released by compensation during rollbacks.
    pub compensation_unlocks: u64,
    /// Scheduler picks that switched away from the previously running
    /// thread.
    pub context_switches: u64,
    /// Scheduler decisions recorded (0 unless
    /// [`crate::MachineConfig::record_decisions`] was set).
    pub sched_decisions: u64,
    /// The recorded schedule's [`crate::DecisionTrace::hash`] (0 when not
    /// recording) — two runs with the same hash executed the same
    /// interleaving.
    pub decision_trace_hash: u64,
    /// Machine snapshots captured during this run (0 outside
    /// [`crate::Machine::run_captured`]). A run resumed from a snapshot
    /// inherits the donor's count at the capture point.
    pub snapshots_taken: u64,
}

impl RunMetrics {
    /// Total retries over all sites (mirrors
    /// [`crate::RunStats::total_retries`]).
    pub fn total_retries(&self) -> u64 {
        self.per_site_retries.iter().map(|(_, r)| r).sum()
    }

    /// First-time checkpoint captures (executions minus re-executions).
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoint_executions - self.checkpoint_reexecutions
    }
}

/// A monotone atomic counter.
///
/// All operations use relaxed ordering: registry values are sampled at wave
/// boundaries for telemetry, never used for synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the counter with an absolute running total computed
    /// elsewhere (e.g. an [`crate::ExploreReport`] field). The stored value
    /// must be monotone across calls for Prometheus counter semantics to
    /// hold; the explorer only stores totals that grow wave over wave.
    pub fn store(&self, total: u64) {
        self.0.store(total, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins atomic gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic counterpart of [`Histogram`]: same power-of-two bucketing, but
/// every cell is an `AtomicU64` so wave-boundary merges never need a lock.
/// The bucket array is fixed-size, so recording and merging allocate
/// nothing.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; 65],
    total: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Folds a per-run [`Histogram`] into this one. Bucket boundaries are
    /// identical (bit-length bucketing), so counts transfer exactly; each
    /// bucket's samples are attributed its lower bound when updating `sum`,
    /// which under-estimates by at most 2×.
    pub fn merge(&self, h: &Histogram) {
        for (lo, _, count) in h.buckets() {
            self.buckets[bucket(lo)].fetch_add(count, Ordering::Relaxed);
        }
        self.total.fetch_add(h.count(), Ordering::Relaxed);
        self.sum.fetch_add(
            h.buckets().map(|(lo, _, c)| lo.saturating_mul(c)).sum(),
            Ordering::Relaxed,
        );
        self.max.fetch_max(h.max().unwrap_or(0), Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all samples (bucket lower bounds for merged histograms).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Non-empty buckets as `(upper_bound, count)`, ascending.
    pub fn nonempty_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(b, c)| {
                let c = c.load(Ordering::Relaxed);
                (c > 0).then_some((bucket_hi(b), c))
            })
            .collect()
    }
}

/// Count of [`MetricsRegistry`] allocations over the process lifetime.
/// Exists so tests can pin the zero-cost invariant: an unobserved
/// exploration must not construct a registry.
static REGISTRY_INSTANCES: AtomicU64 = AtomicU64::new(0);

/// Serializes tests that allocate registries or probe
/// [`MetricsRegistry::instances`] — the counter is process-global and the
/// test harness runs tests concurrently.
#[cfg(test)]
pub(crate) static REGISTRY_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Acquires [`REGISTRY_TEST_LOCK`], surviving poisoning from a failed
/// test.
#[cfg(test)]
pub(crate) fn registry_test_guard() -> std::sync::MutexGuard<'static, ()> {
    REGISTRY_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The exploration metrics registry: one typed field per metric, all
/// atomic, shared by cloning the handle. Construction is the only
/// allocation; updates are relaxed atomic stores on fixed fields, so an
/// attached registry adds no per-schedule allocation to the explorer.
///
/// The explorer writes it only at wave boundaries (see
/// [`crate::ExploreObserver`]); anything — a ticker, an exporter, the
/// future daemon — may read it concurrently.
#[derive(Debug, Default)]
pub struct RegistryInner {
    /// Schedules executed so far.
    pub schedules: Counter,
    /// Failing schedules found so far.
    pub failures: Counter,
    /// Exploration waves completed.
    pub waves: Counter,
    /// Planned width of the most recent wave (the 16→256 ramp).
    pub wave_width: Gauge,
    /// Frontier queue depth after the most recent wave (bounded search).
    pub frontier_depth: Gauge,
    /// Live nodes in the prefix-sharing snapshot tree.
    pub snapshot_nodes: Gauge,
    /// Snapshot-tree LRU evictions so far.
    pub snapshot_evictions: Counter,
    /// Machine snapshots captured so far.
    pub snapshots_taken: Counter,
    /// Runs that resumed from a snapshot instead of replaying from the
    /// root.
    pub snapshot_hits: Counter,
    /// Interpreter steps skipped thanks to snapshot resume.
    pub steps_saved: Counter,
    /// Schedule prefixes skipped by decision-trace dedup.
    pub dedup_skips: Counter,
    /// Schedule prefixes skipped by footprint-independence pruning.
    pub independence_skips: Counter,
    /// Live scheduler decisions made by bounded (frontier) schedulers.
    pub decisions_bounded: Counter,
    /// Live scheduler decisions made by PCT schedulers.
    pub decisions_pct: Counter,
    /// PCT priority demotions applied at change points.
    pub pct_demotions: Counter,
    /// Register undo-log depth per rollback, across all executed schedules
    /// (schedules sharing a resumed prefix each count the prefix's
    /// rollbacks).
    pub undo_depth: AtomicHistogram,
    /// Explorer wall-time spent capturing machine snapshots, µs.
    pub phase_capture_us: Counter,
    /// Explorer wall-time spent restoring machine snapshots, µs.
    pub phase_restore_us: Counter,
    /// Explorer wall-time spent interpreting schedules, µs.
    pub phase_interpret_us: Counter,
    /// Explorer wall-time spent assembling and merging waves, µs.
    pub phase_merge_us: Counter,
    /// Wall-time spent minimizing the first failure, µs (filled by the
    /// CLI, which owns minimization).
    pub phase_minimize_us: Counter,
    /// Per-opcode execution counts, indexed by [`conair_ir::Inst::opcode`]
    /// (filled by [`crate::Machine::with_dispatch_mix`] runs — the data
    /// behind the superinstruction catalog).
    pub dispatch_mix: [Counter; conair_ir::NUM_OPCODES],
}

/// Shared handle to a [`RegistryInner`]; clone to hand the same registry to
/// the explorer and a reader.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for MetricsRegistry {
    type Target = RegistryInner;

    fn deref(&self) -> &RegistryInner {
        &self.inner
    }
}

impl MetricsRegistry {
    /// Allocates a fresh all-zero registry.
    pub fn new() -> Self {
        REGISTRY_INSTANCES.fetch_add(1, Ordering::Relaxed);
        Self {
            inner: Arc::new(RegistryInner::default()),
        }
    }

    /// Registries allocated so far in this process. Tests use the
    /// difference across an unobserved exploration to pin the zero-cost
    /// invariant.
    pub fn instances() -> u64 {
        REGISTRY_INSTANCES.load(Ordering::Relaxed)
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, v: u64| {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        };
        counter("conair_explore_schedules_total", self.schedules.get());
        counter("conair_explore_failures_total", self.failures.get());
        counter("conair_explore_waves_total", self.waves.get());
        counter(
            "conair_explore_snapshot_evictions_total",
            self.snapshot_evictions.get(),
        );
        counter(
            "conair_explore_snapshots_taken_total",
            self.snapshots_taken.get(),
        );
        counter(
            "conair_explore_snapshot_hits_total",
            self.snapshot_hits.get(),
        );
        counter("conair_explore_steps_saved_total", self.steps_saved.get());
        counter("conair_explore_dedup_skips_total", self.dedup_skips.get());
        counter(
            "conair_explore_independence_skips_total",
            self.independence_skips.get(),
        );
        counter(
            "conair_explore_pct_demotions_total",
            self.pct_demotions.get(),
        );
        let _ = writeln!(
            out,
            "# TYPE conair_explore_decisions_total counter\n\
             conair_explore_decisions_total{{scheduler=\"bounded\"}} {}\n\
             conair_explore_decisions_total{{scheduler=\"pct\"}} {}",
            self.decisions_bounded.get(),
            self.decisions_pct.get(),
        );
        let _ = writeln!(out, "# TYPE conair_explore_phase_seconds_total counter");
        for (phase, us) in [
            ("capture", self.phase_capture_us.get()),
            ("restore", self.phase_restore_us.get()),
            ("interpret", self.phase_interpret_us.get()),
            ("merge", self.phase_merge_us.get()),
            ("minimize", self.phase_minimize_us.get()),
        ] {
            let _ = writeln!(
                out,
                "conair_explore_phase_seconds_total{{phase=\"{phase}\"}} {:.6}",
                us as f64 / 1e6
            );
        }
        let mut gauge = |name: &str, v: u64| {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        };
        gauge("conair_explore_wave_width", self.wave_width.get());
        gauge("conair_explore_frontier_depth", self.frontier_depth.get());
        gauge("conair_explore_snapshot_nodes", self.snapshot_nodes.get());
        let _ = writeln!(out, "# TYPE conair_explore_undo_depth histogram");
        let mut cumulative = 0u64;
        for (hi, count) in self.undo_depth.nonempty_buckets() {
            cumulative += count;
            let _ = writeln!(
                out,
                "conair_explore_undo_depth_bucket{{le=\"{hi}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "conair_explore_undo_depth_bucket{{le=\"+Inf\"}} {}\n\
             conair_explore_undo_depth_sum {}\n\
             conair_explore_undo_depth_count {}",
            self.undo_depth.count(),
            self.undo_depth.sum(),
            self.undo_depth.count(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.summary(), "no samples");
    }

    #[test]
    fn records_and_bounds() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.sum(), 1106);
        // p100 is clamped to the observed max, not the bucket bound.
        assert_eq!(h.percentile(1.0), Some(1000));
        // p50 lands in the bucket of 2..=3.
        assert_eq!(h.percentile(0.5), Some(3));
    }

    #[test]
    fn percentile_is_upper_bound_of_quantile_bucket() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(5); // bucket 3: 4..=7
        }
        h.record(1_000_000);
        assert_eq!(h.percentile(0.5), Some(7));
        assert_eq!(h.percentile(0.99), Some(7));
        assert_eq!(h.percentile(1.0), Some(1_000_000));
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new();
        a.record(4);
        let mut b = Histogram::new();
        b.record(1024);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(1024));
        assert_eq!(a.buckets().count(), 3);
    }

    #[test]
    fn registry_renders_prometheus() {
        let _guard = registry_test_guard();
        let reg = MetricsRegistry::new();
        reg.schedules.add(5);
        reg.schedules.add(3);
        reg.failures.store(2);
        reg.wave_width.set(64);
        reg.decisions_bounded.add(17);
        reg.phase_capture_us.add(1_500_000);
        let mut h = Histogram::new();
        h.record(3);
        h.record(3);
        h.record(100);
        reg.undo_depth.merge(&h);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE conair_explore_schedules_total counter"));
        assert!(text.contains("conair_explore_schedules_total 8"));
        assert!(text.contains("conair_explore_failures_total 2"));
        assert!(text.contains("# TYPE conair_explore_wave_width gauge"));
        assert!(text.contains("conair_explore_wave_width 64"));
        assert!(text.contains("conair_explore_decisions_total{scheduler=\"bounded\"} 17"));
        assert!(text.contains("conair_explore_phase_seconds_total{phase=\"capture\"} 1.500000"));
        assert!(text.contains("conair_explore_undo_depth_bucket{le=\"3\"} 2"));
        assert!(text.contains("conair_explore_undo_depth_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("conair_explore_undo_depth_count 3"));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable value in line: {line}"
            );
            assert!(parts.next().unwrap().starts_with("conair_explore_"));
        }
    }

    #[test]
    fn registry_instance_probe_counts_allocations() {
        let _guard = registry_test_guard();
        let before = MetricsRegistry::instances();
        let reg = MetricsRegistry::new();
        let clone = reg.clone();
        clone.schedules.add(1);
        // Clones share the same inner registry and do not count as new
        // allocations.
        assert_eq!(MetricsRegistry::instances(), before + 1);
        assert_eq!(reg.schedules.get(), 1);
    }

    #[test]
    fn atomic_histogram_merge_matches_bucketing() {
        let mut h = Histogram::new();
        for v in [0, 1, 7, 900] {
            h.record(v);
        }
        let a = AtomicHistogram::default();
        a.merge(&h);
        a.record(7);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max(), Some(900));
        let buckets = a.nonempty_buckets();
        // 0 → le=0, 1 → le=1, 7×2 → le=7, 900 → le=1023.
        assert_eq!(buckets, vec![(0, 1), (1, 1), (7, 2), (1023, 1)]);
    }

    #[test]
    fn metrics_roundtrip_serde() {
        let mut m = RunMetrics::default();
        m.per_site_retries.push((SiteId(2), 7));
        m.rollback_latency.record(42);
        m.checkpoint_executions = 3;
        m.checkpoint_reexecutions = 1;
        let json = serde_json::to_string(&m).unwrap();
        let back: RunMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_retries(), 7);
        assert_eq!(back.checkpoints_taken(), 2);
    }
}
