//! Run metrics: low-cost aggregate distributions collected by the machine
//! alongside [`crate::RunStats`], and the bucketed [`Histogram`] they are
//! built from.
//!
//! Metrics differ from [`crate::RunStats`] in two ways: they are
//! distributional (histograms with percentiles, not single counters), and
//! every field is serde-serializable so the CLI and bench exporters can
//! embed them in JSON reports without projection glue.

use conair_ir::SiteId;
use serde::{Deserialize, Serialize};

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `b` holds values whose bit length is `b` (bucket 0 holds only the
/// value 0), so recording is O(1) and the memory footprint is fixed at 65
/// counters regardless of sample count. Percentiles are therefore
/// approximate: [`Histogram::percentile`] returns the *upper bound* of the
/// bucket containing the requested quantile, an over-estimate by at most 2×.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a value: its bit length.
fn bucket(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket.
fn bucket_hi(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; 65],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket(v)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, if any samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket containing the quantile sample, clamped to the observed
    /// maximum. `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the quantile sample, 1-based (nearest-rank definition).
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_hi(b).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lo, hi, count)`, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                let lo = if b == 0 { 0 } else { 1u64 << (b - 1) };
                (lo, bucket_hi(b), c)
            })
    }

    /// A compact `p50/p90/max` rendering for reports.
    pub fn summary(&self) -> String {
        match (self.percentile(0.5), self.percentile(0.9), self.max()) {
            (Some(p50), Some(p90), Some(max)) => {
                format!("p50≤{p50} p90≤{p90} max={max} (n={})", self.total)
            }
            _ => "no samples".to_string(),
        }
    }
}

/// Distributional metrics of one run, collected by the machine at the same
/// points where [`crate::TraceEvent`]s are emitted — but unconditionally,
/// since each is a counter bump or an O(1) histogram record.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Rollbacks attempted per site, sorted by site id (the serializable
    /// projection of [`crate::RunStats::site_recovery`] retries).
    pub per_site_retries: Vec<(SiteId, u64)>,
    /// Steps from a site's first failure detection to its recovery
    /// completion, one sample per site that recovered.
    pub rollback_latency: Histogram,
    /// Steps spent blocked per lock acquisition that had to wait (timed-out
    /// waits included).
    pub lock_waits: Histogram,
    /// Register undo-log depth at each rollback: how many registers the
    /// epoch wrote (and restore walked back) — the per-rollback cost of the
    /// featherweight checkpoint representation, one sample per rollback.
    pub undo_depth: Histogram,
    /// Checkpoint instructions executed.
    pub checkpoint_executions: u64,
    /// Checkpoint executions that were re-executions after a rollback (the
    /// rest are first-time captures).
    pub checkpoint_reexecutions: u64,
    /// Heap blocks freed by compensation during rollbacks.
    pub compensation_frees: u64,
    /// Locks force-released by compensation during rollbacks.
    pub compensation_unlocks: u64,
    /// Scheduler picks that switched away from the previously running
    /// thread.
    pub context_switches: u64,
    /// Scheduler decisions recorded (0 unless
    /// [`crate::MachineConfig::record_decisions`] was set).
    pub sched_decisions: u64,
    /// The recorded schedule's [`crate::DecisionTrace::hash`] (0 when not
    /// recording) — two runs with the same hash executed the same
    /// interleaving.
    pub decision_trace_hash: u64,
    /// Machine snapshots captured during this run (0 outside
    /// [`crate::Machine::run_captured`]). A run resumed from a snapshot
    /// inherits the donor's count at the capture point.
    pub snapshots_taken: u64,
}

impl RunMetrics {
    /// Total retries over all sites (mirrors
    /// [`crate::RunStats::total_retries`]).
    pub fn total_retries(&self) -> u64 {
        self.per_site_retries.iter().map(|(_, r)| r).sum()
    }

    /// First-time checkpoint captures (executions minus re-executions).
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoint_executions - self.checkpoint_reexecutions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.summary(), "no samples");
    }

    #[test]
    fn records_and_bounds() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.sum(), 1106);
        // p100 is clamped to the observed max, not the bucket bound.
        assert_eq!(h.percentile(1.0), Some(1000));
        // p50 lands in the bucket of 2..=3.
        assert_eq!(h.percentile(0.5), Some(3));
    }

    #[test]
    fn percentile_is_upper_bound_of_quantile_bucket() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(5); // bucket 3: 4..=7
        }
        h.record(1_000_000);
        assert_eq!(h.percentile(0.5), Some(7));
        assert_eq!(h.percentile(0.99), Some(7));
        assert_eq!(h.percentile(1.0), Some(1_000_000));
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new();
        a.record(4);
        let mut b = Histogram::new();
        b.record(1024);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(1024));
        assert_eq!(a.buckets().count(), 3);
    }

    #[test]
    fn metrics_roundtrip_serde() {
        let mut m = RunMetrics::default();
        m.per_site_retries.push((SiteId(2), 7));
        m.rollback_latency.record(42);
        m.checkpoint_executions = 3;
        m.checkpoint_reexecutions = 1;
        let json = serde_json::to_string(&m).unwrap();
        let back: RunMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_retries(), 7);
        assert_eq!(back.checkpoints_taken(), 2);
    }
}
