//! Programs: a module plus the threads that execute it.

use conair_ir::{FuncId, Module};

/// One logical thread's entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadSpec {
    /// Thread name (diagnostics).
    pub name: String,
    /// Entry function.
    pub func: FuncId,
    /// Arguments bound to the entry function's parameters.
    pub args: Vec<i64>,
}

impl ThreadSpec {
    /// Builds a spec.
    pub fn new(name: impl Into<String>, func: FuncId, args: Vec<i64>) -> Self {
        Self {
            name: name.into(),
            func,
            args,
        }
    }
}

/// A runnable multithreaded program.
#[derive(Debug, Clone)]
pub struct Program {
    /// The code.
    pub module: Module,
    /// The statically-spawned threads (the paper's workloads all create
    /// their racing threads up front).
    pub threads: Vec<ThreadSpec>,
}

impl Program {
    /// Builds a program.
    ///
    /// # Panics
    ///
    /// Panics if a thread references a missing function or passes the wrong
    /// number of arguments — these are wiring bugs in workload definitions.
    pub fn new(module: Module, threads: Vec<ThreadSpec>) -> Self {
        for t in &threads {
            let func = module
                .functions
                .get(t.func.index())
                .unwrap_or_else(|| panic!("thread `{}`: unknown function {}", t.name, t.func));
            assert_eq!(
                func.num_params,
                t.args.len(),
                "thread `{}`: argument count mismatch",
                t.name
            );
        }
        Self { module, threads }
    }

    /// Convenience: a program whose threads are the named functions with no
    /// arguments.
    ///
    /// # Panics
    ///
    /// Panics if a name is unknown.
    pub fn from_entry_names(module: Module, names: &[&str]) -> Self {
        let threads = names
            .iter()
            .map(|n| {
                let func = module
                    .func_by_name(n)
                    .unwrap_or_else(|| panic!("unknown thread entry `{n}`"));
                ThreadSpec::new(*n, func, Vec::new())
            })
            .collect();
        Self::new(module, threads)
    }

    /// Replaces the module (used after hardening) keeping the same threads.
    ///
    /// Thread entry `FuncId`s remain valid because the transform never
    /// renumbers functions.
    pub fn with_module(&self, module: Module) -> Self {
        Self::new(module, self.threads.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::{FuncBuilder, ModuleBuilder};

    fn two_thread_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let mut a = FuncBuilder::new("a", 0);
        a.ret();
        mb.function(a.finish());
        let mut b = FuncBuilder::new("b", 1);
        b.ret();
        mb.function(b.finish());
        mb.finish()
    }

    #[test]
    fn from_entry_names_resolves() {
        let p = Program::from_entry_names(two_thread_module(), &["a"]);
        assert_eq!(p.threads.len(), 1);
        assert_eq!(p.threads[0].name, "a");
    }

    #[test]
    #[should_panic(expected = "argument count mismatch")]
    fn arg_mismatch_panics() {
        let m = two_thread_module();
        let b = m.func_by_name("b").unwrap();
        let _ = Program::new(m, vec![ThreadSpec::new("b", b, vec![])]);
    }

    #[test]
    #[should_panic(expected = "unknown thread entry")]
    fn unknown_entry_panics() {
        let _ = Program::from_entry_names(two_thread_module(), &["zzz"]);
    }
}
