//! # conair-runtime
//!
//! A deterministic multithreaded interpreter for `conair-ir` programs with
//! built-in support for ConAir's single-threaded idempotent rollback
//! recovery (the `setjmp`/`longjmp` analog of the paper, Section 3.3).
//!
//! The runtime substitutes for the paper's pthreads + Linux testbed:
//!
//! * threads interleave at instruction granularity under a seeded
//!   [`Scheduler`], so every experiment is reproducible;
//! * bug-forcing uses [`ScheduleScript`] gates — the analog of the sleeps
//!   the paper injects to force failure-inducing interleavings;
//! * `Checkpoint` is O(1) — it notes the stack depth and resume position
//!   in a thread-local slot and bumps the epoch; registers are protected
//!   by an epoch-tagged undo-log maintained on the register-write path.
//!   Rollback restores registers and the program counter but **never**
//!   memory — exactly the property that makes idempotent regions (and only
//!   idempotent regions) safe to reexecute;
//! * compensation (Section 4.1) releases locks and frees heap blocks
//!   acquired in the current reexecution epoch before each rollback;
//! * timed locks implement the time-out based deadlock detection of
//!   Figure 5d, with random backoff against recovery livelock.
//!
//! ## Example
//!
//! ```rust
//! use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};
//! use conair_runtime::{run_once, MachineConfig, Program};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let g = mb.global("x", 41);
//! let mut fb = FuncBuilder::new("main", 0);
//! let v = fb.load_global(g);
//! let w = fb.add(v, 1);
//! fb.output("answer", w);
//! fb.ret();
//! mb.function(fb.finish());
//! let program = Program::from_entry_names(mb.finish(), &["main"]);
//!
//! let result = run_once(&program, &MachineConfig::default(), 1);
//! assert!(result.outcome.is_completed());
//! assert_eq!(result.outputs_for("answer"), vec![42]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod deadlock;
mod dense;
mod harness;
mod locks;
mod machine;
mod memory;
mod metrics;
mod outcome;
mod program;
mod sched;
mod thread;
mod trace;

pub use deadlock::{find_wait_cycle, WaitCycle, WaitEdge};
pub use dense::{DenseProgram, FuncLayout};
pub use harness::{
    measure_overhead, measure_restart, run_once, run_scripted, run_traced, run_trials,
    run_trials_parallel, run_with, OverheadReport, RestartReport, TrialPool, TrialSummary,
};
pub use locks::{AcquireResult, LockTable, ThreadId, UnlockError};
pub use machine::{Machine, MachineConfig, MachineSnapshot};
pub use memory::{MemFault, Memory, DEFAULT_LOWER_BOUND, GLOBAL_BASE, HEAP_BASE};
pub use metrics::{AtomicHistogram, Counter, Gauge, Histogram, MetricsRegistry, RunMetrics};
pub use outcome::{FailureRecord, OutputRecord, RunOutcome, RunResult, RunStats, SiteRecovery};
pub use program::{Program, ThreadSpec};
pub use sched::{
    explore, explore_observed, minimize, run_replay, Consult, DecisionTrace, Divergence,
    ExploreConfig, ExploreObserver, ExplorePhases, ExploreReport, ExploreStrategy, Footprint,
    FoundSchedule, FrontierScheduler, Gate, MinimizeReport, PctConfig, PctScheduler, PointKind,
    PointMask, ReplayScheduler, RoundRobin, SchedContext, ScheduleScript, Scheduler, SeededRandom,
};
#[cfg(any(test, feature = "clone-oracle"))]
pub use thread::CloneCheckpoint;
pub use thread::{
    Checkpoint, CompensationRecord, Frame, ThreadState, ThreadStats, ThreadStatus, UndoRecord,
};
pub use trace::{
    from_jsonl, summarize_events, to_chrome_trace, to_jsonl, EventBuffer, TraceEvent, TraceSink,
};
