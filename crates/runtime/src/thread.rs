//! Per-thread interpreter state: call frames, checkpoint slot, compensation
//! log, register undo-log and retry counters.
//!
//! ## Featherweight checkpoints (paper §3.3, Table 7)
//!
//! The paper's checkpoint is a `setjmp` — "saving a few registers", cheap
//! enough to execute at every reexecution point on hot paths. The runtime
//! matches that cost model with an **epoch-tagged register undo-log**
//! instead of cloning the register file:
//!
//! * Between checkpoints, the register-write path ([`ThreadState::write_reg`])
//!   records `(reg, old_value)` at most once per register per epoch. The
//!   dedup check is a single bit test in the thread's `written_mask` for
//!   frames up to 64 registers wide, and one integer compare against the
//!   frame's per-register `last_written_epoch` tag beyond that — no
//!   hashing, no search.
//! * [`ThreadState::save_checkpoint`] is *O(1)*: clear the (recycled) log,
//!   bump the epoch, note depth and resume pc. Nothing is allocated; the
//!   log buffer is reused across epochs, and the tag vectors live in their
//!   frames.
//! * [`ThreadState::restore_checkpoint`] walks the log backwards undoing
//!   register writes — cost proportional to the registers actually written
//!   in the epoch, not to frame width.
//!
//! Register-only undo is sound for the same reason the paper's `jmp_buf`
//! is: hardened reexecution regions are idempotent — no shared-memory or
//! stack-slot writes — so registers are the only state that can differ
//! between the checkpoint and the failure site. Writes to frames *deeper*
//! than the checkpoint frame need no undo records at all: rollback
//! truncates those frames wholesale (the `longjmp` across frames).
//!
//! The pre-undo-log implementation (clone the register image on save,
//! clone it back on restore) is kept behind `cfg(test)` /
//! `feature = "clone-oracle"` as a differential-testing oracle.

use std::collections::HashMap;

use conair_ir::{FuncId, Function, Loc, LockId, Reg, SiteId};

use crate::locks::ThreadId;

/// A sentinel for "no active checkpoint" in [`ThreadState::cp_depth`]:
/// no call stack reaches this depth, so the hot-path compare never
/// matches.
const NO_CHECKPOINT_DEPTH: u32 = u32::MAX;

/// Registers covered by the `written_mask` fast path: frames at most this
/// wide dedup undo records with a single in-register bit test and carry no
/// per-frame tag vector at all.
const MASK_WIDTH: usize = 64;

/// One activation record.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The executing function.
    pub func: FuncId,
    /// Virtual register file — protected by the checkpoint undo-log.
    pub regs: Vec<i64>,
    /// Stack slots — **not** saved by a checkpoint (the stack-slot side of
    /// the paper's idempotency argument).
    pub locals: Vec<i64>,
    /// Next instruction, as a flat index into the function's pre-lowered
    /// instruction table (see [`crate::DenseProgram`]); the entry
    /// instruction is always `0`.
    pub pc: u32,
    /// Register in the *caller's* frame receiving this call's return value.
    pub ret_dst: Option<Reg>,
    /// Wide-frame fallback for undo-log dedup: the epoch at which each
    /// register was last recorded (0 = never; live epochs start at 1).
    /// Only allocated for frames wider than [`MASK_WIDTH`] registers —
    /// narrow frames (the common case) dedup through the thread's
    /// `written_mask` bit set and keep this empty, so calls allocate
    /// nothing extra and hot writes touch no additional cache line.
    pub last_written_epoch: Vec<u64>,
}

impl Frame {
    /// Builds the frame for calling `func` (by id) with `args`.
    pub fn new(func_id: FuncId, func: &Function, args: &[i64], ret_dst: Option<Reg>) -> Self {
        Self::with_sizes(func_id, func.num_regs, func.num_locals, args, ret_dst)
    }

    /// Builds a frame from pre-lowered sizes (see
    /// [`crate::FuncLayout::num_regs`]), avoiding a module lookup on the
    /// call path.
    pub fn with_sizes(
        func_id: FuncId,
        num_regs: usize,
        num_locals: usize,
        args: &[i64],
        ret_dst: Option<Reg>,
    ) -> Self {
        let mut regs = vec![0; num_regs];
        regs[..args.len()].copy_from_slice(args);
        Self {
            func: func_id,
            regs,
            locals: vec![0; num_locals],
            pc: 0,
            ret_dst,
            last_written_epoch: if num_regs > MASK_WIDTH {
                vec![0; num_regs]
            } else {
                Vec::new()
            },
        }
    }
}

/// The thread-local checkpoint slot — the `__thread jmp_buf c` of paper
/// Figure 6. A thread holds at most one: the most recent reexecution point.
///
/// No register image lives here: the registers written since the
/// checkpoint are reconstructible from [`ThreadState::reg_undo`], which is
/// what makes saving O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// Call-stack depth at the checkpoint; rollback truncates to this depth
    /// (`longjmp` across frames).
    pub frame_depth: usize,
    /// Resume pc (the checkpoint instruction's own flat index — on resume
    /// the checkpoint re-executes, re-saving and bumping the epoch, exactly
    /// like a re-entered `setjmp`).
    pub pc: u32,
}

/// The full-clone checkpoint of the pre-undo-log implementation, kept as a
/// differential-testing oracle (`tests/checkpoint_undo.rs` asserts the
/// undo-log restore is register-for-register identical to it).
#[cfg(any(test, feature = "clone-oracle"))]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CloneCheckpoint {
    /// Call-stack depth at the checkpoint.
    pub frame_depth: usize,
    /// Saved register image of the checkpoint frame.
    pub regs: Vec<i64>,
    /// Resume pc.
    pub pc: u32,
}

/// Why a thread cannot run right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// Ready to execute.
    Runnable,
    /// Waiting on a mutex. `site` is set for timed (hardened) acquisitions.
    BlockedOnLock {
        /// The contended lock.
        lock: LockId,
        /// Step at which the wait began (timeout accounting).
        since: u64,
        /// The deadlock failure site, for timed locks.
        site: Option<SiteId>,
    },
    /// Sleeping until the given step (deadlock-recovery random backoff).
    SleepingUntil(u64),
    /// Finished.
    Done,
}

/// A compensation record (paper Section 4.1): a resource acquired inside
/// the current reexecution region, to be released before rollback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompensationRecord {
    /// A heap block allocated at `base`.
    Allocation {
        /// Block base address.
        base: i64,
        /// Epoch (reexecution-point counter) at acquisition.
        epoch: u64,
    },
    /// A lock acquired.
    Lock {
        /// The lock.
        lock: LockId,
        /// Epoch at acquisition.
        epoch: u64,
    },
}

impl CompensationRecord {
    /// The epoch the record was made under.
    pub fn epoch(&self) -> u64 {
        match self {
            CompensationRecord::Allocation { epoch, .. }
            | CompensationRecord::Lock { epoch, .. } => *epoch,
        }
    }
}

/// An entry in the undo log (only under the buffered-writes ablation
/// policy): the previous value of an overwritten location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UndoRecord {
    /// A shared-memory word.
    Mem {
        /// Address overwritten.
        addr: i64,
        /// Previous value.
        old: i64,
        /// Epoch of the write.
        epoch: u64,
    },
    /// A stack slot of the checkpoint frame.
    Local {
        /// Slot index.
        slot: usize,
        /// Previous value.
        old: i64,
        /// Epoch of the write.
        epoch: u64,
    },
}

impl UndoRecord {
    /// The epoch the record was made under.
    pub fn epoch(&self) -> u64 {
        match self {
            UndoRecord::Mem { epoch, .. } | UndoRecord::Local { epoch, .. } => *epoch,
        }
    }
}

/// Execution statistics of one thread.
#[derive(Debug, Clone, Default)]
pub struct ThreadStats {
    /// Instructions executed.
    pub insts: u64,
    /// Checkpoint instructions executed (dynamic reexecution points).
    pub checkpoints: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
}

/// Complete state of one logical thread.
#[derive(Debug, Clone)]
pub struct ThreadState {
    /// This thread's id. The human-readable name lives in the
    /// [`crate::ThreadSpec`] — keeping it out of per-run state avoids a
    /// per-run allocation per thread.
    pub id: ThreadId,
    /// Call stack; empty once the thread is done.
    pub frames: Vec<Frame>,
    /// Scheduling status.
    pub status: ThreadStatus,
    /// The single thread-local checkpoint slot.
    pub checkpoint: Option<Checkpoint>,
    /// Reexecution-point counter (paper Section 4.1) — incremented at every
    /// checkpoint execution.
    pub epoch: u64,
    /// Register undo-log of the current epoch: `(register index, value
    /// before the first write of the epoch)` for the checkpoint frame. The
    /// buffer is recycled — [`ThreadState::save_checkpoint`] clears it
    /// without releasing capacity, so steady-state checkpointing never
    /// allocates.
    pub reg_undo: Vec<(u32, i64)>,
    /// Cached checkpoint frame depth for the hot-path write check
    /// ([`NO_CHECKPOINT_DEPTH`] when no checkpoint is active): the
    /// disabled-recovery register write pays exactly one integer compare.
    cp_depth: u32,
    /// Bit `i` set = register `i` of the checkpoint frame already has an
    /// undo record this epoch. The dedup fast path for frames at most
    /// [`MASK_WIDTH`] registers wide: one shift + test on state already in
    /// cache, no per-frame tag load.
    written_mask: u64,
    /// Resources acquired under recent epochs.
    pub compensation: Vec<CompensationRecord>,
    /// Undo log (buffered-writes policy only).
    pub undo: Vec<UndoRecord>,
    /// Recovery attempts per failure site (`RetryCnt` of Figure 6).
    pub retries: HashMap<SiteId, u64>,
    /// Ring buffer of the most recently executed locations (failure
    /// diagnostics; empty unless tracing is enabled).
    pub trace: std::collections::VecDeque<(u64, Loc)>,
    /// Statistics.
    pub stats: ThreadStats,
}

impl ThreadState {
    /// Creates a thread about to execute `func(args)`.
    pub fn new(id: ThreadId, func_id: FuncId, func: &Function, args: &[i64]) -> Self {
        Self {
            id,
            frames: vec![Frame::new(func_id, func, args, None)],
            status: ThreadStatus::Runnable,
            checkpoint: None,
            epoch: 0,
            reg_undo: Vec::new(),
            cp_depth: NO_CHECKPOINT_DEPTH,
            written_mask: 0,
            compensation: Vec::new(),
            undo: Vec::new(),
            retries: HashMap::new(),
            trace: std::collections::VecDeque::new(),
            stats: ThreadStats::default(),
        }
    }

    /// Records an executed location into the bounded trace ring.
    pub fn record_trace(&mut self, step: u64, loc: Loc, depth: usize) {
        if depth == 0 {
            return;
        }
        if self.trace.len() == depth {
            self.trace.pop_front();
        }
        self.trace.push_back((step, loc));
    }

    /// The active frame.
    ///
    /// # Panics
    ///
    /// Panics if the thread is done (no frames).
    pub fn top(&self) -> &Frame {
        self.frames.last().expect("thread has an active frame")
    }

    /// Mutable active frame.
    ///
    /// # Panics
    ///
    /// Panics if the thread is done.
    pub fn top_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("thread has an active frame")
    }

    /// Whether the thread finished.
    pub fn is_done(&self) -> bool {
        matches!(self.status, ThreadStatus::Done)
    }

    /// Writes `v` to register `r` of the active frame, maintaining the
    /// checkpoint undo-log. This is the interpreter's **only** register
    /// write path; with recovery disabled (no checkpoint) it costs one
    /// integer compare over a raw store.
    ///
    /// Only writes to the *checkpoint frame itself* are logged: deeper
    /// frames are truncated wholesale on rollback, and shallower frames
    /// cannot be written while the checkpoint frame is live (returning out
    /// of it retires the checkpoint semantics anyway, exactly like a
    /// `jmp_buf` of a returned-from function).
    #[inline]
    pub fn write_reg(&mut self, r: Reg, v: i64) {
        let depth = self.frames.len() as u32;
        let top = self.frames.last_mut().expect("thread has an active frame");
        if depth == self.cp_depth {
            // Record the pre-write value once per register per epoch: a
            // bit test for narrow frames, an epoch-tag compare beyond
            // MASK_WIDTH. Either way, repeated writes are free.
            let idx = r.index();
            if idx < MASK_WIDTH {
                let bit = 1u64 << idx;
                if self.written_mask & bit == 0 {
                    self.written_mask |= bit;
                    self.reg_undo.push((idx as u32, top.regs[idx]));
                }
            } else {
                let tag = &mut top.last_written_epoch[idx];
                if *tag != self.epoch {
                    *tag = self.epoch;
                    self.reg_undo.push((idx as u32, top.regs[idx]));
                }
            }
        }
        top.regs[r.index()] = v;
    }

    /// Pops the active frame, retiring the checkpoint when the popped
    /// frame was the checkpoint frame — the paper's `jmp_buf` dies with
    /// its stack frame (a `longjmp` into a returned-from function is
    /// undefined), and retiring it keeps later same-depth frames off the
    /// logging path entirely.
    ///
    /// # Panics
    ///
    /// Panics if the thread is done (no frames).
    pub fn pop_frame(&mut self) -> Frame {
        let finished = self.frames.pop().expect("pop with an active frame");
        if self.cp_depth != NO_CHECKPOINT_DEPTH && (self.frames.len() as u32) < self.cp_depth {
            self.checkpoint = None;
            self.cp_depth = NO_CHECKPOINT_DEPTH;
            self.written_mask = 0;
            self.reg_undo.clear();
        }
        finished
    }

    /// Registers recorded in the undo log this epoch (rollback cost in
    /// registers — the metric behind `RunMetrics::undo_depth`).
    pub fn undo_depth(&self) -> usize {
        self.reg_undo.len()
    }

    /// Records a compensation entry under the current epoch, applying the
    /// paper's lazy cleaning: stale entries (older epochs) are dropped when
    /// a new record arrives under a newer epoch.
    pub fn record_compensation(&mut self, record: CompensationRecord) {
        if self
            .compensation
            .last()
            .is_some_and(|last| last.epoch() != self.epoch)
        {
            self.compensation.clear();
        }
        self.compensation.push(record);
    }

    /// Takes the compensation records of the current epoch (called during
    /// rollback). Stale records are retained away in place — no partition
    /// into side vectors — and the returned buffer is the thread's own
    /// (hand it back via [`ThreadState::recycle_compensation_buffer`] to
    /// keep rollback allocation-free).
    pub fn take_current_epoch_compensation(&mut self) -> Vec<CompensationRecord> {
        let epoch = self.epoch;
        self.compensation.retain(|r| r.epoch() == epoch);
        std::mem::take(&mut self.compensation)
    }

    /// Returns the (drained) buffer from
    /// [`ThreadState::take_current_epoch_compensation`] so its capacity is
    /// reused by the next epoch's records.
    pub fn recycle_compensation_buffer(&mut self, mut buf: Vec<CompensationRecord>) {
        if buf.capacity() > self.compensation.capacity() {
            buf.clear();
            buf.append(&mut self.compensation);
            self.compensation = buf;
        }
    }

    /// Saves the checkpoint (the `setjmp`): note the stack depth and
    /// resume position, bump the epoch, reset the undo log. O(1) and
    /// allocation-free — the featherweight cost model of paper §3.3.
    pub fn save_checkpoint(&mut self) {
        let depth = self.frames.len();
        let pc = self.top().pc - 1;
        self.checkpoint = Some(Checkpoint {
            frame_depth: depth,
            // `pc` has already been advanced past the checkpoint by the
            // interpreter; resume re-executes the checkpoint instruction.
            pc,
        });
        self.cp_depth = depth as u32;
        self.epoch += 1;
        self.written_mask = 0;
        self.reg_undo.clear();
        self.stats.checkpoints += 1;
    }

    /// Restores the checkpoint (the `longjmp`): truncate frames, undo the
    /// epoch's register writes in reverse order, reset the program
    /// counter. Returns false when no checkpoint exists.
    pub fn restore_checkpoint(&mut self) -> bool {
        let Some(cp) = self.checkpoint else {
            return false;
        };
        assert!(
            cp.frame_depth <= self.frames.len(),
            "checkpoint above current stack — stale jmp_buf"
        );
        self.frames.truncate(cp.frame_depth);
        let top = self.frames.last_mut().expect("checkpoint frame is live");
        for &(r, old) in self.reg_undo.iter().rev() {
            top.regs[r as usize] = old;
        }
        // The written mask and epoch tags keep their values: the next
        // instruction is the re-executed checkpoint itself, which resets
        // both before any further write can need logging.
        self.reg_undo.clear();
        top.pc = cp.pc;
        self.stats.rollbacks += 1;
        true
    }
}

/// The pre-undo-log checkpoint implementation, preserved verbatim as the
/// differential-testing oracle: cloning the whole register image on save
/// and cloning it back on restore is trivially correct, so any divergence
/// from the undo-log restore is a bug in the log discipline.
#[cfg(any(test, feature = "clone-oracle"))]
impl ThreadState {
    /// The full-clone `setjmp`: snapshot the top frame's registers and
    /// position as the old implementation did.
    pub fn clone_oracle_save(&self) -> CloneCheckpoint {
        let top = self.top();
        CloneCheckpoint {
            frame_depth: self.frames.len(),
            regs: top.regs.clone(),
            pc: top.pc.wrapping_sub(1),
        }
    }

    /// The full-clone `longjmp`: truncate frames and restore the saved
    /// register image wholesale.
    pub fn clone_oracle_restore(&mut self, cp: &CloneCheckpoint) {
        assert!(
            cp.frame_depth <= self.frames.len(),
            "oracle checkpoint above current stack"
        );
        self.frames.truncate(cp.frame_depth);
        let top = self.frames.last_mut().expect("checkpoint frame is live");
        top.regs = cp.regs.clone();
        top.pc = cp.pc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::Function;

    fn mk_thread() -> ThreadState {
        let mut f = Function::new("main", 2);
        f.num_regs = 4;
        f.num_locals = 1;
        ThreadState::new(ThreadId(0), FuncId(0), &f, &[10, 20])
    }

    #[test]
    fn frame_binds_args() {
        let t = mk_thread();
        assert_eq!(t.top().regs, vec![10, 20, 0, 0]);
        assert_eq!(t.top().locals, vec![0]);
    }

    #[test]
    fn checkpoint_roundtrip_restores_registers_not_locals() {
        let mut t = mk_thread();
        // Simulate having just executed a checkpoint at flat pc 3.
        t.top_mut().pc = 4;
        t.save_checkpoint();
        assert_eq!(t.epoch, 1);

        // Mutate registers (through the logged write path) and locals,
        // advance.
        t.write_reg(Reg(2), 999);
        t.top_mut().locals[0] = 777;
        t.top_mut().pc = 9;

        assert!(t.restore_checkpoint());
        assert_eq!(t.top().regs[2], 0, "registers restored");
        assert_eq!(t.top().locals[0], 777, "stack slots NOT restored");
        assert_eq!(t.top().pc, 3, "resumes at the checkpoint instruction");
        assert_eq!(t.stats.rollbacks, 1);
    }

    #[test]
    fn undo_log_dedups_by_epoch_tag() {
        let mut t = mk_thread();
        t.top_mut().pc = 1;
        t.save_checkpoint();
        for _ in 0..100 {
            t.write_reg(Reg(3), 1);
            t.write_reg(Reg(2), 2);
        }
        assert_eq!(t.undo_depth(), 2, "one record per register per epoch");
        assert!(t.restore_checkpoint());
        assert_eq!(t.top().regs, vec![10, 20, 0, 0]);
    }

    #[test]
    fn save_checkpoint_recycles_log_buffer(/* allocation-free steady state */) {
        let mut t = mk_thread();
        t.top_mut().pc = 1;
        t.save_checkpoint();
        t.write_reg(Reg(0), 1);
        t.write_reg(Reg(1), 2);
        let cap = t.reg_undo.capacity();
        assert!(cap >= 2);
        t.top_mut().pc = 1;
        t.save_checkpoint();
        assert_eq!(t.undo_depth(), 0, "new epoch starts with an empty log");
        assert_eq!(t.reg_undo.capacity(), cap, "buffer capacity is retained");
    }

    #[test]
    fn writes_without_checkpoint_pay_no_logging(/* the disabled-recovery path */) {
        let mut t = mk_thread();
        t.write_reg(Reg(0), 5);
        assert_eq!(t.undo_depth(), 0);
        assert_eq!(t.written_mask, 0, "no mask bit touched");
        assert!(
            t.top().last_written_epoch.is_empty(),
            "narrow frames carry no tag vector at all"
        );
    }

    #[test]
    fn wide_frames_dedup_through_epoch_tags() {
        // Frames wider than the 64-bit mask fall back to per-register
        // epoch tags; both halves of the register file must dedup.
        let mut f = Function::new("wide", 0);
        f.num_regs = 100;
        let mut t = ThreadState::new(ThreadId(0), FuncId(0), &f, &[]);
        assert_eq!(t.top().last_written_epoch.len(), 100);
        t.top_mut().pc = 1;
        t.save_checkpoint();
        for _ in 0..10 {
            t.write_reg(Reg(3), 7); // mask path
            t.write_reg(Reg(90), 8); // tag path
        }
        assert_eq!(t.undo_depth(), 2, "one record per register per epoch");
        assert!(t.restore_checkpoint());
        assert_eq!(t.top().regs[3], 0);
        assert_eq!(t.top().regs[90], 0);
    }

    #[test]
    fn checkpoint_retired_when_its_frame_returns() {
        let mut t = mk_thread();
        // Enter a callee and checkpoint inside it.
        let mut callee = Function::new("callee", 0);
        callee.num_regs = 2;
        t.frames
            .push(Frame::new(FuncId(1), &callee, &[], Some(Reg(3))));
        t.top_mut().pc = 1;
        t.save_checkpoint();
        t.write_reg(Reg(0), 9);
        assert_eq!(t.undo_depth(), 1);

        // Returning out of the checkpoint frame kills the jmp_buf.
        let finished = t.pop_frame();
        assert_eq!(finished.ret_dst, Some(Reg(3)));
        assert!(t.checkpoint.is_none(), "checkpoint retired");
        assert!(!t.restore_checkpoint());
        // Later writes at the same depth pay no logging.
        t.write_reg(Reg(1), 5);
        assert_eq!(t.undo_depth(), 0);
    }

    #[test]
    fn restore_without_checkpoint_fails() {
        let mut t = mk_thread();
        assert!(!t.restore_checkpoint());
    }

    #[test]
    fn rollback_pops_frames() {
        let mut t = mk_thread();
        t.top_mut().pc = 1;
        t.save_checkpoint();
        // Push a callee frame; its writes need no undo records.
        let mut callee = Function::new("callee", 0);
        callee.num_regs = 1;
        t.frames
            .push(Frame::new(FuncId(1), &callee, &[], Some(Reg(3))));
        t.write_reg(Reg(0), 42);
        assert_eq!(t.undo_depth(), 0, "callee frame writes are not logged");
        assert_eq!(t.frames.len(), 2);
        assert!(t.restore_checkpoint());
        assert_eq!(t.frames.len(), 1, "longjmp across the callee frame");
        assert_eq!(t.top().func, FuncId(0));
    }

    #[test]
    fn return_value_write_into_checkpoint_frame_is_logged() {
        let mut t = mk_thread();
        t.top_mut().pc = 1;
        t.save_checkpoint();
        let mut callee = Function::new("callee", 0);
        callee.num_regs = 1;
        t.frames
            .push(Frame::new(FuncId(1), &callee, &[], Some(Reg(3))));
        // Simulate the interpreter's return path: pop (the checkpoint is
        // below, so it survives), then write the return value into the
        // (checkpoint) frame through write_reg.
        let finished = t.pop_frame();
        assert!(t.checkpoint.is_some(), "checkpoint frame still live");
        t.write_reg(finished.ret_dst.expect("has dst"), 77);
        assert_eq!(t.top().regs[3], 77);
        assert_eq!(t.undo_depth(), 1, "ret_dst write is logged");
        assert!(t.restore_checkpoint());
        assert_eq!(t.top().regs[3], 0, "ret_dst write undone");
    }

    #[test]
    fn undo_log_matches_clone_oracle() {
        let mut t = mk_thread();
        t.top_mut().pc = 4;
        let oracle = t.clone_oracle_save();
        let mut shadow = t.clone();
        t.save_checkpoint();

        for (r, v) in [(0, -1), (2, 999), (0, 17), (3, 3), (2, 1000)] {
            t.write_reg(Reg(r), v);
            shadow.write_reg(Reg(r), v);
        }
        assert!(t.restore_checkpoint());
        shadow.clone_oracle_restore(&oracle);
        assert_eq!(t.top().regs, shadow.top().regs);
        assert_eq!(t.top().pc, shadow.top().pc);
    }

    #[test]
    fn compensation_epoch_discipline() {
        let mut t = mk_thread();
        t.top_mut().pc = 1;
        t.save_checkpoint(); // epoch 1
        t.record_compensation(CompensationRecord::Lock {
            lock: LockId(0),
            epoch: t.epoch,
        });
        t.top_mut().pc = 2;
        t.save_checkpoint(); // epoch 2 — previous records are stale
        t.record_compensation(CompensationRecord::Allocation {
            base: 0x100_0000,
            epoch: t.epoch,
        });
        // The stale lock record was cleaned lazily on the new record.
        assert_eq!(t.compensation.len(), 1);
        let current = t.take_current_epoch_compensation();
        assert_eq!(current.len(), 1);
        assert!(matches!(
            current[0],
            CompensationRecord::Allocation {
                base: 0x100_0000,
                ..
            }
        ));
        assert!(t.compensation.is_empty());
        // Handing the buffer back preserves its capacity for reuse.
        let cap = current.capacity();
        t.recycle_compensation_buffer(current);
        assert_eq!(t.compensation.capacity(), cap);
        assert!(t.compensation.is_empty());
    }

    #[test]
    fn stale_compensation_dropped_at_rollback_too() {
        let mut t = mk_thread();
        t.top_mut().pc = 1;
        t.save_checkpoint(); // epoch 1
        t.record_compensation(CompensationRecord::Lock {
            lock: LockId(0),
            epoch: 0, // simulated stale record
        });
        let current = t.take_current_epoch_compensation();
        assert!(current.is_empty(), "stale records are not compensated");
    }
}
