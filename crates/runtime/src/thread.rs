//! Per-thread interpreter state: call frames, checkpoint slot, compensation
//! log and retry counters.

use std::collections::HashMap;

use conair_ir::{FuncId, Function, Loc, LockId, Reg, SiteId};

use crate::locks::ThreadId;

/// One activation record.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The executing function.
    pub func: FuncId,
    /// Virtual register file — saved wholesale by a checkpoint.
    pub regs: Vec<i64>,
    /// Stack slots — **not** saved by a checkpoint (the stack-slot side of
    /// the paper's idempotency argument).
    pub locals: Vec<i64>,
    /// Next instruction, as a flat index into the function's pre-lowered
    /// instruction table (see [`crate::DenseProgram`]); the entry
    /// instruction is always `0`.
    pub pc: u32,
    /// Register in the *caller's* frame receiving this call's return value.
    pub ret_dst: Option<Reg>,
}

impl Frame {
    /// Builds the frame for calling `func` (by id) with `args`.
    pub fn new(func_id: FuncId, func: &Function, args: &[i64], ret_dst: Option<Reg>) -> Self {
        let mut regs = vec![0; func.num_regs];
        regs[..args.len()].copy_from_slice(args);
        Self {
            func: func_id,
            regs,
            locals: vec![0; func.num_locals],
            pc: 0,
            ret_dst,
        }
    }
}

/// The thread-local checkpoint slot — the `__thread jmp_buf c` of paper
/// Figure 6. A thread holds at most one: the most recent reexecution point.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Call-stack depth at the checkpoint; rollback truncates to this depth
    /// (`longjmp` across frames).
    pub frame_depth: usize,
    /// Saved register image of the checkpoint frame.
    pub regs: Vec<i64>,
    /// Resume pc (the checkpoint instruction's own flat index — on resume
    /// the checkpoint re-executes, re-saving and bumping the epoch, exactly
    /// like a re-entered `setjmp`).
    pub pc: u32,
}

/// Why a thread cannot run right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// Ready to execute.
    Runnable,
    /// Waiting on a mutex. `site` is set for timed (hardened) acquisitions.
    BlockedOnLock {
        /// The contended lock.
        lock: LockId,
        /// Step at which the wait began (timeout accounting).
        since: u64,
        /// The deadlock failure site, for timed locks.
        site: Option<SiteId>,
    },
    /// Sleeping until the given step (deadlock-recovery random backoff).
    SleepingUntil(u64),
    /// Finished.
    Done,
}

/// A compensation record (paper Section 4.1): a resource acquired inside
/// the current reexecution region, to be released before rollback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompensationRecord {
    /// A heap block allocated at `base`.
    Allocation {
        /// Block base address.
        base: i64,
        /// Epoch (reexecution-point counter) at acquisition.
        epoch: u64,
    },
    /// A lock acquired.
    Lock {
        /// The lock.
        lock: LockId,
        /// Epoch at acquisition.
        epoch: u64,
    },
}

impl CompensationRecord {
    /// The epoch the record was made under.
    pub fn epoch(&self) -> u64 {
        match self {
            CompensationRecord::Allocation { epoch, .. }
            | CompensationRecord::Lock { epoch, .. } => *epoch,
        }
    }
}

/// An entry in the undo log (only under the buffered-writes ablation
/// policy): the previous value of an overwritten location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UndoRecord {
    /// A shared-memory word.
    Mem {
        /// Address overwritten.
        addr: i64,
        /// Previous value.
        old: i64,
        /// Epoch of the write.
        epoch: u64,
    },
    /// A stack slot of the checkpoint frame.
    Local {
        /// Slot index.
        slot: usize,
        /// Previous value.
        old: i64,
        /// Epoch of the write.
        epoch: u64,
    },
}

impl UndoRecord {
    /// The epoch the record was made under.
    pub fn epoch(&self) -> u64 {
        match self {
            UndoRecord::Mem { epoch, .. } | UndoRecord::Local { epoch, .. } => *epoch,
        }
    }
}

/// Execution statistics of one thread.
#[derive(Debug, Clone, Default)]
pub struct ThreadStats {
    /// Instructions executed.
    pub insts: u64,
    /// Checkpoint instructions executed (dynamic reexecution points).
    pub checkpoints: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
}

/// Complete state of one logical thread.
#[derive(Debug, Clone)]
pub struct ThreadState {
    /// This thread's id. The human-readable name lives in the
    /// [`crate::ThreadSpec`] — keeping it out of per-run state avoids a
    /// per-run allocation per thread.
    pub id: ThreadId,
    /// Call stack; empty once the thread is done.
    pub frames: Vec<Frame>,
    /// Scheduling status.
    pub status: ThreadStatus,
    /// The single thread-local checkpoint slot.
    pub checkpoint: Option<Checkpoint>,
    /// Reexecution-point counter (paper Section 4.1) — incremented at every
    /// checkpoint execution.
    pub epoch: u64,
    /// Resources acquired under recent epochs.
    pub compensation: Vec<CompensationRecord>,
    /// Undo log (buffered-writes policy only).
    pub undo: Vec<UndoRecord>,
    /// Recovery attempts per failure site (`RetryCnt` of Figure 6).
    pub retries: HashMap<SiteId, u64>,
    /// Ring buffer of the most recently executed locations (failure
    /// diagnostics; empty unless tracing is enabled).
    pub trace: std::collections::VecDeque<(u64, Loc)>,
    /// Statistics.
    pub stats: ThreadStats,
}

impl ThreadState {
    /// Creates a thread about to execute `func(args)`.
    pub fn new(id: ThreadId, func_id: FuncId, func: &Function, args: &[i64]) -> Self {
        Self {
            id,
            frames: vec![Frame::new(func_id, func, args, None)],
            status: ThreadStatus::Runnable,
            checkpoint: None,
            epoch: 0,
            compensation: Vec::new(),
            undo: Vec::new(),
            retries: HashMap::new(),
            trace: std::collections::VecDeque::new(),
            stats: ThreadStats::default(),
        }
    }

    /// Records an executed location into the bounded trace ring.
    pub fn record_trace(&mut self, step: u64, loc: Loc, depth: usize) {
        if depth == 0 {
            return;
        }
        if self.trace.len() == depth {
            self.trace.pop_front();
        }
        self.trace.push_back((step, loc));
    }

    /// The active frame.
    ///
    /// # Panics
    ///
    /// Panics if the thread is done (no frames).
    pub fn top(&self) -> &Frame {
        self.frames.last().expect("thread has an active frame")
    }

    /// Mutable active frame.
    ///
    /// # Panics
    ///
    /// Panics if the thread is done.
    pub fn top_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("thread has an active frame")
    }

    /// Whether the thread finished.
    pub fn is_done(&self) -> bool {
        matches!(self.status, ThreadStatus::Done)
    }

    /// Records a compensation entry under the current epoch, applying the
    /// paper's lazy cleaning: stale entries (older epochs) are dropped when
    /// a new record arrives under a newer epoch.
    pub fn record_compensation(&mut self, record: CompensationRecord) {
        if self
            .compensation
            .last()
            .is_some_and(|last| last.epoch() != self.epoch)
        {
            self.compensation.clear();
        }
        self.compensation.push(record);
    }

    /// Takes the compensation records of the current epoch (called during
    /// rollback).
    pub fn take_current_epoch_compensation(&mut self) -> Vec<CompensationRecord> {
        let epoch = self.epoch;
        let (current, _stale): (Vec<_>, Vec<_>) = self
            .compensation
            .drain(..)
            .partition(|r| r.epoch() == epoch);
        current
    }

    /// Saves the checkpoint (the `setjmp`): snapshot the top frame's
    /// registers and position, bump the epoch.
    pub fn save_checkpoint(&mut self) {
        let depth = self.frames.len();
        let top = self.top();
        self.checkpoint = Some(Checkpoint {
            frame_depth: depth,
            regs: top.regs.clone(),
            // `pc` has already been advanced past the checkpoint by the
            // interpreter; resume re-executes the checkpoint instruction.
            pc: top.pc - 1,
        });
        self.epoch += 1;
        self.stats.checkpoints += 1;
    }

    /// Restores the checkpoint (the `longjmp`): truncate frames, restore the
    /// register image, reset the program counter. Returns false when no
    /// checkpoint exists.
    pub fn restore_checkpoint(&mut self) -> bool {
        let Some(cp) = &self.checkpoint else {
            return false;
        };
        assert!(
            cp.frame_depth <= self.frames.len(),
            "checkpoint above current stack — stale jmp_buf"
        );
        self.frames.truncate(cp.frame_depth);
        let pc = cp.pc;
        let regs = cp.regs.clone();
        let top = self.top_mut();
        top.regs = regs;
        top.pc = pc;
        self.stats.rollbacks += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_ir::Function;

    fn mk_thread() -> ThreadState {
        let mut f = Function::new("main", 2);
        f.num_regs = 4;
        f.num_locals = 1;
        ThreadState::new(ThreadId(0), FuncId(0), &f, &[10, 20])
    }

    #[test]
    fn frame_binds_args() {
        let t = mk_thread();
        assert_eq!(t.top().regs, vec![10, 20, 0, 0]);
        assert_eq!(t.top().locals, vec![0]);
    }

    #[test]
    fn checkpoint_roundtrip_restores_registers_not_locals() {
        let mut t = mk_thread();
        // Simulate having just executed a checkpoint at flat pc 3.
        t.top_mut().pc = 4;
        t.save_checkpoint();
        assert_eq!(t.epoch, 1);

        // Mutate registers and locals, advance.
        t.top_mut().regs[2] = 999;
        t.top_mut().locals[0] = 777;
        t.top_mut().pc = 9;

        assert!(t.restore_checkpoint());
        assert_eq!(t.top().regs[2], 0, "registers restored");
        assert_eq!(t.top().locals[0], 777, "stack slots NOT restored");
        assert_eq!(t.top().pc, 3, "resumes at the checkpoint instruction");
        assert_eq!(t.stats.rollbacks, 1);
    }

    #[test]
    fn restore_without_checkpoint_fails() {
        let mut t = mk_thread();
        assert!(!t.restore_checkpoint());
    }

    #[test]
    fn rollback_pops_frames() {
        let mut t = mk_thread();
        t.top_mut().pc = 1;
        t.save_checkpoint();
        // Push a callee frame.
        let mut callee = Function::new("callee", 0);
        callee.num_regs = 1;
        t.frames
            .push(Frame::new(FuncId(1), &callee, &[], Some(Reg(3))));
        assert_eq!(t.frames.len(), 2);
        assert!(t.restore_checkpoint());
        assert_eq!(t.frames.len(), 1, "longjmp across the callee frame");
        assert_eq!(t.top().func, FuncId(0));
    }

    #[test]
    fn compensation_epoch_discipline() {
        let mut t = mk_thread();
        t.top_mut().pc = 1;
        t.save_checkpoint(); // epoch 1
        t.record_compensation(CompensationRecord::Lock {
            lock: LockId(0),
            epoch: t.epoch,
        });
        t.top_mut().pc = 2;
        t.save_checkpoint(); // epoch 2 — previous records are stale
        t.record_compensation(CompensationRecord::Allocation {
            base: 0x100_0000,
            epoch: t.epoch,
        });
        // The stale lock record was cleaned lazily on the new record.
        assert_eq!(t.compensation.len(), 1);
        let current = t.take_current_epoch_compensation();
        assert_eq!(current.len(), 1);
        assert!(matches!(
            current[0],
            CompensationRecord::Allocation {
                base: 0x100_0000,
                ..
            }
        ));
        assert!(t.compensation.is_empty());
    }

    #[test]
    fn stale_compensation_dropped_at_rollback_too() {
        let mut t = mk_thread();
        t.top_mut().pc = 1;
        t.save_checkpoint(); // epoch 1
        t.record_compensation(CompensationRecord::Lock {
            lock: LockId(0),
            epoch: 0, // simulated stale record
        });
        let current = t.take_current_epoch_compensation();
        assert!(current.is_empty(), "stale records are not compensated");
    }
}
