//! Experiment harness: repeated trials, overhead measurement and the
//! whole-program-restart baseline used by Table 7 and Figure 4.

use std::time::Duration;

use crate::machine::{Machine, MachineConfig};
use crate::metrics::Histogram;
use crate::outcome::{RunOutcome, RunResult};
use crate::program::Program;
use crate::sched::{ScheduleScript, Scheduler, SeededRandom};
use crate::trace::TraceSink;

/// Runs `program` once with a seeded random scheduler.
pub fn run_once(program: &Program, config: MachineConfig, seed: u64) -> RunResult {
    let mut sched = SeededRandom::new(seed);
    Machine::new(program, config).run(&mut sched)
}

/// Runs `program` once under a schedule script (bug forcing).
pub fn run_scripted(
    program: &Program,
    config: MachineConfig,
    script: ScheduleScript,
    seed: u64,
) -> RunResult {
    let mut sched = SeededRandom::new(seed);
    Machine::new(program, config)
        .with_script(script)
        .run(&mut sched)
}

/// Runs `program` once under an arbitrary scheduler and script.
pub fn run_with(
    program: &Program,
    config: MachineConfig,
    script: ScheduleScript,
    scheduler: &mut dyn Scheduler,
) -> RunResult {
    Machine::new(program, config)
        .with_script(script)
        .run(scheduler)
}

/// Runs `program` once with structured tracing: every machine event goes
/// to `sink`. Pass a clone of a [`crate::EventBuffer`] to keep the events.
pub fn run_traced(
    program: &Program,
    config: MachineConfig,
    script: ScheduleScript,
    seed: u64,
    sink: Box<dyn TraceSink>,
) -> RunResult {
    let mut sched = SeededRandom::new(seed);
    Machine::new(program, config)
        .with_script(script)
        .with_sink(sink)
        .run(&mut sched)
}

/// Outcome tallies over repeated trials.
#[derive(Debug, Clone, Default)]
pub struct TrialSummary {
    /// Trials run.
    pub trials: usize,
    /// Runs that completed normally.
    pub completed: usize,
    /// Runs that failed (any failure kind).
    pub failed: usize,
    /// Runs that hung.
    pub hung: usize,
    /// Runs stopped by the step limit.
    pub step_limited: usize,
    /// Mean instructions executed per run.
    pub mean_insts: f64,
    /// Mean retries per run (over all sites).
    pub mean_retries: f64,
    /// Maximum recovery steps seen in any run.
    pub max_recovery_steps: Option<u64>,
    /// Total wall time over all trials.
    pub wall: Duration,
    /// Distribution of per-run total retries (one sample per trial).
    pub retries_hist: Histogram,
    /// Distribution of per-site recovery latencies in steps, pooled over
    /// all trials (one sample per site that recovered).
    pub recovery_hist: Histogram,
}

impl TrialSummary {
    /// Whether every trial completed normally — the paper's success
    /// criterion ("1000 runs, all correct").
    pub fn all_completed(&self) -> bool {
        self.completed == self.trials
    }

    /// Approximate `q`-quantile of per-run retries (`None` with no trials).
    pub fn retries_percentile(&self, q: f64) -> Option<u64> {
        self.retries_hist.percentile(q)
    }

    /// Approximate `q`-quantile of recovery latency in steps (`None` when
    /// no site ever recovered).
    pub fn recovery_percentile(&self, q: f64) -> Option<u64> {
        self.recovery_hist.percentile(q)
    }
}

/// Runs `trials` seeded trials (seeds `seed0..seed0+trials`) under `script`.
pub fn run_trials(
    program: &Program,
    config: &MachineConfig,
    script: &ScheduleScript,
    seed0: u64,
    trials: usize,
) -> TrialSummary {
    let mut summary = TrialSummary {
        trials,
        ..TrialSummary::default()
    };
    let mut insts_total = 0u64;
    let mut retries_total = 0u64;
    for i in 0..trials {
        let result = run_scripted(program, config.clone(), script.clone(), seed0 + i as u64);
        match &result.outcome {
            RunOutcome::Completed => summary.completed += 1,
            RunOutcome::Failed(_) => summary.failed += 1,
            RunOutcome::Hang { .. } => summary.hung += 1,
            RunOutcome::StepLimit => summary.step_limited += 1,
        }
        insts_total += result.stats.insts;
        let run_retries = result.stats.total_retries();
        retries_total += run_retries;
        summary.retries_hist.record(run_retries);
        summary
            .recovery_hist
            .merge(&result.metrics.rollback_latency);
        summary.max_recovery_steps = summary
            .max_recovery_steps
            .max(result.stats.max_recovery_steps());
        summary.wall += result.stats.wall;
    }
    summary.mean_insts = insts_total as f64 / trials.max(1) as f64;
    summary.mean_retries = retries_total as f64 / trials.max(1) as f64;
    summary
}

/// Overhead of a hardened program relative to the original, in both
/// instruction count and wall time, measured on non-failing runs with
/// identical scheduler seeds (the paper's run-time overhead methodology:
/// same input, no failure-inducing noise, 20 runs).
#[derive(Debug, Clone, Default)]
pub struct OverheadReport {
    /// Mean instructions per run, original program.
    pub base_insts: f64,
    /// Mean instructions per run, hardened program.
    pub hardened_insts: f64,
    /// Mean dynamic reexecution points per hardened run.
    pub dynamic_points: f64,
    /// Instruction-count overhead fraction (e.g. 0.004 = 0.4%).
    pub inst_overhead: f64,
    /// Wall-clock overhead fraction (noisier; reported for completeness).
    pub wall_overhead: f64,
}

/// Measures overhead over `trials` seeds.
pub fn measure_overhead(
    original: &Program,
    hardened: &Program,
    config: &MachineConfig,
    seed0: u64,
    trials: usize,
) -> OverheadReport {
    let mut base_insts = 0u64;
    let mut hard_insts = 0u64;
    let mut points = 0u64;
    let mut base_wall = Duration::ZERO;
    let mut hard_wall = Duration::ZERO;
    for i in 0..trials {
        let seed = seed0 + i as u64;
        let b = run_once(original, config.clone(), seed);
        let h = run_once(hardened, config.clone(), seed);
        debug_assert!(
            b.outcome.is_completed() && h.outcome.is_completed(),
            "overhead must be measured on non-failing runs \
             (original: {:?}, hardened: {:?})",
            b.outcome,
            h.outcome
        );
        base_insts += b.stats.insts;
        hard_insts += h.stats.insts;
        points += h.stats.checkpoints;
        base_wall += b.stats.wall;
        hard_wall += h.stats.wall;
    }
    let t = trials.max(1) as f64;
    let base = base_insts as f64 / t;
    let hard = hard_insts as f64 / t;
    OverheadReport {
        base_insts: base,
        hardened_insts: hard,
        dynamic_points: points as f64 / t,
        inst_overhead: if base > 0.0 {
            (hard - base) / base
        } else {
            0.0
        },
        wall_overhead: if base_wall.as_nanos() > 0 {
            (hard_wall.as_secs_f64() - base_wall.as_secs_f64()) / base_wall.as_secs_f64()
        } else {
            0.0
        },
    }
}

/// The whole-program-restart recovery baseline (Table 7's "Restart"
/// column): on failure, the entire program re-runs from scratch with a
/// different seed until it completes. The cost is the steps wasted in
/// failed attempts plus one full successful run.
#[derive(Debug, Clone)]
pub struct RestartReport {
    /// Total steps spent including failed attempts and the final success.
    pub total_steps: u64,
    /// Number of restarts needed before success.
    pub restarts: usize,
    /// Whether a successful run was eventually obtained.
    pub succeeded: bool,
}

/// Measures restart recovery: run under the bug-forcing script (which makes
/// the original program fail); then restart under `retry_script` with fresh
/// seeds (the failure is nondeterministic in the field, so a retry under a
/// non-forced — or known-good — schedule eventually passes).
pub fn measure_restart(
    program: &Program,
    config: &MachineConfig,
    script: &ScheduleScript,
    retry_script: &ScheduleScript,
    seed0: u64,
    max_restarts: usize,
) -> RestartReport {
    let mut total_steps = 0u64;
    // First run: the bug manifests.
    let first = run_scripted(program, config.clone(), script.clone(), seed0);
    total_steps += first.stats.steps;
    if first.outcome.is_completed() {
        return RestartReport {
            total_steps,
            restarts: 0,
            succeeded: true,
        };
    }
    // Restarts: the failure-inducing interleaving is not forced again.
    for i in 0..max_restarts {
        let r = run_scripted(
            program,
            config.clone(),
            retry_script.clone(),
            seed0 + 1 + i as u64,
        );
        total_steps += r.stats.steps;
        if r.outcome.is_completed() {
            return RestartReport {
                total_steps,
                restarts: i + 1,
                succeeded: true,
            };
        }
    }
    RestartReport {
        total_steps,
        restarts: max_restarts,
        succeeded: false,
    }
}
