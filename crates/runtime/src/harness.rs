//! Experiment harness: repeated trials (sequential or fanned across a
//! [`TrialPool`]), overhead measurement and the whole-program-restart
//! baseline used by Table 7 and Figure 4.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use crate::machine::{Machine, MachineConfig};
use crate::metrics::Histogram;
use crate::outcome::{RunOutcome, RunResult};
use crate::program::Program;
use crate::sched::{ScheduleScript, Scheduler, SeededRandom};
use crate::trace::TraceSink;

/// Runs `program` once with a seeded random scheduler.
pub fn run_once(program: &Program, config: &MachineConfig, seed: u64) -> RunResult {
    let mut sched = SeededRandom::new(seed);
    Machine::new(program, *config).run(&mut sched)
}

/// Runs `program` once under a schedule script (bug forcing). The script
/// is borrowed — repeated trials share one script with no per-run clone.
pub fn run_scripted(
    program: &Program,
    config: &MachineConfig,
    script: &ScheduleScript,
    seed: u64,
) -> RunResult {
    let mut sched = SeededRandom::new(seed);
    Machine::new(program, *config)
        .with_script(script)
        .run(&mut sched)
}

/// Runs `program` once under an arbitrary scheduler and script.
pub fn run_with(
    program: &Program,
    config: &MachineConfig,
    script: &ScheduleScript,
    scheduler: &mut dyn Scheduler,
) -> RunResult {
    Machine::new(program, *config)
        .with_script(script)
        .run(scheduler)
}

/// Runs `program` once with structured tracing: every machine event goes
/// to `sink`. Pass a clone of a [`crate::EventBuffer`] to keep the events.
pub fn run_traced(
    program: &Program,
    config: &MachineConfig,
    script: &ScheduleScript,
    seed: u64,
    sink: Box<dyn TraceSink>,
) -> RunResult {
    let mut sched = SeededRandom::new(seed);
    Machine::new(program, *config)
        .with_script(script)
        .with_sink(sink)
        .run(&mut sched)
}

/// Outcome tallies over repeated trials.
#[derive(Debug, Clone, Default)]
pub struct TrialSummary {
    /// Trials run.
    pub trials: usize,
    /// Runs that completed normally.
    pub completed: usize,
    /// Runs that failed (any failure kind).
    pub failed: usize,
    /// Runs that hung.
    pub hung: usize,
    /// Runs stopped by the step limit.
    pub step_limited: usize,
    /// Mean instructions executed per run.
    pub mean_insts: f64,
    /// Mean retries per run (over all sites).
    pub mean_retries: f64,
    /// Maximum recovery steps seen in any run.
    pub max_recovery_steps: Option<u64>,
    /// Total wall time over all trials.
    pub wall: Duration,
    /// Distribution of per-run total retries (one sample per trial).
    pub retries_hist: Histogram,
    /// Distribution of per-site recovery latencies in steps, pooled over
    /// all trials (one sample per site that recovered).
    pub recovery_hist: Histogram,
    /// Distribution of per-run checkpoint executions (one sample per
    /// trial) — how checkpoint-dense the workload actually ran.
    pub checkpoints_hist: Histogram,
    /// Distribution of register undo-log depths at rollback, pooled over
    /// all trials (one sample per rollback) — the per-rollback cost of the
    /// featherweight checkpoint representation.
    pub undo_depth_hist: Histogram,
}

impl TrialSummary {
    /// Whether every trial completed normally — the paper's success
    /// criterion ("1000 runs, all correct").
    pub fn all_completed(&self) -> bool {
        self.completed == self.trials
    }

    /// Approximate `q`-quantile of per-run retries (`None` with no trials).
    pub fn retries_percentile(&self, q: f64) -> Option<u64> {
        self.retries_hist.percentile(q)
    }

    /// Approximate `q`-quantile of recovery latency in steps (`None` when
    /// no site ever recovered).
    pub fn recovery_percentile(&self, q: f64) -> Option<u64> {
        self.recovery_hist.percentile(q)
    }
}

/// Folds per-trial results into a [`TrialSummary`]. Both the sequential
/// and the parallel trial runners go through this single fold, in seed
/// order, so their summaries are identical by construction (modulo the
/// nondeterministic `wall` sum).
fn summarize(results: impl IntoIterator<Item = RunResult>, trials: usize) -> TrialSummary {
    let mut summary = TrialSummary {
        trials,
        ..TrialSummary::default()
    };
    let mut insts_total = 0u64;
    let mut retries_total = 0u64;
    for result in results {
        match &result.outcome {
            RunOutcome::Completed => summary.completed += 1,
            RunOutcome::Failed(_) => summary.failed += 1,
            RunOutcome::Hang { .. } => summary.hung += 1,
            RunOutcome::StepLimit => summary.step_limited += 1,
        }
        insts_total += result.stats.insts;
        let run_retries = result.stats.total_retries();
        retries_total += run_retries;
        summary.retries_hist.record(run_retries);
        summary
            .recovery_hist
            .merge(&result.metrics.rollback_latency);
        summary.checkpoints_hist.record(result.stats.checkpoints);
        summary.undo_depth_hist.merge(&result.metrics.undo_depth);
        summary.max_recovery_steps = summary
            .max_recovery_steps
            .max(result.stats.max_recovery_steps());
        summary.wall += result.stats.wall;
    }
    summary.mean_insts = insts_total as f64 / trials.max(1) as f64;
    summary.mean_retries = retries_total as f64 / trials.max(1) as f64;
    summary
}

/// Runs `trials` seeded trials (seeds `seed0..seed0+trials`) under `script`.
pub fn run_trials(
    program: &Program,
    config: &MachineConfig,
    script: &ScheduleScript,
    seed0: u64,
    trials: usize,
) -> TrialSummary {
    summarize(
        (0..trials).map(|i| run_scripted(program, config, script, seed0 + i as u64)),
        trials,
    )
}

/// A scoped worker pool for index-addressed fan-out, built on
/// [`std::thread::scope`] — no external dependency.
///
/// Workers pull task indices from a shared counter (work stealing by
/// atomic increment), so uneven task durations balance automatically; the
/// results are returned **in index order** regardless of completion order,
/// which is what makes downstream folds deterministic.
pub struct TrialPool {
    jobs: usize,
}

impl TrialPool {
    /// A pool with `jobs` workers (`0` and `1` both mean "run inline").
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// A pool with `jobs` workers, clamped to the machine's available
    /// parallelism. For CPU-bound tasks extra workers only add context
    /// switches and allocator contention (on a single-core host a
    /// `--jobs 4` fan-out ran ~10% *slower* than sequential); since
    /// [`TrialPool::map`] returns identical results at any worker count,
    /// clamping is a pure perf decision.
    pub fn auto(jobs: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::new(jobs.min(cores))
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `task(0..count)` across the pool and returns the results in
    /// index order. With one worker (or one task) this degenerates to a
    /// plain sequential map on the calling thread.
    pub fn map<T, F>(&self, count: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.jobs <= 1 || count <= 1 {
            return (0..count).map(task).collect();
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let workers = self.jobs.min(count);
        std::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let task = &task;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    if tx.send((i, task(i))).is_err() {
                        break;
                    }
                });
            }
        });
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("pool worker delivered every result"))
            .collect()
    }
}

/// Runs `trials` seeded trials fanned across `jobs` workers.
///
/// Seed-pairing is preserved — trial `i` always runs with seed
/// `seed0 + i`, whichever worker picks it up — and the per-trial results
/// are folded **in seed order, not completion order**, through the same
/// fold as [`run_trials`]. The summary is therefore identical to the
/// sequential one in every field except `wall` (a sum of measured
/// per-run durations, inherently nondeterministic).
pub fn run_trials_parallel(
    program: &Program,
    config: &MachineConfig,
    script: &ScheduleScript,
    seed0: u64,
    trials: usize,
    jobs: usize,
) -> TrialSummary {
    let pool = TrialPool::new(jobs);
    if pool.jobs() <= 1 {
        return run_trials(program, config, script, seed0, trials);
    }
    let results = pool.map(trials, |i| {
        run_scripted(program, config, script, seed0 + i as u64)
    });
    summarize(results, trials)
}

/// Overhead of a hardened program relative to the original, in both
/// instruction count and wall time, measured on non-failing runs with
/// identical scheduler seeds (the paper's run-time overhead methodology:
/// same input, no failure-inducing noise, 20 runs).
#[derive(Debug, Clone, Default)]
pub struct OverheadReport {
    /// Mean instructions per run, original program.
    pub base_insts: f64,
    /// Mean instructions per run, hardened program.
    pub hardened_insts: f64,
    /// Mean dynamic reexecution points per hardened run.
    pub dynamic_points: f64,
    /// Instruction-count overhead fraction (e.g. 0.004 = 0.4%).
    pub inst_overhead: f64,
    /// Wall-clock overhead fraction (noisier; reported for completeness).
    pub wall_overhead: f64,
}

/// Measures overhead over `trials` seeds.
pub fn measure_overhead(
    original: &Program,
    hardened: &Program,
    config: &MachineConfig,
    seed0: u64,
    trials: usize,
) -> OverheadReport {
    let mut base_insts = 0u64;
    let mut hard_insts = 0u64;
    let mut points = 0u64;
    let mut base_wall = Duration::ZERO;
    let mut hard_wall = Duration::ZERO;
    for i in 0..trials {
        let seed = seed0 + i as u64;
        let b = run_once(original, config, seed);
        let h = run_once(hardened, config, seed);
        debug_assert!(
            b.outcome.is_completed() && h.outcome.is_completed(),
            "overhead must be measured on non-failing runs \
             (original: {:?}, hardened: {:?})",
            b.outcome,
            h.outcome
        );
        base_insts += b.stats.insts;
        hard_insts += h.stats.insts;
        points += h.stats.checkpoints;
        base_wall += b.stats.wall;
        hard_wall += h.stats.wall;
    }
    let t = trials.max(1) as f64;
    let base = base_insts as f64 / t;
    let hard = hard_insts as f64 / t;
    OverheadReport {
        base_insts: base,
        hardened_insts: hard,
        dynamic_points: points as f64 / t,
        inst_overhead: if base > 0.0 {
            (hard - base) / base
        } else {
            0.0
        },
        wall_overhead: if base_wall.as_nanos() > 0 {
            (hard_wall.as_secs_f64() - base_wall.as_secs_f64()) / base_wall.as_secs_f64()
        } else {
            0.0
        },
    }
}

/// The whole-program-restart recovery baseline (Table 7's "Restart"
/// column): on failure, the entire program re-runs from scratch with a
/// different seed until it completes. The cost is the steps wasted in
/// failed attempts plus one full successful run.
#[derive(Debug, Clone)]
pub struct RestartReport {
    /// Total steps spent including failed attempts and the final success.
    pub total_steps: u64,
    /// Number of restarts needed before success.
    pub restarts: usize,
    /// Whether a successful run was eventually obtained.
    pub succeeded: bool,
}

/// Measures restart recovery: run under the bug-forcing script (which makes
/// the original program fail); then restart under `retry_script` with fresh
/// seeds (the failure is nondeterministic in the field, so a retry under a
/// non-forced — or known-good — schedule eventually passes).
pub fn measure_restart(
    program: &Program,
    config: &MachineConfig,
    script: &ScheduleScript,
    retry_script: &ScheduleScript,
    seed0: u64,
    max_restarts: usize,
) -> RestartReport {
    let mut total_steps = 0u64;
    // First run: the bug manifests.
    let first = run_scripted(program, config, script, seed0);
    total_steps += first.stats.steps;
    if first.outcome.is_completed() {
        return RestartReport {
            total_steps,
            restarts: 0,
            succeeded: true,
        };
    }
    // Restarts: the failure-inducing interleaving is not forced again.
    for i in 0..max_restarts {
        let r = run_scripted(program, config, retry_script, seed0 + 1 + i as u64);
        total_steps += r.stats.steps;
        if r.outcome.is_completed() {
            return RestartReport {
                total_steps,
                restarts: i + 1,
                succeeded: true,
            };
        }
    }
    RestartReport {
        total_steps,
        restarts: max_restarts,
        succeeded: false,
    }
}
