//! The interpreter: executes a [`Program`] under a [`Scheduler`], detecting
//! failures and — for hardened modules — performing single-threaded
//! idempotent rollback recovery.
//!
//! ## Recovery semantics (paper Figure 6, folded into the runtime)
//!
//! * `Checkpoint` saves the thread-local checkpoint slot (stack depth +
//!   resume position; registers are protected by the epoch-tagged undo-log
//!   maintained on the register-write path — see [`crate::thread`]) and
//!   bumps the compensation epoch — the `setjmp` analog, O(1) like the
//!   paper's.
//! * A failing `FailGuard`/`PtrGuard`/timed-lock timeout attempts recovery:
//!   if the per-site retry count is below the cap and a checkpoint exists,
//!   the thread compensates (frees blocks, releases locks acquired in the
//!   current epoch — Section 4.1) and rolls back — the `longjmp`. Deadlock
//!   recoveries additionally sleep a small random number of steps to break
//!   recovery livelock (Section 3.3).
//! * Otherwise the original failure fires, exactly as in the untransformed
//!   program.

use std::sync::Arc;
use std::time::{Duration, Instant};

use conair_ir::{
    DOp, DecodedInst, FailureKind, FuncId, GlobalId, Inst, LockId, Operand, Reg, SiteId,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use crate::deadlock::WaitEdge;
use crate::dense::DenseProgram;
use crate::locks::{AcquireResult, LockTable, ThreadId};
use crate::memory::{Memory, DEFAULT_LOWER_BOUND};
use crate::metrics::{MetricsRegistry, RunMetrics};
use crate::outcome::{FailureRecord, OutputRecord, RunOutcome, RunResult, RunStats, SiteRecovery};
use crate::program::Program;
use crate::sched::{
    CompiledScript, DecisionTrace, Footprint, PointKind, PointMask, SchedContext, ScheduleScript,
    Scheduler,
};
use crate::thread::{CompensationRecord, Frame, ThreadState, ThreadStatus, UndoRecord};
use crate::trace::{TraceEvent, TraceSink};

/// Tuning knobs of one run. All-scalar and `Copy`, so harness layers can
/// share one config across thousands of trials without per-trial clones.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Maximum recovery attempts per (thread, site) — `maxRetryNum` of
    /// Figure 6 (paper default: one million).
    pub max_retries: u64,
    /// Steps a timed lock waits before its timeout fires.
    pub lock_timeout: u64,
    /// Hard step limit; exceeding it reports [`RunOutcome::StepLimit`].
    pub step_limit: u64,
    /// Pointer sanity lower bound (paper Figure 5c; default 10,000).
    pub lower_bound: i64,
    /// Maximum random backoff (steps) after a deadlock rollback.
    pub backoff_max: u64,
    /// Seed for the backoff RNG.
    pub backoff_seed: u64,
    /// Maintain an undo log and roll shared memory back on recovery — the
    /// buffered-writes ablation point of Figure 4. Requires the module to
    /// have been hardened under the matching region policy.
    pub buffered_writes: bool,
    /// Keep a ring buffer of each thread's last N executed locations and
    /// attach the failing thread's to the failure record (0 disables).
    pub trace_depth: usize,
    /// Record every scheduler pick into a [`DecisionTrace`] attached to
    /// the [`RunResult`] (replay/minimization input; off by default).
    pub record_decisions: bool,
    /// Interpret through the legacy per-step `&Inst` walk instead of the
    /// pre-decoded stream — the differential oracle the decoded
    /// interpreter is tested against (mirrors the clone-oracle pattern).
    /// Only honored under `cfg(test)` or the `dense-oracle` feature;
    /// setting it otherwise panics at run start.
    pub dense_oracle: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            max_retries: 1_000_000,
            lock_timeout: 400,
            step_limit: 50_000_000,
            lower_bound: DEFAULT_LOWER_BOUND,
            backoff_max: 24,
            backoff_seed: 0xC0A1,
            buffered_writes: false,
            trace_depth: 0,
            record_decisions: false,
            dense_oracle: false,
        }
    }
}

/// What the execution of one instruction asked the machine to do.
enum StepEffect {
    /// Continue normally.
    Continue,
    /// The thread blocked on a lock (pc stays at the lock instruction).
    Blocked(LockId, Option<SiteId>),
    /// A failure was detected at a *hardened* site: attempt recovery.
    AttemptRecovery(SiteId, FailureKind, String),
    /// An unrecoverable failure (original semantics).
    Fail(FailureKind, Option<SiteId>, String),
    /// The step limit was reached at a superinstruction's internal step
    /// boundary (the fused head executed; the tail did not).
    Limit,
}

/// A deep copy of one machine mid-run, taken at a scheduler decision
/// point (just before the pick). Restoring it into a fresh machine for
/// the same program and config and re-entering the step loop reproduces
/// the donor run bit-for-bit from that decision onwards — the invariant
/// `tests/snapshot_fork.rs` enforces and the explorer's prefix-sharing
/// snapshot tree is built on.
///
/// The image is complete: shared memory, lock table, every thread's
/// frames/undo-log/compensation state, outputs, marker counts, per-site
/// recovery books, the backoff RNG, metrics, and the decision log so far.
/// What it deliberately excludes is re-derivable from the program and
/// config: the dense lowering, the compiled schedule script, and the
/// scratch eligibility buffers.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    memory: Memory,
    locks: LockTable,
    threads: Vec<ThreadState>,
    outputs: Vec<OutputRecord>,
    marker_counts: Vec<u64>,
    site_recovery: HashMap<SiteId, SiteRecovery>,
    site_checks: HashMap<SiteId, u64>,
    wait_edges: Vec<WaitEdge>,
    step: u64,
    aux_work: u64,
    backoff_rng: SmallRng,
    metrics: RunMetrics,
    last_picked: Option<ThreadId>,
    rolled_back: Vec<bool>,
    pending_wait: Option<(LockId, u64)>,
    maybe_timed_waiter: bool,
    decision_log: Vec<u32>,
}

impl MachineSnapshot {
    /// The step counter at capture (what resuming from here saves).
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Scheduler decisions made before the capture point — the snapshot's
    /// depth in the decision tree.
    pub fn decisions(&self) -> usize {
        self.decision_log.len()
    }
}

/// In-flight snapshot capture: one image per decision index in
/// `[from, from + limit)`, in ascending depth order.
struct CaptureState {
    from: usize,
    limit: usize,
    out: Vec<(usize, MachineSnapshot)>,
}

/// The interpreter for one program run.
pub struct Machine<'p> {
    program: &'p Program,
    /// Pre-lowered flat instruction tables: the step loop fetches `&Inst`
    /// by `u32` pc with no per-step cloning. Behind an `Arc` so harness
    /// layers that run the same program thousands of times (the explorer)
    /// can share one lowering instead of rebuilding it per run.
    dense: Arc<DenseProgram<'p>>,
    config: MachineConfig,
    memory: Memory,
    locks: LockTable,
    threads: Vec<ThreadState>,
    /// The schedule script compiled against the module's interned marker
    /// ids: the per-step hold check is integer compares over the thread's
    /// own gates, not string compares over every gate.
    compiled_script: CompiledScript,
    /// Whether any compiled gate could still hold a thread. Marker counts
    /// only grow, so this goes `false` at most once per run (re-evaluated
    /// only when a marker executes) — after which the per-step eligibility
    /// path treats the script as empty and the eligibility cache engages.
    gates_active: bool,
    outputs: Vec<OutputRecord>,
    /// Marker hit counts, indexed by the dense lowering's interned marker
    /// id — a `Vec` index on the hot path, no hashing.
    marker_counts: Vec<u64>,
    site_recovery: HashMap<SiteId, SiteRecovery>,
    site_checks: HashMap<SiteId, u64>,
    wait_edges: Vec<WaitEdge>,
    step: u64,
    aux_work: u64,
    backoff_rng: SmallRng,
    metrics: RunMetrics,
    /// Thread the scheduler ran last step (context-switch detection).
    last_picked: Option<ThreadId>,
    /// Per-thread flag: rolled back since its last checkpoint execution
    /// (marks the next checkpoint execution as a reexecution).
    rolled_back: Vec<bool>,
    /// Wait the currently stepping thread was blocked in, captured before
    /// its status is reset (lock wait-time accounting).
    pending_wait: Option<(LockId, u64)>,
    /// Reused eligibility buffer — refilled every scheduler step instead of
    /// allocating a fresh `Vec` (the step loop's only per-step allocation).
    eligible: Vec<ThreadId>,
    /// Whether `eligible` may be out of date. Set by every thread status
    /// transition; while clear (and the last fill found the set cacheable)
    /// the per-step refill is skipped entirely.
    eligible_stale: bool,
    /// Whether the last fill produced a set that stays valid until a
    /// status transition: no schedule gates (a gate hold moves with each
    /// thread's pc) and every thread `Runnable`/`Done` (blocked and
    /// sleeping threads' eligibility shifts with locks and the step
    /// counter).
    eligible_cacheable: bool,
    /// Whether any thread may be blocked on a *timed* lock — lets the
    /// per-step timeout scan bail without touching the thread list. Set on
    /// every timed-lock block; cleared by a scan that finds no waiter.
    maybe_timed_waiter: bool,
    /// Recorded scheduler picks (only when
    /// [`MachineConfig::record_decisions`] is set).
    decision_log: Vec<u32>,
    /// Reused footprint buffer, aligned with `eligible` — filled at each
    /// consult of a decision-recording run, empty otherwise.
    footprints: Vec<Footprint>,
    /// Snapshot capture plan for this run (`None` outside
    /// [`Machine::run_captured`]).
    capture: Option<CaptureState>,
    /// Wall time spent inside [`Machine::snapshot`] by this run's capture
    /// plan — the explorer's self-profiling "capture" phase.
    capture_wall: Duration,
    sink: Option<Box<dyn TraceSink>>,
    /// When set, every executed instruction bumps the registry's
    /// per-opcode `dispatch_mix` counter (`bench_interp --dispatch-mix`).
    /// Forces single-step dispatch so fused pairs count as two.
    mix: Option<MetricsRegistry>,
}

impl<'p> Machine<'p> {
    /// Creates a machine for `program`, lowering it on the spot.
    pub fn new(program: &'p Program, config: MachineConfig) -> Self {
        let dense = Arc::new(DenseProgram::new(&program.module));
        Self::with_shared_dense(program, dense, config)
    }

    /// Creates a machine reusing a pre-built lowering of `program`'s
    /// module — the per-run construction cost is then allocation of the
    /// run state only. The caller must pass a lowering of the *same*
    /// module.
    pub fn with_shared_dense(
        program: &'p Program,
        dense: Arc<DenseProgram<'p>>,
        config: MachineConfig,
    ) -> Self {
        let memory = Memory::new(&program.module);
        let locks = LockTable::new(program.module.locks.len());
        let threads = program
            .threads
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                ThreadState::new(
                    ThreadId(i),
                    spec.func,
                    program.module.func(spec.func),
                    &spec.args,
                )
            })
            .collect();
        let backoff_seed = config.backoff_seed;
        let thread_count = program.threads.len();
        let marker_counts = vec![0u64; dense.num_markers()];
        Self {
            program,
            dense,
            config,
            memory,
            locks,
            threads,
            compiled_script: CompiledScript::default(),
            gates_active: false,
            outputs: Vec::new(),
            marker_counts,
            site_recovery: HashMap::new(),
            site_checks: HashMap::new(),
            wait_edges: Vec::new(),
            step: 0,
            aux_work: 0,
            backoff_rng: SmallRng::seed_from_u64(backoff_seed),
            metrics: RunMetrics::default(),
            last_picked: None,
            rolled_back: vec![false; thread_count],
            pending_wait: None,
            eligible: Vec::with_capacity(thread_count),
            eligible_stale: true,
            eligible_cacheable: false,
            maybe_timed_waiter: false,
            decision_log: Vec::new(),
            footprints: Vec::with_capacity(thread_count),
            capture: None,
            capture_wall: Duration::ZERO,
            sink: None,
            mix: None,
        }
    }

    /// Captures a deep copy of the run state. Meaningful at a decision
    /// point (the explorer captures just before each scheduler pick);
    /// restoring mid-step is not supported.
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            memory: self.memory.clone(),
            locks: self.locks.clone(),
            threads: self.threads.clone(),
            outputs: self.outputs.clone(),
            marker_counts: self.marker_counts.clone(),
            site_recovery: self.site_recovery.clone(),
            site_checks: self.site_checks.clone(),
            wait_edges: self.wait_edges.clone(),
            step: self.step,
            aux_work: self.aux_work,
            backoff_rng: self.backoff_rng.clone(),
            metrics: self.metrics.clone(),
            last_picked: self.last_picked,
            rolled_back: self.rolled_back.clone(),
            pending_wait: self.pending_wait,
            maybe_timed_waiter: self.maybe_timed_waiter,
            decision_log: self.decision_log.clone(),
        }
    }

    /// Overwrites this machine's run state with `snap`'s. The machine must
    /// have been built for the same program and config as the snapshot's
    /// donor; re-entering [`Machine::run`] then continues the donor run
    /// bit-identically from the capture point.
    pub fn restore_from(&mut self, snap: &MachineSnapshot) {
        self.memory = snap.memory.clone();
        self.locks = snap.locks.clone();
        self.threads = snap.threads.clone();
        self.outputs = snap.outputs.clone();
        self.marker_counts = snap.marker_counts.clone();
        self.site_recovery = snap.site_recovery.clone();
        self.site_checks = snap.site_checks.clone();
        self.wait_edges = snap.wait_edges.clone();
        self.step = snap.step;
        self.aux_work = snap.aux_work;
        self.backoff_rng = snap.backoff_rng.clone();
        self.metrics = snap.metrics.clone();
        self.last_picked = snap.last_picked;
        self.rolled_back = snap.rolled_back.clone();
        self.pending_wait = snap.pending_wait;
        self.maybe_timed_waiter = snap.maybe_timed_waiter;
        self.decision_log = snap.decision_log.clone();
        self.eligible.clear();
        self.eligible_stale = true;
        self.eligible_cacheable = false;
        self.gates_active = self.compiled_script.any_unreleased(&self.marker_counts);
        self.footprints.clear();
    }

    /// [`Machine::new`] + [`Machine::restore_from`] in one step.
    pub fn resume(program: &'p Program, config: MachineConfig, snap: &MachineSnapshot) -> Self {
        let mut m = Self::new(program, config);
        m.restore_from(snap);
        m
    }

    /// Installs a bug-forcing schedule script. The script is compiled
    /// against the module's interned marker ids here, once — repeated
    /// trials share the source script and each run pays a small
    /// per-construction resolve instead of per-step string compares.
    pub fn with_script(mut self, script: &'p ScheduleScript) -> Self {
        self.compiled_script = script.compile(self.threads.len(), &self.dense);
        self.gates_active = self.compiled_script.any_unreleased(&self.marker_counts);
        self
    }

    /// Installs a [`TraceSink`] receiving structured [`TraceEvent`]s.
    ///
    /// Without a sink (the default), no event is ever constructed — every
    /// emission site hands [`Machine::emit`] a closure that only runs when
    /// a sink is present.
    pub fn with_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Streams a per-opcode execution-count histogram into `registry`'s
    /// `dispatch_mix` counters (`bench_interp --dispatch-mix`). Forces
    /// one-instruction-per-dispatch so every logical instruction is
    /// counted exactly once, fused pairs included.
    pub fn with_dispatch_mix(mut self, registry: &MetricsRegistry) -> Self {
        self.mix = Some(registry.clone());
        self
    }

    /// Emits a trace event, constructing it only when a sink is installed.
    #[inline]
    fn emit(&mut self, event: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record(event());
        }
    }

    /// Runs the program to completion under `scheduler`.
    ///
    /// Generic over the scheduler type so concrete callers monomorphize
    /// (the pick call inlines into the step loop); `&mut dyn Scheduler`
    /// callers still work through the `?Sized` bound.
    pub fn run<S: Scheduler + ?Sized>(self, scheduler: &mut S) -> RunResult {
        self.run_inner(scheduler).0
    }

    /// Runs like [`Machine::run`], additionally capturing a
    /// [`MachineSnapshot`] just before each scheduler decision with index
    /// in `[capture_from, capture_from + capture_limit)`. Returned pairs
    /// are `(decision index, image)` in ascending order. Capture keys on
    /// the decision log, so [`MachineConfig::record_decisions`] must be
    /// set.
    pub fn run_captured<S: Scheduler + ?Sized>(
        mut self,
        scheduler: &mut S,
        capture_from: usize,
        capture_limit: usize,
    ) -> (RunResult, Vec<(usize, MachineSnapshot)>) {
        assert!(
            self.config.record_decisions,
            "snapshot capture keys on the decision log"
        );
        if capture_limit > 0 {
            self.capture = Some(CaptureState {
                from: capture_from,
                limit: capture_limit,
                out: Vec::new(),
            });
        }
        self.run_inner(scheduler)
    }

    fn run_inner<S: Scheduler + ?Sized>(
        mut self,
        scheduler: &mut S,
    ) -> (RunResult, Vec<(usize, MachineSnapshot)>) {
        #[cfg(not(any(test, feature = "dense-oracle")))]
        assert!(
            !self.config.dense_oracle,
            "MachineConfig::dense_oracle requires the `dense-oracle` feature"
        );
        let start = Instant::now();
        if self.sink.is_some() {
            for i in 0..self.threads.len() {
                let name = self.program.threads[i].name.clone();
                self.emit(|| TraceEvent::ThreadStarted {
                    step: 0,
                    thread: ThreadId(i),
                    name,
                });
            }
        }
        let mask = scheduler.decision_mask();
        let outcome = self.run_loop(scheduler, mask);
        let step = self.step;
        let decisions = if self.config.record_decisions {
            let mut trace = DecisionTrace::new(scheduler.name(), 0, mask);
            trace.decisions = std::mem::take(&mut self.decision_log);
            self.metrics.sched_decisions = trace.len() as u64;
            self.metrics.decision_trace_hash = trace.hash();
            if self.sink.is_some() {
                let scheduler = trace.scheduler.clone();
                let count = trace.len() as u64;
                let trace_hash = trace.hash();
                self.emit(|| TraceEvent::ScheduleInfo {
                    step,
                    scheduler,
                    decisions: count,
                    trace_hash,
                });
            }
            Some(trace)
        } else {
            None
        };
        let label = outcome.label().to_string();
        self.emit(|| TraceEvent::RunEnded {
            step,
            outcome: label,
        });
        self.metrics.per_site_retries = {
            let mut v: Vec<(SiteId, u64)> = self
                .site_recovery
                .iter()
                .map(|(site, rec)| (*site, rec.retries))
                .collect();
            v.sort_unstable();
            v
        };
        let mut stats = RunStats {
            steps: self.step,
            insts: self.threads.iter().map(|t| t.stats.insts).sum(),
            checkpoints: self.threads.iter().map(|t| t.stats.checkpoints).sum(),
            rollbacks: self.threads.iter().map(|t| t.stats.rollbacks).sum(),
            aux_work: self.aux_work,
            site_recovery: self.site_recovery,
            site_checks: self.site_checks,
            wall: start.elapsed(),
            snapshot_wall: self.capture_wall,
            wait_edges: self.wait_edges,
        };
        stats.wall = start.elapsed();
        let captured = self.capture.map(|c| c.out).unwrap_or_default();
        let result = RunResult {
            outcome,
            outputs: self.outputs,
            stats,
            metrics: self.metrics,
            decisions,
        };
        (result, captured)
    }

    fn run_loop<S: Scheduler + ?Sized>(
        &mut self,
        scheduler: &mut S,
        mask: PointMask,
    ) -> RunOutcome {
        let consult_every_step = mask.is_all();
        loop {
            if self.step >= self.config.step_limit {
                return RunOutcome::StepLimit;
            }
            self.step += 1;

            // 1. Timed-lock timeouts fire before scheduling.
            if let Some(outcome) = self.process_lock_timeouts() {
                return outcome;
            }

            // 2. Compute eligibility (into the reused buffer).
            self.fill_eligible();
            if self.eligible.is_empty() {
                if self.threads.iter().all(ThreadState::is_done) {
                    return RunOutcome::Completed;
                }
                let blocked = self
                    .threads
                    .iter()
                    .filter(|t| matches!(t.status, ThreadStatus::BlockedOnLock { .. }))
                    .count();
                let sleeping = self
                    .threads
                    .iter()
                    .any(|t| matches!(t.status, ThreadStatus::SleepingUntil(_)));
                let waiting_on_timeout = self
                    .threads
                    .iter()
                    .any(|t| matches!(t.status, ThreadStatus::BlockedOnLock { site: Some(_), .. }));
                if sleeping || waiting_on_timeout {
                    // Time passes; sleepers wake and timeouts eventually fire.
                    continue;
                }
                // Snapshot the wait-for graph for diagnosis.
                self.wait_edges = self
                    .threads
                    .iter()
                    .filter_map(|t| match t.status {
                        ThreadStatus::BlockedOnLock { lock, .. } => Some(WaitEdge {
                            waiter: t.id,
                            lock,
                            owner: self.locks.owner(lock),
                        }),
                        _ => None,
                    })
                    .collect();
                return RunOutcome::Hang {
                    blocked_on_locks: blocked,
                };
            }

            // 3. Pick and execute. Schedulers with narrow decision masks
            // are only consulted when the running thread reaches a masked
            // scheduling point (or stops being eligible); in between, the
            // machine silently continues it. The ALL mask short-circuits
            // to the historical consult-every-step behavior.
            let consult = if consult_every_step {
                Some(None)
            } else {
                match self.last_picked {
                    Some(prev) if self.eligible.contains(&prev) => {
                        let kind = self.point_kind(prev);
                        if mask.contains(kind) {
                            Some(Some(kind))
                        } else {
                            None
                        }
                    }
                    _ => Some(None),
                }
            };
            let tid = match consult {
                Some(point) => {
                    if self.config.record_decisions {
                        self.fill_footprints();
                        self.maybe_capture();
                    }
                    let ctx = SchedContext {
                        eligible: &self.eligible,
                        step: self.step,
                        threads: self.threads.len(),
                        last: self.last_picked,
                        point,
                        footprints: &self.footprints,
                    };
                    let tid = scheduler.pick(&ctx);
                    if self.config.record_decisions {
                        self.decision_log.push(tid.index() as u32);
                    }
                    tid
                }
                None => self.last_picked.expect("continuation has a last thread"),
            };
            debug_assert!(
                self.eligible.contains(&tid),
                "scheduler picked ineligible thread"
            );
            if self.last_picked != Some(tid) {
                if self.last_picked.is_some() {
                    self.metrics.context_switches += 1;
                }
                let from = self.last_picked;
                let step = self.step;
                let eligible_count = self.eligible.len();
                self.emit(|| TraceEvent::ContextSwitch {
                    step,
                    from,
                    to: tid,
                    eligible: eligible_count,
                });
                self.last_picked = Some(tid);
            }
            if let Some(outcome) = self.dispatch_step(tid, consult_every_step) {
                return outcome;
            }
        }
    }

    /// One scheduler-visible dispatch: routes to the oracle interpreter
    /// when configured, otherwise to the decoded interpreter — *tight*
    /// (fused stream, span execution up to the next maskable scheduling
    /// point) whenever nothing needs a per-step boundary: a narrow
    /// decision mask, no trace ring, no dispatch-mix counting, and no
    /// thread possibly waiting on a timed lock.
    #[inline]
    fn dispatch_step(&mut self, tid: ThreadId, consult_every_step: bool) -> Option<RunOutcome> {
        #[cfg(any(test, feature = "dense-oracle"))]
        if self.config.dense_oracle {
            return self.step_thread_oracle(tid);
        }
        let tight = !consult_every_step
            && self.config.trace_depth == 0
            && !self.maybe_timed_waiter
            && self.mix.is_none();
        self.step_thread(tid, tight)
    }

    /// Refills the eligibility buffer with the threads that can execute an
    /// instruction this step. Skipped when the previous fill is provably
    /// still valid: no schedule gates, every thread `Runnable` or `Done`,
    /// and no status transition since (`eligible_stale`).
    fn fill_eligible(&mut self) {
        if self.eligible_cacheable && !self.eligible_stale {
            return;
        }
        let gates = self.gates_active;
        let mut all_settled = true;
        let mut out = std::mem::take(&mut self.eligible);
        out.clear();
        for t in &self.threads {
            let ok = match t.status {
                ThreadStatus::Runnable => !gates || !self.is_gate_held(t),
                ThreadStatus::BlockedOnLock { lock, .. } => {
                    all_settled = false;
                    self.locks.is_free(lock)
                }
                ThreadStatus::SleepingUntil(until) => {
                    all_settled = false;
                    self.step >= until
                }
                ThreadStatus::Done => false,
            };
            if ok {
                out.push(t.id);
            }
        }
        self.eligible = out;
        // An empty set feeds the completion/hang detection — never cache it.
        self.eligible_cacheable = !gates && all_settled && !self.eligible.is_empty();
        self.eligible_stale = false;
    }

    /// Refills the footprint buffer for the current eligible set (decision
    /// recording runs only — the explorer's independence check reads them
    /// out of the consult log).
    fn fill_footprints(&mut self) {
        let mut out = std::mem::take(&mut self.footprints);
        out.clear();
        for i in 0..self.eligible.len() {
            let fp = self.footprint_of(self.eligible[i]);
            out.push(fp);
        }
        self.footprints = out;
    }

    /// The first shared effect `tid`'s next instruction would have.
    fn footprint_of(&self, tid: ThreadId) -> Footprint {
        let frame = self.threads[tid.index()].top();
        match self.dense.func(frame.func).inst(frame.pc) {
            Inst::Lock { lock } | Inst::TimedLock { lock, .. } | Inst::Unlock { lock } => {
                Footprint::Lock(lock.0)
            }
            Inst::LoadGlobal { global, .. } => Footprint::Read(self.memory.global_addr(*global)),
            Inst::StoreGlobal { global, .. } => Footprint::Write(self.memory.global_addr(*global)),
            Inst::LoadPtr { ptr, .. } => Footprint::Read(self.eval(tid, *ptr)),
            Inst::StorePtr { ptr, .. } => Footprint::Write(self.eval(tid, *ptr)),
            _ => Footprint::Opaque,
        }
    }

    /// Captures a snapshot when the capture plan covers the current
    /// decision index. The stored step is decremented by one so that
    /// re-entering the step loop after a restore re-increments it to the
    /// current value — the resumed run then repeats this very consult
    /// (timeout scan and eligibility recomputation included, both of which
    /// are idempotent at a decision point) and proceeds bit-identically.
    fn maybe_capture(&mut self) {
        let depth = self.decision_log.len();
        let due = self
            .capture
            .as_ref()
            .is_some_and(|c| depth >= c.from && depth < c.from + c.limit);
        if !due {
            return;
        }
        self.metrics.snapshots_taken += 1;
        let capture_start = Instant::now();
        let mut snap = self.snapshot();
        self.capture_wall += capture_start.elapsed();
        snap.step -= 1;
        self.capture
            .as_mut()
            .expect("checked above")
            .out
            .push((depth, snap));
    }

    /// Re-evaluates `gates_active` after a marker count increment: a hit on
    /// some gate's `until` marker may release it for good (counts never
    /// decrease during a run), letting the eligibility cache engage.
    #[inline]
    fn note_marker_hit(&mut self) {
        if self.gates_active {
            self.gates_active = self.compiled_script.any_unreleased(&self.marker_counts);
        }
    }

    fn is_gate_held(&self, t: &ThreadState) -> bool {
        if !self.compiled_script.any() || t.frames.is_empty() {
            return false;
        }
        let frame = t.top();
        let Some(marker) = self.dense.func(frame.func).marker_id(frame.pc) else {
            return false;
        };
        self.compiled_script
            .is_held(t.id.index(), marker, &self.marker_counts)
    }

    /// The scheduling-point kind of `tid`'s next instruction.
    fn point_kind(&self, tid: ThreadId) -> PointKind {
        let t = &self.threads[tid.index()];
        if t.stats.insts == 0 {
            return PointKind::ThreadSpawn;
        }
        let frame = t.top();
        match self.dense.func(frame.func).point_kind(frame.pc) {
            // The table marks every `Return` as an exit; only a return
            // from the bottom frame actually ends the thread.
            PointKind::ThreadExit if t.frames.len() > 1 => PointKind::Local,
            kind => kind,
        }
    }

    /// Fires timed-lock timeouts; may end the run.
    fn process_lock_timeouts(&mut self) -> Option<RunOutcome> {
        if !self.maybe_timed_waiter {
            return None;
        }
        self.maybe_timed_waiter = self
            .threads
            .iter()
            .any(|t| matches!(t.status, ThreadStatus::BlockedOnLock { site: Some(_), .. }));
        for i in 0..self.threads.len() {
            let (lock, since, site) = match self.threads[i].status {
                ThreadStatus::BlockedOnLock {
                    lock,
                    since,
                    site: Some(site),
                } => (lock, since, site),
                _ => continue,
            };
            let waited = self.step.saturating_sub(since);
            if waited < self.config.lock_timeout {
                continue;
            }
            // Timeout fired: `pthread_mutex_timedlock` returned ETIMEDOUT —
            // a deadlock failure site (Figure 5d).
            self.threads[i].status = ThreadStatus::Runnable;
            self.eligible_stale = true;
            let tid = ThreadId(i);
            self.metrics.lock_waits.record(waited);
            let step = self.step;
            self.emit(|| TraceEvent::LockTimeout {
                step,
                thread: tid,
                lock,
                site,
                waited,
            });
            match self.attempt_recovery(tid, site, FailureKind::Deadlock) {
                RecoveryOutcome::RolledBack => {
                    // Random backoff breaks deadlock-recovery livelock.
                    let pause = self.backoff_rng.gen_range(0..=self.config.backoff_max);
                    if pause > 0 {
                        let until = self.step + pause;
                        self.threads[i].status = ThreadStatus::SleepingUntil(until);
                        self.eligible_stale = true;
                        self.emit(|| TraceEvent::BackoffSleep {
                            step,
                            thread: tid,
                            until,
                        });
                    }
                }
                RecoveryOutcome::Exhausted => {
                    // Snapshot the wait-for graph (including the timed-out
                    // thread's own edge) so the failure is diagnosable via
                    // `find_wait_cycle`, like a hang.
                    let mut edges = vec![WaitEdge {
                        waiter: tid,
                        lock,
                        owner: self.locks.owner(lock),
                    }];
                    edges.extend(self.threads.iter().filter_map(|t| match t.status {
                        ThreadStatus::BlockedOnLock { lock, .. } => Some(WaitEdge {
                            waiter: t.id,
                            lock,
                            owner: self.locks.owner(lock),
                        }),
                        _ => None,
                    }));
                    self.wait_edges = edges;
                    return Some(RunOutcome::Failed(FailureRecord {
                        kind: FailureKind::Deadlock,
                        site: Some(site),
                        thread: tid,
                        step: self.step,
                        msg: "lock acquisition timed out; retries exhausted".into(),
                        trace: self.thread_trace(tid),
                    }));
                }
            }
        }
        None
    }

    /// Executes decoded instructions of `tid`; returns a terminal outcome
    /// if the run ends.
    ///
    /// With `tight` set, this is the threaded-dispatch span loop: it keeps
    /// executing from the *fused* stream — superinstructions included —
    /// until the thread reaches a non-`Local` scheduling point, blocks,
    /// finishes, or hits the step limit. Mid-span, the outer loop's
    /// per-step work (timeout scan, eligibility refill, consult check) is
    /// provably a no-op for a narrow decision mask, so skipping it is
    /// bit-identical to the oracle; the span replicates the only state
    /// transitions that remain (step counter, `pending_wait` reset).
    fn step_thread(&mut self, tid: ThreadId, tight: bool) -> Option<RunOutcome> {
        // Remember an in-progress lock wait before the status reset erases
        // it (wait-time accounting for the acquisition about to retry), and
        // wake sleepers / unblock on entry.
        let t = &mut self.threads[tid.index()];
        let mut woke = false;
        self.pending_wait = match t.status {
            ThreadStatus::BlockedOnLock { lock, since, .. } => {
                t.status = ThreadStatus::Runnable;
                woke = true;
                Some((lock, since))
            }
            ThreadStatus::SleepingUntil(_) => {
                t.status = ThreadStatus::Runnable;
                woke = true;
                None
            }
            _ => None,
        };
        if woke {
            self.eligible_stale = true;
        }

        loop {
            // One borrow for the whole fetch/bump sequence.
            let (func_id, pc) = {
                let t = &mut self.threads[tid.index()];
                t.stats.insts += 1;
                let top = t.top_mut();
                let fetched = (top.func, top.pc);
                // Advance pc optimistically; control flow overwrites it.
                top.pc += 1;
                fetched
            };
            if self.config.trace_depth > 0 {
                let (step, depth) = (self.step, self.config.trace_depth);
                let loc = self.dense.func(func_id).loc(func_id, pc);
                self.threads[tid.index()].record_trace(step, loc, depth);
            }
            if let Some(mix) = &self.mix {
                mix.dispatch_mix[self.dense.func(func_id).inst(pc).opcode()].add(1);
            }

            // A 32-byte `Copy` fetch — nothing borrowed across dispatch.
            let di = if tight {
                self.dense.func(func_id).decoded_fused(pc)
            } else {
                self.dense.func(func_id).decoded(pc)
            };
            match self.exec_decoded(tid, di, func_id) {
                StepEffect::Continue => {}
                StepEffect::Limit => return Some(RunOutcome::StepLimit),
                StepEffect::Blocked(lock, site) => {
                    self.block_on_lock(tid, lock, site);
                    return None;
                }
                StepEffect::AttemptRecovery(site, kind, msg) => {
                    match self.attempt_recovery(tid, site, kind) {
                        // The thread resumes at its checkpoint (a `Local`
                        // point): the span may continue through the same
                        // boundary checks below.
                        RecoveryOutcome::RolledBack => {}
                        RecoveryOutcome::Exhausted => {
                            return Some(RunOutcome::Failed(FailureRecord {
                                kind,
                                site: Some(site),
                                thread: tid,
                                step: self.step,
                                msg,
                                trace: self.thread_trace(tid),
                            }))
                        }
                    }
                }
                StepEffect::Fail(kind, site, msg) => {
                    return Some(RunOutcome::Failed(FailureRecord {
                        kind,
                        site,
                        thread: tid,
                        step: self.step,
                        msg,
                        trace: self.thread_trace(tid),
                    }))
                }
            }
            if !tight {
                return None;
            }
            // Span continuation: stop at anything the outer loop could
            // observe — a finished thread, or a next instruction that is a
            // maskable scheduling point (markers included, so schedule
            // gates are re-checked exactly where the oracle would).
            if !matches!(self.threads[tid.index()].status, ThreadStatus::Runnable) {
                return None;
            }
            if self.point_kind(tid) != PointKind::Local {
                return None;
            }
            // The outer loop's step boundary, replicated.
            if self.step >= self.config.step_limit {
                return Some(RunOutcome::StepLimit);
            }
            self.step += 1;
            self.pending_wait = None;
        }
    }

    /// Parks `tid` on `lock`, preserving the original wait start across
    /// retries of the same blocked acquisition.
    fn block_on_lock(&mut self, tid: ThreadId, lock: LockId, site: Option<SiteId>) {
        let since = match self.pending_wait {
            Some((l, since)) if l == lock => since,
            _ => self.step,
        };
        if since == self.step {
            // A fresh wait begins: record the wait edge.
            let owner = self.locks.owner(lock);
            let step = self.step;
            self.emit(|| TraceEvent::LockWait {
                step,
                thread: tid,
                lock,
                site,
                owner,
            });
        }
        let t = &mut self.threads[tid.index()];
        // Stay at the lock instruction.
        t.top_mut().pc -= 1;
        t.status = ThreadStatus::BlockedOnLock { lock, since, site };
        self.eligible_stale = true;
        self.maybe_timed_waiter |= site.is_some();
    }

    /// Executes one instruction of `tid` through the legacy `&Inst` walk —
    /// the differential oracle for the decoded interpreter; returns a
    /// terminal outcome if the run ends.
    #[cfg(any(test, feature = "dense-oracle"))]
    fn step_thread_oracle(&mut self, tid: ThreadId) -> Option<RunOutcome> {
        // Remember an in-progress lock wait before the status reset erases
        // it (wait-time accounting for the acquisition about to retry), and
        // wake sleepers / unblock on entry.
        let t = &mut self.threads[tid.index()];
        let mut woke = false;
        self.pending_wait = match t.status {
            ThreadStatus::BlockedOnLock { lock, since, .. } => {
                t.status = ThreadStatus::Runnable;
                woke = true;
                Some((lock, since))
            }
            ThreadStatus::SleepingUntil(_) => {
                t.status = ThreadStatus::Runnable;
                woke = true;
                None
            }
            _ => None,
        };
        if woke {
            self.eligible_stale = true;
        }

        let top = self.threads[tid.index()].top();
        let (func_id, pc) = (top.func, top.pc);
        // The table entry borrows the *program* (`'p`), not `self`, so no
        // clone is needed to hold it across the `&mut self` dispatch.
        let inst = self.dense.func(func_id).inst(pc);

        let depth = self.config.trace_depth;
        if depth > 0 {
            let step = self.step;
            let loc = self.dense.func(func_id).loc(func_id, pc);
            self.threads[tid.index()].record_trace(step, loc, depth);
        }
        if let Some(mix) = &self.mix {
            mix.dispatch_mix[inst.opcode()].add(1);
        }
        self.threads[tid.index()].stats.insts += 1;
        // Advance pc optimistically; control flow overwrites it.
        self.threads[tid.index()].top_mut().pc += 1;

        let effect = self.exec(tid, inst, func_id, pc);
        match effect {
            StepEffect::Continue => None,
            StepEffect::Limit => unreachable!("the oracle walk never fuses steps"),
            StepEffect::Blocked(lock, site) => {
                self.block_on_lock(tid, lock, site);
                None
            }
            StepEffect::AttemptRecovery(site, kind, msg) => {
                match self.attempt_recovery(tid, site, kind) {
                    RecoveryOutcome::RolledBack => None,
                    RecoveryOutcome::Exhausted => Some(RunOutcome::Failed(FailureRecord {
                        kind,
                        site: Some(site),
                        thread: tid,
                        step: self.step,
                        msg,
                        trace: self.thread_trace(tid),
                    })),
                }
            }
            StepEffect::Fail(kind, site, msg) => Some(RunOutcome::Failed(FailureRecord {
                kind,
                site,
                thread: tid,
                step: self.step,
                msg,
                trace: self.thread_trace(tid),
            })),
        }
    }

    fn reg(&self, tid: ThreadId, r: Reg) -> i64 {
        self.threads[tid.index()].top().regs[r.index()]
    }

    fn eval(&self, tid: ThreadId, op: Operand) -> i64 {
        match op {
            Operand::Reg(r) => self.reg(tid, r),
            Operand::Const(c) => c,
        }
    }

    #[cfg(any(test, feature = "dense-oracle"))]
    #[inline]
    fn set_reg(&mut self, tid: ThreadId, r: Reg, v: i64) {
        // The single register-write path: maintains the checkpoint
        // undo-log (one integer compare when recovery is disabled).
        self.threads[tid.index()].write_reg(r, v);
    }

    /// Register read by pre-decoded index.
    #[inline(always)]
    fn reg_idx(&self, tid: ThreadId, r: u32) -> i64 {
        self.threads[tid.index()].top().regs[r as usize]
    }

    /// Register write by pre-decoded index — still the single logged
    /// write path ([`ThreadState::write_reg`]), so checkpoint undo sees
    /// every write the decoded interpreter makes.
    #[inline(always)]
    fn write_reg_idx(&mut self, tid: ThreadId, r: u32, v: i64) {
        self.threads[tid.index()].write_reg(Reg(r), v);
    }

    /// Evaluates a decoded operand.
    #[inline(always)]
    fn eval_dop(&self, tid: ThreadId, op: DOp) -> i64 {
        match op {
            DOp::R(r) => self.reg_idx(tid, r),
            DOp::C(c) => c,
        }
    }

    fn ptr_is_valid(&self, addr: i64) -> bool {
        addr >= self.config.lower_bound && self.memory.is_valid(addr)
    }

    /// Records an undo entry for a shared write (buffered-writes policy).
    fn log_mem_undo(&mut self, tid: ThreadId, addr: i64, old: i64) {
        if !self.config.buffered_writes {
            return;
        }
        let t = &mut self.threads[tid.index()];
        // Buffering models whole-program write logging (the Figure-4
        // ablation's cost), so it stays on once the thread has reached any
        // reexecution point — deliberately independent of whether the
        // current checkpoint is still live.
        if t.epoch == 0 {
            return;
        }
        let epoch = t.epoch;
        if t.undo.last().is_some_and(|u| u.epoch() != epoch) {
            t.undo.clear();
        }
        t.undo.push(UndoRecord::Mem { addr, old, epoch });
        self.aux_work += 1;
    }

    /// Jumps the thread's top frame to the start of `target`.
    #[cfg(any(test, feature = "dense-oracle"))]
    fn jump_to(&mut self, tid: ThreadId, target: conair_ir::BlockId) {
        let func = self.threads[tid.index()].top().func;
        let pc = self.dense.func(func).block_start(target);
        self.threads[tid.index()].top_mut().pc = pc;
    }

    /// Executes one pre-decoded instruction (or a fused pair). `func` is
    /// the executing frame's function, used only to reach the decoded
    /// side tables (strings, call arguments) on cold paths.
    #[inline(always)]
    fn exec_decoded(&mut self, tid: ThreadId, di: DecodedInst, func: FuncId) -> StepEffect {
        use DecodedInst as D;
        match di {
            D::CopyC { dst, imm } => {
                self.write_reg_idx(tid, dst, imm);
                StepEffect::Continue
            }
            D::CopyR { dst, src } => {
                let v = self.reg_idx(tid, src);
                self.write_reg_idx(tid, dst, v);
                StepEffect::Continue
            }
            D::BinRR { dst, op, lhs, rhs } => {
                let v = op.apply(self.reg_idx(tid, lhs), self.reg_idx(tid, rhs));
                self.write_reg_idx(tid, dst, v);
                StepEffect::Continue
            }
            D::BinRC { dst, op, lhs, imm } => {
                let v = op.apply(self.reg_idx(tid, lhs), imm);
                self.write_reg_idx(tid, dst, v);
                StepEffect::Continue
            }
            D::BinCR { dst, op, imm, rhs } => {
                let v = op.apply(imm, self.reg_idx(tid, rhs));
                self.write_reg_idx(tid, dst, v);
                StepEffect::Continue
            }
            D::CmpRR { dst, op, lhs, rhs } => {
                let v = op.apply(self.reg_idx(tid, lhs), self.reg_idx(tid, rhs));
                self.write_reg_idx(tid, dst, v);
                StepEffect::Continue
            }
            D::CmpRC { dst, op, lhs, imm } => {
                let v = op.apply(self.reg_idx(tid, lhs), imm);
                self.write_reg_idx(tid, dst, v);
                StepEffect::Continue
            }
            D::CmpCR { dst, op, imm, rhs } => {
                let v = op.apply(imm, self.reg_idx(tid, rhs));
                self.write_reg_idx(tid, dst, v);
                StepEffect::Continue
            }
            D::LoadGlobal { dst, global } => {
                let v = self.memory.read_global(GlobalId(global));
                self.write_reg_idx(tid, dst, v);
                StepEffect::Continue
            }
            D::StoreGlobal { global, src } => {
                let v = self.eval_dop(tid, src);
                let g = GlobalId(global);
                let old = self.memory.read_global(g);
                let addr = self.memory.global_addr(g);
                self.log_mem_undo(tid, addr, old);
                self.memory.write_global(g, v);
                StepEffect::Continue
            }
            D::AddrOfGlobal { dst, global } => {
                let a = self.memory.global_addr(GlobalId(global));
                self.write_reg_idx(tid, dst, a);
                StepEffect::Continue
            }
            D::LoadPtr { dst, ptr } => {
                let addr = self.eval_dop(tid, ptr);
                match self.memory.read(addr) {
                    Ok(v) => {
                        self.write_reg_idx(tid, dst, v);
                        StepEffect::Continue
                    }
                    Err(f) => StepEffect::Fail(FailureKind::SegFault, None, f.to_string()),
                }
            }
            D::StorePtrRR { ptr, src } => {
                let (addr, v) = (self.reg_idx(tid, ptr), self.reg_idx(tid, src));
                self.store_ptr(tid, addr, v)
            }
            D::StorePtrRC { ptr, imm } => {
                let addr = self.reg_idx(tid, ptr);
                self.store_ptr(tid, addr, imm)
            }
            D::StorePtrCR { addr, src } => {
                let v = self.reg_idx(tid, src);
                self.store_ptr(tid, addr, v)
            }
            D::StorePtrCC { addr, imm } => self.store_ptr(tid, addr, imm),
            D::LoadLocal { dst, local } => {
                let v = self.threads[tid.index()].top().locals[local as usize];
                self.write_reg_idx(tid, dst, v);
                StepEffect::Continue
            }
            D::StoreLocal { local, src } => {
                let v = self.eval_dop(tid, src);
                let t = &mut self.threads[tid.index()];
                // Like `log_mem_undo`: whole-program buffering stays on
                // after the first reexecution point, live checkpoint or not.
                if self.config.buffered_writes && t.epoch > 0 {
                    let epoch = t.epoch;
                    let old = t.top().locals[local as usize];
                    if t.undo.last().is_some_and(|u| u.epoch() != epoch) {
                        t.undo.clear();
                    }
                    t.undo.push(UndoRecord::Local {
                        slot: local as usize,
                        old,
                        epoch,
                    });
                    self.aux_work += 1;
                }
                t.top_mut().locals[local as usize] = v;
                StepEffect::Continue
            }
            D::Alloc { dst, words } => {
                let n = self.eval_dop(tid, words).max(0) as usize;
                let base = self.memory.alloc(n);
                self.write_reg_idx(tid, dst, base);
                let t = &mut self.threads[tid.index()];
                if t.checkpoint.is_some() {
                    let epoch = t.epoch;
                    t.record_compensation(CompensationRecord::Allocation { base, epoch });
                    self.aux_work += 1;
                }
                StepEffect::Continue
            }
            D::Free { ptr } => {
                let addr = self.eval_dop(tid, ptr);
                match self.memory.free(addr) {
                    Ok(()) => StepEffect::Continue,
                    Err(f) => {
                        StepEffect::Fail(FailureKind::SegFault, None, format!("invalid free: {f}"))
                    }
                }
            }
            D::Lock { lock } => {
                let lock = LockId(lock);
                match self.locks.try_acquire(lock, tid) {
                    AcquireResult::Acquired => {
                        let t = &mut self.threads[tid.index()];
                        if t.checkpoint.is_some() {
                            let epoch = t.epoch;
                            t.record_compensation(CompensationRecord::Lock { lock, epoch });
                            self.aux_work += 1;
                        }
                        self.note_lock_acquired(tid, lock, false);
                        StepEffect::Continue
                    }
                    AcquireResult::WouldBlock => StepEffect::Blocked(lock, None),
                }
            }
            D::TimedLock { lock, site } => {
                let (lock, site) = (LockId(lock), SiteId(site));
                *self.site_checks.entry(site).or_insert(0) += 1;
                match self.locks.try_acquire(lock, tid) {
                    AcquireResult::Acquired => {
                        self.note_site_success(tid, site);
                        let t = &mut self.threads[tid.index()];
                        if t.checkpoint.is_some() {
                            let epoch = t.epoch;
                            t.record_compensation(CompensationRecord::Lock { lock, epoch });
                            self.aux_work += 1;
                        }
                        self.note_lock_acquired(tid, lock, true);
                        StepEffect::Continue
                    }
                    AcquireResult::WouldBlock => StepEffect::Blocked(lock, Some(site)),
                }
            }
            D::Unlock { lock } => {
                let lock = LockId(lock);
                match self.locks.release(lock, tid) {
                    Ok(()) => {
                        let step = self.step;
                        self.emit(|| TraceEvent::LockReleased {
                            step,
                            thread: tid,
                            lock,
                        });
                        StepEffect::Continue
                    }
                    Err(e) => StepEffect::Fail(
                        FailureKind::AssertionViolation,
                        None,
                        format!(
                            "unlock of {} not held by {tid} (owner {:?})",
                            e.lock, e.owner
                        ),
                    ),
                }
            }
            D::Output { str_idx, value } => {
                let v = self.eval_dop(tid, value);
                let label = self.dense.func(func).str_at(str_idx);
                self.outputs.push(OutputRecord {
                    thread: tid,
                    label: label.to_string(),
                    value: v,
                });
                StepEffect::Continue
            }
            D::Assert { cond, str_idx } => {
                if self.eval_dop(tid, cond) != 0 {
                    StepEffect::Continue
                } else {
                    let msg = self.dense.func(func).str_at(str_idx);
                    StepEffect::Fail(
                        FailureKind::AssertionViolation,
                        None,
                        format!("assertion failed: {msg}"),
                    )
                }
            }
            D::OutputAssert { cond, str_idx } => {
                if self.eval_dop(tid, cond) != 0 {
                    StepEffect::Continue
                } else {
                    let msg = self.dense.func(func).str_at(str_idx);
                    StepEffect::Fail(
                        FailureKind::WrongOutput,
                        None,
                        format!("output oracle violated: {msg}"),
                    )
                }
            }
            D::Jump { pc } => {
                self.threads[tid.index()].top_mut().pc = pc;
                StepEffect::Continue
            }
            D::Branch {
                cond,
                then_pc,
                else_pc,
            } => {
                let pc = if self.reg_idx(tid, cond) != 0 {
                    then_pc
                } else {
                    else_pc
                };
                self.threads[tid.index()].top_mut().pc = pc;
                StepEffect::Continue
            }
            D::RetN => self.ret(tid, None),
            D::RetR { src } => {
                let v = self.reg_idx(tid, src);
                self.ret(tid, Some(v))
            }
            D::RetC { imm } => self.ret(tid, Some(imm)),
            D::Call {
                dst,
                callee,
                args_start,
                args_len,
            } => {
                let mut vals = Vec::with_capacity(args_len as usize);
                for k in 0..args_len {
                    let a = self.dense.func(func).call_arg(args_start + k);
                    vals.push(self.eval_dop(tid, a));
                }
                let callee = FuncId(callee);
                // Frame sizes come from the pre-lowered layout — no module
                // lookup on the call path.
                let layout = self.dense.func(callee);
                let (nregs, nlocals) = (layout.num_regs(), layout.num_locals());
                let ret_dst = (dst != u32::MAX).then_some(Reg(dst));
                let frame = Frame::with_sizes(callee, nregs, nlocals, &vals, ret_dst);
                self.threads[tid.index()].frames.push(frame);
                StepEffect::Continue
            }
            D::Marker { id } => {
                self.marker_counts[id as usize] += 1;
                self.note_marker_hit();
                StepEffect::Continue
            }
            D::Nop => StepEffect::Continue,
            D::Checkpoint => {
                // A checkpoint re-executes (like a re-entered `setjmp`) when
                // the thread rolled back since its last checkpoint.
                let reexecution = std::mem::replace(&mut self.rolled_back[tid.index()], false);
                self.metrics.checkpoint_executions += 1;
                if reexecution {
                    self.metrics.checkpoint_reexecutions += 1;
                }
                self.threads[tid.index()].save_checkpoint();
                let epoch = self.threads[tid.index()].epoch;
                let step = self.step;
                self.emit(|| TraceEvent::CheckpointSaved {
                    step,
                    thread: tid,
                    epoch,
                    reexecution,
                });
                StepEffect::Continue
            }
            D::FailGuard {
                kind,
                cond,
                site,
                str_idx,
            } => {
                let site = SiteId(site);
                *self.site_checks.entry(site).or_insert(0) += 1;
                if self.eval_dop(tid, cond) != 0 {
                    self.note_site_success(tid, site);
                    StepEffect::Continue
                } else {
                    let fk = match kind {
                        conair_ir::GuardKind::Assert => FailureKind::AssertionViolation,
                        conair_ir::GuardKind::WrongOutput => FailureKind::WrongOutput,
                    };
                    let msg = self.dense.func(func).str_at(str_idx);
                    StepEffect::AttemptRecovery(site, fk, format!("guard failed: {msg}"))
                }
            }
            D::PtrGuard { ptr, site } => {
                let site = SiteId(site);
                *self.site_checks.entry(site).or_insert(0) += 1;
                let addr = self.eval_dop(tid, ptr);
                if self.ptr_is_valid(addr) {
                    self.note_site_success(tid, site);
                    StepEffect::Continue
                } else {
                    StepEffect::AttemptRecovery(
                        site,
                        FailureKind::SegFault,
                        format!("pointer sanity check failed for {addr:#x}"),
                    )
                }
            }

            // ---- superinstructions ----------------------------------
            // Each fused handler executes TWO logical steps. The head's
            // register write still goes through the logged path before
            // the tail runs — a rollback between the halves (impossible
            // here, but a checkpoint restore later) must see it. Between
            // the halves the outer loop's step boundary is replicated
            // verbatim: limit check, step bump, pending-wait reset,
            // per-thread instruction count.
            D::CmpBranchRR {
                op,
                dst,
                lhs,
                rhs,
                then_pc,
                else_pc,
            } => {
                let v = op.apply(self.reg_idx(tid, lhs), self.reg_idx(tid, rhs));
                self.write_reg_idx(tid, dst, v);
                if self.step >= self.config.step_limit {
                    return StepEffect::Limit;
                }
                self.step += 1;
                self.pending_wait = None;
                let t = &mut self.threads[tid.index()];
                t.stats.insts += 1;
                t.top_mut().pc = if v != 0 { then_pc } else { else_pc };
                StepEffect::Continue
            }
            D::CmpBranchRC {
                op,
                dst,
                lhs,
                imm,
                then_pc,
                else_pc,
            } => {
                let v = op.apply(self.reg_idx(tid, lhs), imm);
                self.write_reg_idx(tid, dst, v);
                if self.step >= self.config.step_limit {
                    return StepEffect::Limit;
                }
                self.step += 1;
                self.pending_wait = None;
                let t = &mut self.threads[tid.index()];
                t.stats.insts += 1;
                t.top_mut().pc = if v != 0 { then_pc } else { else_pc };
                StepEffect::Continue
            }
            D::LoadGlobalBinRR {
                global,
                gdst,
                op,
                dst,
                rhs,
            } => {
                let v = self.memory.read_global(GlobalId(global));
                self.write_reg_idx(tid, gdst, v);
                if self.step >= self.config.step_limit {
                    return StepEffect::Limit;
                }
                self.step += 1;
                self.pending_wait = None;
                self.threads[tid.index()].stats.insts += 1;
                self.threads[tid.index()].top_mut().pc += 1;
                // `rhs` is re-read after the head's write, so `rhs ==
                // gdst` sees the loaded value — oracle order.
                let r = op.apply(v, self.reg_idx(tid, rhs));
                self.write_reg_idx(tid, dst, r);
                StepEffect::Continue
            }
            D::LoadGlobalBinRC {
                global,
                gdst,
                op,
                dst,
                imm,
            } => {
                let v = self.memory.read_global(GlobalId(global));
                self.write_reg_idx(tid, gdst, v);
                if self.step >= self.config.step_limit {
                    return StepEffect::Limit;
                }
                self.step += 1;
                self.pending_wait = None;
                self.threads[tid.index()].stats.insts += 1;
                self.threads[tid.index()].top_mut().pc += 1;
                let r = op.apply(v, imm);
                self.write_reg_idx(tid, dst, r);
                StepEffect::Continue
            }
        }
    }

    /// Shared store-through-pointer tail of the four `StorePtr` shapes.
    #[inline(always)]
    fn store_ptr(&mut self, tid: ThreadId, addr: i64, v: i64) -> StepEffect {
        match self.memory.read(addr) {
            Ok(old) => {
                self.log_mem_undo(tid, addr, old);
                self.memory.write(addr, v).expect("validated by read");
                StepEffect::Continue
            }
            Err(f) => StepEffect::Fail(FailureKind::SegFault, None, f.to_string()),
        }
    }

    /// Shared `Return` tail: pops the frame, writes the return value
    /// through the logged path, marks the thread done on bottom-frame
    /// return.
    #[inline]
    fn ret(&mut self, tid: ThreadId, v: Option<i64>) -> StepEffect {
        let t = &mut self.threads[tid.index()];
        // pop_frame retires the checkpoint if this was its frame.
        let finished = t.pop_frame();
        if !t.frames.is_empty() {
            if let (Some(dst), Some(v)) = (finished.ret_dst, v) {
                // The pop may have re-exposed the checkpoint frame, so the
                // return-value write must go through the logged path.
                t.write_reg(dst, v);
            }
        } else {
            t.status = ThreadStatus::Done;
            let step = self.step;
            self.eligible_stale = true;
            self.emit(|| TraceEvent::ThreadFinished { step, thread: tid });
        }
        StepEffect::Continue
    }

    #[cfg(any(test, feature = "dense-oracle"))]
    fn exec(&mut self, tid: ThreadId, inst: &'p Inst, func: FuncId, pc: u32) -> StepEffect {
        match inst {
            Inst::Copy { dst, src } => {
                let v = self.eval(tid, *src);
                self.set_reg(tid, *dst, v);
                StepEffect::Continue
            }
            Inst::BinOp { dst, op, lhs, rhs } => {
                let v = op.apply(self.eval(tid, *lhs), self.eval(tid, *rhs));
                self.set_reg(tid, *dst, v);
                StepEffect::Continue
            }
            Inst::Cmp { dst, op, lhs, rhs } => {
                let v = op.apply(self.eval(tid, *lhs), self.eval(tid, *rhs));
                self.set_reg(tid, *dst, v);
                StepEffect::Continue
            }
            Inst::LoadGlobal { dst, global } => {
                let v = self.memory.read_global(*global);
                self.set_reg(tid, *dst, v);
                StepEffect::Continue
            }
            Inst::StoreGlobal { global, src } => {
                let v = self.eval(tid, *src);
                let old = self.memory.read_global(*global);
                let addr = self.memory.global_addr(*global);
                self.log_mem_undo(tid, addr, old);
                self.memory.write_global(*global, v);
                StepEffect::Continue
            }
            Inst::AddrOfGlobal { dst, global } => {
                let a = self.memory.global_addr(*global);
                self.set_reg(tid, *dst, a);
                StepEffect::Continue
            }
            Inst::LoadPtr { dst, ptr } => {
                let addr = self.eval(tid, *ptr);
                match self.memory.read(addr) {
                    Ok(v) => {
                        self.set_reg(tid, *dst, v);
                        StepEffect::Continue
                    }
                    Err(f) => StepEffect::Fail(FailureKind::SegFault, None, f.to_string()),
                }
            }
            Inst::StorePtr { ptr, src } => {
                let addr = self.eval(tid, *ptr);
                let v = self.eval(tid, *src);
                match self.memory.read(addr) {
                    Ok(old) => {
                        self.log_mem_undo(tid, addr, old);
                        self.memory.write(addr, v).expect("validated by read");
                        StepEffect::Continue
                    }
                    Err(f) => StepEffect::Fail(FailureKind::SegFault, None, f.to_string()),
                }
            }
            Inst::LoadLocal { dst, local } => {
                let v = self.threads[tid.index()].top().locals[local.index()];
                self.set_reg(tid, *dst, v);
                StepEffect::Continue
            }
            Inst::StoreLocal { local, src } => {
                let v = self.eval(tid, *src);
                let t = &mut self.threads[tid.index()];
                // Like `log_mem_undo`: whole-program buffering stays on
                // after the first reexecution point, live checkpoint or not.
                if self.config.buffered_writes && t.epoch > 0 {
                    let epoch = t.epoch;
                    let old = t.top().locals[local.index()];
                    if t.undo.last().is_some_and(|u| u.epoch() != epoch) {
                        t.undo.clear();
                    }
                    t.undo.push(UndoRecord::Local {
                        slot: local.index(),
                        old,
                        epoch,
                    });
                    self.aux_work += 1;
                }
                t.top_mut().locals[local.index()] = v;
                StepEffect::Continue
            }
            Inst::Alloc { dst, words } => {
                let n = self.eval(tid, *words).max(0) as usize;
                let base = self.memory.alloc(n);
                self.set_reg(tid, *dst, base);
                let t = &mut self.threads[tid.index()];
                if t.checkpoint.is_some() {
                    let epoch = t.epoch;
                    t.record_compensation(CompensationRecord::Allocation { base, epoch });
                    self.aux_work += 1;
                }
                StepEffect::Continue
            }
            Inst::Free { ptr } => {
                let addr = self.eval(tid, *ptr);
                match self.memory.free(addr) {
                    Ok(()) => StepEffect::Continue,
                    Err(f) => {
                        StepEffect::Fail(FailureKind::SegFault, None, format!("invalid free: {f}"))
                    }
                }
            }
            Inst::Lock { lock } => match self.locks.try_acquire(*lock, tid) {
                AcquireResult::Acquired => {
                    let t = &mut self.threads[tid.index()];
                    if t.checkpoint.is_some() {
                        let epoch = t.epoch;
                        t.record_compensation(CompensationRecord::Lock { lock: *lock, epoch });
                        self.aux_work += 1;
                    }
                    self.note_lock_acquired(tid, *lock, false);
                    StepEffect::Continue
                }
                AcquireResult::WouldBlock => StepEffect::Blocked(*lock, None),
            },
            Inst::TimedLock { lock, site } => {
                *self.site_checks.entry(*site).or_insert(0) += 1;
                match self.locks.try_acquire(*lock, tid) {
                    AcquireResult::Acquired => {
                        self.note_site_success(tid, *site);
                        let t = &mut self.threads[tid.index()];
                        if t.checkpoint.is_some() {
                            let epoch = t.epoch;
                            t.record_compensation(CompensationRecord::Lock { lock: *lock, epoch });
                            self.aux_work += 1;
                        }
                        self.note_lock_acquired(tid, *lock, true);
                        StepEffect::Continue
                    }
                    AcquireResult::WouldBlock => StepEffect::Blocked(*lock, Some(*site)),
                }
            }
            Inst::Unlock { lock } => match self.locks.release(*lock, tid) {
                Ok(()) => {
                    let step = self.step;
                    let lock = *lock;
                    self.emit(|| TraceEvent::LockReleased {
                        step,
                        thread: tid,
                        lock,
                    });
                    StepEffect::Continue
                }
                Err(e) => StepEffect::Fail(
                    FailureKind::AssertionViolation,
                    None,
                    format!(
                        "unlock of {} not held by {tid} (owner {:?})",
                        e.lock, e.owner
                    ),
                ),
            },
            Inst::Output { label, value } => {
                let v = self.eval(tid, *value);
                self.outputs.push(OutputRecord {
                    thread: tid,
                    label: label.clone(),
                    value: v,
                });
                StepEffect::Continue
            }
            Inst::Assert { cond, msg } => {
                if self.eval(tid, *cond) != 0 {
                    StepEffect::Continue
                } else {
                    StepEffect::Fail(
                        FailureKind::AssertionViolation,
                        None,
                        format!("assertion failed: {msg}"),
                    )
                }
            }
            Inst::OutputAssert { cond, msg } => {
                if self.eval(tid, *cond) != 0 {
                    StepEffect::Continue
                } else {
                    StepEffect::Fail(
                        FailureKind::WrongOutput,
                        None,
                        format!("output oracle violated: {msg}"),
                    )
                }
            }
            Inst::Jump { target } => {
                self.jump_to(tid, *target);
                StepEffect::Continue
            }
            Inst::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let taken = if self.eval(tid, *cond) != 0 {
                    *then_bb
                } else {
                    *else_bb
                };
                self.jump_to(tid, taken);
                StepEffect::Continue
            }
            Inst::Return { value } => {
                let v = value.map(|op| self.eval(tid, op));
                self.ret(tid, v)
            }
            Inst::Call { dst, callee, args } => {
                let vals: Vec<i64> = args.iter().map(|a| self.eval(tid, *a)).collect();
                // Frame sizes come from the pre-lowered layout — no module
                // lookup on the call path.
                let layout = self.dense.func(*callee);
                let frame =
                    Frame::with_sizes(*callee, layout.num_regs(), layout.num_locals(), &vals, *dst);
                self.threads[tid.index()].frames.push(frame);
                StepEffect::Continue
            }
            Inst::Marker { .. } => {
                let id = self
                    .dense
                    .func(func)
                    .marker_id(pc)
                    .expect("every marker is interned at lowering");
                self.marker_counts[id as usize] += 1;
                self.note_marker_hit();
                StepEffect::Continue
            }
            Inst::Nop => StepEffect::Continue,
            Inst::Checkpoint { .. } => {
                // A checkpoint re-executes (like a re-entered `setjmp`) when
                // the thread rolled back since its last checkpoint.
                let reexecution = std::mem::replace(&mut self.rolled_back[tid.index()], false);
                self.metrics.checkpoint_executions += 1;
                if reexecution {
                    self.metrics.checkpoint_reexecutions += 1;
                }
                self.threads[tid.index()].save_checkpoint();
                let epoch = self.threads[tid.index()].epoch;
                let step = self.step;
                self.emit(|| TraceEvent::CheckpointSaved {
                    step,
                    thread: tid,
                    epoch,
                    reexecution,
                });
                StepEffect::Continue
            }
            Inst::FailGuard {
                kind,
                cond,
                site,
                msg,
            } => {
                *self.site_checks.entry(*site).or_insert(0) += 1;
                if self.eval(tid, *cond) != 0 {
                    self.note_site_success(tid, *site);
                    StepEffect::Continue
                } else {
                    let fk = match kind {
                        conair_ir::GuardKind::Assert => FailureKind::AssertionViolation,
                        conair_ir::GuardKind::WrongOutput => FailureKind::WrongOutput,
                    };
                    StepEffect::AttemptRecovery(*site, fk, format!("guard failed: {msg}"))
                }
            }
            Inst::PtrGuard { ptr, site } => {
                *self.site_checks.entry(*site).or_insert(0) += 1;
                let addr = self.eval(tid, *ptr);
                if self.ptr_is_valid(addr) {
                    self.note_site_success(tid, *site);
                    StepEffect::Continue
                } else {
                    StepEffect::AttemptRecovery(
                        *site,
                        FailureKind::SegFault,
                        format!("pointer sanity check failed for {addr:#x}"),
                    )
                }
            }
        }
    }

    /// The failing thread's recorded trace, oldest first.
    fn thread_trace(&self, tid: ThreadId) -> Vec<(u64, conair_ir::Loc)> {
        self.threads[tid.index()].trace.iter().copied().collect()
    }

    /// Accounts for a successful lock acquisition: records the wait time
    /// (if the thread had been blocked on this lock) and emits the event.
    fn note_lock_acquired(&mut self, tid: ThreadId, lock: LockId, timed: bool) {
        let waited = match self.pending_wait {
            Some((l, since)) if l == lock => self.step.saturating_sub(since),
            _ => 0,
        };
        if waited > 0 {
            self.metrics.lock_waits.record(waited);
        }
        let step = self.step;
        self.emit(|| TraceEvent::LockAcquired {
            step,
            thread: tid,
            lock,
            timed,
            waited,
        });
    }

    /// Marks a hardened site as passed; completes its recovery timing if it
    /// had failed earlier.
    fn note_site_success(&mut self, tid: ThreadId, site: SiteId) {
        let step = self.step;
        let completed = match self.site_recovery.get_mut(&site) {
            Some(rec) if rec.recovered_step.is_none() && rec.first_failure_step.is_some() => {
                rec.recovered_step = Some(step);
                Some((rec.retries, step - rec.first_failure_step.expect("checked")))
            }
            _ => None,
        };
        if let Some((retries, latency)) = completed {
            self.metrics.rollback_latency.record(latency);
            self.emit(|| TraceEvent::RecoveryCompleted {
                step,
                thread: tid,
                site,
                retries,
                latency,
            });
        }
    }

    /// The rollback-recovery path shared by guards and lock timeouts.
    fn attempt_recovery(
        &mut self,
        tid: ThreadId,
        site: SiteId,
        kind: FailureKind,
    ) -> RecoveryOutcome {
        let step = self.step;
        self.emit(|| TraceEvent::FailureDetected {
            step,
            thread: tid,
            site,
            kind,
        });
        let rec = self.site_recovery.entry(site).or_default();
        if rec.first_failure_step.is_none() {
            rec.first_failure_step = Some(self.step);
        }
        rec.retries += 1;

        let prior = *self.threads[tid.index()].retries.entry(site).or_insert(0);
        if prior >= self.config.max_retries {
            self.emit(|| TraceEvent::RecoveryExhausted {
                step,
                thread: tid,
                site,
                kind,
            });
            return RecoveryOutcome::Exhausted;
        }
        let retry = prior + 1;
        self.threads[tid.index()].retries.insert(site, retry);

        if self.threads[tid.index()].checkpoint.is_none() {
            self.emit(|| TraceEvent::RecoveryExhausted {
                step,
                thread: tid,
                site,
                kind,
            });
            return RecoveryOutcome::Exhausted;
        }

        // Compensation (Section 4.1): release resources acquired in the
        // current epoch, in reverse acquisition order. The buffer is the
        // thread's own (retained in place) and is handed back afterwards
        // so rollback stays allocation-free.
        let mut records = self.threads[tid.index()].take_current_epoch_compensation();
        for record in records.drain(..).rev() {
            match record {
                CompensationRecord::Allocation { base, .. } => {
                    // The block may already be freed only if the region
                    // contained a free — which regions never do.
                    let _ = self.memory.free(base);
                    self.metrics.compensation_frees += 1;
                    self.emit(|| TraceEvent::CompensationFree {
                        step,
                        thread: tid,
                        base,
                    });
                }
                CompensationRecord::Lock { lock, .. } => {
                    self.locks.force_release(lock);
                    self.metrics.compensation_unlocks += 1;
                    self.emit(|| TraceEvent::CompensationUnlock {
                        step,
                        thread: tid,
                        lock,
                    });
                }
            }
        }
        self.threads[tid.index()].recycle_compensation_buffer(records);

        // Undo log (buffered-writes ablation): restore memory of the
        // current epoch in reverse write order.
        let mut undo_restored = 0u64;
        if self.config.buffered_writes {
            let epoch = self.threads[tid.index()].epoch;
            let undo: Vec<UndoRecord> = {
                let t = &mut self.threads[tid.index()];
                let all = std::mem::take(&mut t.undo);
                all.into_iter().filter(|u| u.epoch() == epoch).collect()
            };
            undo_restored = undo.len() as u64;
            for u in undo.into_iter().rev() {
                match u {
                    UndoRecord::Mem { addr, old, .. } => {
                        let _ = self.memory.write(addr, old);
                    }
                    UndoRecord::Local { slot, old, .. } => {
                        self.threads[tid.index()].top_mut().locals[slot] = old;
                    }
                }
            }
        }

        // Rollback cost in registers: how many undo records this epoch
        // accumulated (what restore is about to walk).
        let regs_undone = self.threads[tid.index()].undo_depth() as u64;
        self.metrics.undo_depth.record(regs_undone);
        let restored = self.threads[tid.index()].restore_checkpoint();
        debug_assert!(restored, "checkpoint checked above");
        self.rolled_back[tid.index()] = true;
        self.emit(|| TraceEvent::RolledBack {
            step,
            thread: tid,
            site,
            retry,
            undo_restored,
            regs_undone,
        });
        RecoveryOutcome::RolledBack
    }
}

enum RecoveryOutcome {
    RolledBack,
    Exhausted,
}
