//! Structured execution tracing: the [`TraceSink`] interface the machine
//! emits [`TraceEvent`]s into, an in-memory [`EventBuffer`] sink, and the
//! JSONL / Chrome-trace exporters.
//!
//! Tracing is strictly opt-in. The machine holds an `Option<Box<dyn
//! TraceSink>>` and every emission site goes through a closure that only
//! *constructs* the event when a sink is installed, so a run without a sink
//! performs no event allocation or formatting at all — the hardened-run
//! instruction counts of the overhead benches are identical with and
//! without the tracing layer compiled in.
//!
//! Event-count invariants (relied on by the CLI's consistency check):
//!
//! * `CheckpointSaved` events == [`crate::RunStats::checkpoints`];
//! * `RolledBack` events == [`crate::RunStats::rollbacks`];
//! * `FailureDetected` events == [`crate::RunStats::total_retries`] (the
//!   per-site retry counter is bumped once per detection, whether the
//!   attempt rolls back or exhausts);
//! * `RecoveryCompleted` events == sites in
//!   [`crate::RunStats::site_recovery`] with a `recovered_step`.

use std::cell::RefCell;
use std::rc::Rc;

use conair_ir::{FailureKind, LockId, SiteId};
use serde::{Deserialize, Serialize};

use crate::locks::ThreadId;
use crate::metrics::RunMetrics;

/// One structured event emitted by the machine.
///
/// Every variant carries the global `step` at emission; steps are the
/// timeline's clock (the interpreter's deterministic time unit).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A thread exists and is about to start executing.
    ThreadStarted {
        /// Emission step.
        step: u64,
        /// The thread.
        thread: ThreadId,
        /// Its spec name.
        name: String,
    },
    /// A thread executed its final return.
    ThreadFinished {
        /// Emission step.
        step: u64,
        /// The thread.
        thread: ThreadId,
    },
    /// The scheduler picked a different thread than last step.
    ContextSwitch {
        /// Emission step.
        step: u64,
        /// Previously running thread (`None` on the first pick).
        from: Option<ThreadId>,
        /// Newly running thread.
        to: ThreadId,
        /// How many threads were eligible.
        eligible: usize,
    },
    /// A thread failed to acquire a lock and blocked.
    LockWait {
        /// Emission step.
        step: u64,
        /// The blocked thread.
        thread: ThreadId,
        /// The contended lock.
        lock: LockId,
        /// The deadlock site for timed (hardened) acquisitions.
        site: Option<SiteId>,
        /// Current owner of the lock (the wait edge).
        owner: Option<ThreadId>,
    },
    /// A lock was acquired.
    LockAcquired {
        /// Emission step.
        step: u64,
        /// The acquiring thread.
        thread: ThreadId,
        /// The lock.
        lock: LockId,
        /// Whether this was a timed (hardened) acquisition.
        timed: bool,
        /// Steps spent blocked before acquiring (0 = uncontended).
        waited: u64,
    },
    /// A lock was released by its owner.
    LockReleased {
        /// Emission step.
        step: u64,
        /// The releasing thread.
        thread: ThreadId,
        /// The lock.
        lock: LockId,
    },
    /// A timed lock's timeout fired (`pthread_mutex_timedlock` returning
    /// `ETIMEDOUT` — the deadlock detection signal).
    LockTimeout {
        /// Emission step.
        step: u64,
        /// The timed-out thread.
        thread: ThreadId,
        /// The lock it waited for.
        lock: LockId,
        /// The deadlock failure site.
        site: SiteId,
        /// Steps waited before the timeout.
        waited: u64,
    },
    /// A checkpoint instruction executed (the `setjmp`).
    CheckpointSaved {
        /// Emission step.
        step: u64,
        /// The thread.
        thread: ThreadId,
        /// The thread's reexecution epoch after the save.
        epoch: u64,
        /// Whether this execution re-entered the checkpoint after a
        /// rollback (vs a first-time capture).
        reexecution: bool,
    },
    /// A failure was detected at a hardened site (one event per recovery
    /// attempt, before the rollback/exhaustion decision).
    FailureDetected {
        /// Emission step.
        step: u64,
        /// The failing thread.
        thread: ThreadId,
        /// The hardened site.
        site: SiteId,
        /// The failure class.
        kind: FailureKind,
    },
    /// Compensation freed a heap block allocated in the current epoch.
    CompensationFree {
        /// Emission step.
        step: u64,
        /// The recovering thread.
        thread: ThreadId,
        /// Base address of the freed block.
        base: i64,
    },
    /// Compensation force-released a lock acquired in the current epoch.
    CompensationUnlock {
        /// Emission step.
        step: u64,
        /// The recovering thread.
        thread: ThreadId,
        /// The released lock.
        lock: LockId,
    },
    /// The thread rolled back to its checkpoint (the `longjmp`).
    RolledBack {
        /// Emission step.
        step: u64,
        /// The thread.
        thread: ThreadId,
        /// The site being recovered.
        site: SiteId,
        /// This thread's retry count for the site, after this rollback.
        retry: u64,
        /// Undo-log records replayed (buffered-writes policy only).
        undo_restored: u64,
        /// Registers restored from the epoch's register undo-log (the
        /// rollback cost of the featherweight checkpoint).
        regs_undone: u64,
    },
    /// A recovery attempt found no budget or no checkpoint; the original
    /// failure fires.
    RecoveryExhausted {
        /// Emission step.
        step: u64,
        /// The thread.
        thread: ThreadId,
        /// The site.
        site: SiteId,
        /// The failure class about to be reported.
        kind: FailureKind,
    },
    /// Random backoff after a deadlock rollback (anti-livelock).
    BackoffSleep {
        /// Emission step.
        step: u64,
        /// The sleeping thread.
        thread: ThreadId,
        /// Step at which the thread wakes.
        until: u64,
    },
    /// A previously failing site finally passed — recovery complete.
    RecoveryCompleted {
        /// Emission step.
        step: u64,
        /// The thread that passed the site.
        thread: ThreadId,
        /// The recovered site.
        site: SiteId,
        /// Total rollbacks the site needed.
        retries: u64,
        /// Steps from first failure detection to this pass.
        latency: u64,
    },
    /// The recorded schedule's identity, emitted once at the end of a run
    /// with [`crate::MachineConfig::record_decisions`] set. `trace_hash`
    /// is [`crate::DecisionTrace::hash`]: two runs with equal hashes
    /// executed the same interleaving.
    ScheduleInfo {
        /// Final step.
        step: u64,
        /// Scheduler name (e.g. `round-robin`, `pct`, `replay`).
        scheduler: String,
        /// Decisions recorded.
        decisions: u64,
        /// FNV-1a hash of the decision trace.
        trace_hash: u64,
    },
    /// The run ended.
    RunEnded {
        /// Final step.
        step: u64,
        /// Outcome label: `completed`, `failed`, `hang` or `step-limit`.
        outcome: String,
    },
    /// A periodic sampled view of an exploration in flight, emitted by
    /// [`crate::explore_observed`] at wave boundaries no more often than
    /// the observer's sampling interval. Unlike machine events, `step` is
    /// wall-clock milliseconds since exploration start — the stream's
    /// clock. Rates (schedules/sec) are left to renderers so the event
    /// stays integer-only.
    ExploreProgress {
        /// Milliseconds since exploration start.
        step: u64,
        /// Schedules executed so far.
        schedules: u64,
        /// Schedule budget.
        budget: u64,
        /// Failing schedules found so far.
        failures: u64,
        /// Schedule index of the first failure, when one has been found.
        first_failure: Option<u64>,
        /// Frontier queue depth (0 for PCT).
        frontier: u64,
        /// Live snapshot-tree nodes.
        snapshot_nodes: u64,
        /// Interpreter steps saved by prefix-sharing snapshot resume.
        steps_saved: u64,
        /// Waves completed.
        wave: u64,
    },
    /// One completed exploration wave with its self-profiling phase
    /// breakdown. `step` is wall-clock milliseconds since exploration
    /// start at the moment the wave finished; durations are microseconds.
    ExploreWave {
        /// Milliseconds since exploration start at wave end.
        step: u64,
        /// Wave index (0-based).
        wave: u64,
        /// Planned wave width (the 16→256 ramp).
        width: u64,
        /// Schedules actually executed this wave (dedup/pruning can shrink
        /// it below `width`).
        executed: u64,
        /// Wave wall time, µs.
        wall_us: u64,
        /// µs spent capturing machine snapshots.
        capture_us: u64,
        /// µs spent restoring machine snapshots.
        restore_us: u64,
        /// µs spent interpreting schedules.
        interpret_us: u64,
        /// µs spent assembling and merging the wave.
        merge_us: u64,
    },
}

impl TraceEvent {
    /// The emission step.
    pub fn step(&self) -> u64 {
        use TraceEvent::*;
        match self {
            ThreadStarted { step, .. }
            | ThreadFinished { step, .. }
            | ContextSwitch { step, .. }
            | LockWait { step, .. }
            | LockAcquired { step, .. }
            | LockReleased { step, .. }
            | LockTimeout { step, .. }
            | CheckpointSaved { step, .. }
            | FailureDetected { step, .. }
            | CompensationFree { step, .. }
            | CompensationUnlock { step, .. }
            | RolledBack { step, .. }
            | RecoveryExhausted { step, .. }
            | BackoffSleep { step, .. }
            | RecoveryCompleted { step, .. }
            | ScheduleInfo { step, .. }
            | RunEnded { step, .. }
            | ExploreProgress { step, .. }
            | ExploreWave { step, .. } => *step,
        }
    }

    /// The subject thread, when the event has one.
    pub fn thread(&self) -> Option<ThreadId> {
        use TraceEvent::*;
        match self {
            ThreadStarted { thread, .. }
            | ThreadFinished { thread, .. }
            | ContextSwitch { to: thread, .. }
            | LockWait { thread, .. }
            | LockAcquired { thread, .. }
            | LockReleased { thread, .. }
            | LockTimeout { thread, .. }
            | CheckpointSaved { thread, .. }
            | FailureDetected { thread, .. }
            | CompensationFree { thread, .. }
            | CompensationUnlock { thread, .. }
            | RolledBack { thread, .. }
            | RecoveryExhausted { thread, .. }
            | BackoffSleep { thread, .. }
            | RecoveryCompleted { thread, .. } => Some(*thread),
            ScheduleInfo { .. } | RunEnded { .. } | ExploreProgress { .. } | ExploreWave { .. } => {
                None
            }
        }
    }

    /// A stable kebab-case label for the variant.
    pub fn kind_name(&self) -> &'static str {
        use TraceEvent::*;
        match self {
            ThreadStarted { .. } => "thread-started",
            ThreadFinished { .. } => "thread-finished",
            ContextSwitch { .. } => "context-switch",
            LockWait { .. } => "lock-wait",
            LockAcquired { .. } => "lock-acquired",
            LockReleased { .. } => "lock-released",
            LockTimeout { .. } => "lock-timeout",
            CheckpointSaved { .. } => "checkpoint",
            FailureDetected { .. } => "failure-detected",
            CompensationFree { .. } => "compensation-free",
            CompensationUnlock { .. } => "compensation-unlock",
            RolledBack { .. } => "rollback",
            RecoveryExhausted { .. } => "recovery-exhausted",
            BackoffSleep { .. } => "backoff",
            RecoveryCompleted { .. } => "recovery-completed",
            ScheduleInfo { .. } => "schedule-info",
            RunEnded { .. } => "run-ended",
            ExploreProgress { .. } => "explore-progress",
            ExploreWave { .. } => "explore-wave",
        }
    }
}

/// Receiver of machine trace events.
///
/// Implementations should be cheap: the machine calls `record` inline from
/// the interpreter loop. Heavy sinks (files, sockets) should buffer.
pub trait TraceSink {
    /// Accepts one event.
    fn record(&mut self, event: TraceEvent);
}

/// An in-memory sink with shared handles: clone it, hand one clone to the
/// machine, and read the events from another after the run.
#[derive(Debug, Clone, Default)]
pub struct EventBuffer {
    events: Rc<RefCell<Vec<TraceEvent>>>,
}

impl EventBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the recorded events, leaving the buffer empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.borrow_mut())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }
}

impl TraceSink for EventBuffer {
    fn record(&mut self, event: TraceEvent) {
        self.events.borrow_mut().push(event);
    }
}

/// Serializes events as JSON Lines (one event object per line).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("trace events serialize"));
        out.push('\n');
    }
    out
}

/// Parses a JSON Lines trace back into events (blank lines skipped).
///
/// # Errors
///
/// Returns the first line's parse error with its 1-based line number.
pub fn from_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            serde_json::from_str::<TraceEvent>(line).map_err(|e| format!("line {}: {e}", i + 1))
        })
        .collect()
}

/// Converts events to Chrome trace-event JSON (`chrome://tracing`,
/// Perfetto). Steps map to microseconds; lock waits become complete (`X`)
/// events spanning the wait, everything else becomes an instant (`i`)
/// event on its thread's track.
///
/// Exploration events ([`TraceEvent::ExploreWave`],
/// [`TraceEvent::ExploreProgress`]) live on their own track (pid 2): each
/// wave is a complete event spanning its wall time on tid 0, its
/// capture/restore/interpret/merge phases are laid back-to-back as spans on
/// tid 1, and progress samples are instants on tid 0. Their `step` clock is
/// milliseconds, so they are scaled to the µs timeline.
pub fn to_chrome_trace(events: &[TraceEvent]) -> serde::Value {
    use serde::Value;
    let mut entries: Vec<Value> = Vec::with_capacity(events.len());
    let obj = |pairs: Vec<(&str, Value)>| {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };
    for e in events {
        let tid = e.thread().map(|t| t.index() as u64).unwrap_or(0);
        let common = |name: &str, ph: &str, ts: u64| {
            vec![
                ("name", Value::Str(name.to_string())),
                ("ph", Value::Str(ph.to_string())),
                ("ts", Value::UInt(ts)),
                ("pid", Value::UInt(1)),
                ("tid", Value::UInt(tid)),
            ]
        };
        let explore = |name: String, ph: &str, ts: u64, tid: u64| {
            vec![
                ("name", Value::Str(name)),
                ("ph", Value::Str(ph.to_string())),
                ("ts", Value::UInt(ts)),
                ("pid", Value::UInt(2)),
                ("tid", Value::UInt(tid)),
            ]
        };
        match e {
            TraceEvent::LockAcquired {
                step, lock, waited, ..
            } if *waited > 0 => {
                let mut pairs = common(&format!("wait {lock}"), "X", step - waited);
                pairs.push(("dur", Value::UInt(*waited)));
                entries.push(obj(pairs));
            }
            TraceEvent::LockTimeout {
                step, lock, waited, ..
            } => {
                let mut pairs = common(&format!("wait-timeout {lock}"), "X", step - waited);
                pairs.push(("dur", Value::UInt(*waited)));
                entries.push(obj(pairs));
            }
            TraceEvent::ExploreWave {
                step,
                wave,
                width,
                executed,
                wall_us,
                capture_us,
                restore_us,
                interpret_us,
                merge_us,
            } => {
                let start = (step * 1000).saturating_sub(*wall_us);
                let mut pairs = explore(format!("wave {wave} ({executed}/{width})"), "X", start, 0);
                pairs.push(("dur", Value::UInt(*wall_us)));
                entries.push(obj(pairs));
                let mut at = start;
                for (phase, dur) in [
                    ("capture", *capture_us),
                    ("restore", *restore_us),
                    ("interpret", *interpret_us),
                    ("merge", *merge_us),
                ] {
                    if dur == 0 {
                        continue;
                    }
                    let mut pairs = explore(format!("{phase} (wave {wave})"), "X", at, 1);
                    pairs.push(("dur", Value::UInt(dur)));
                    entries.push(obj(pairs));
                    at += dur;
                }
            }
            TraceEvent::ExploreProgress {
                step,
                schedules,
                budget,
                ..
            } => {
                let mut pairs = explore(
                    format!("progress {schedules}/{budget}"),
                    "i",
                    step * 1000,
                    0,
                );
                pairs.push(("s", Value::Str("p".to_string())));
                entries.push(obj(pairs));
            }
            other => {
                let mut pairs = common(other.kind_name(), "i", other.step());
                pairs.push(("s", Value::Str("t".to_string())));
                entries.push(obj(pairs));
            }
        }
    }
    Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(entries)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ])
}

/// Rebuilds [`RunMetrics`] from an event stream — the aggregation `conair
/// report` performs over a JSONL trace. For a stream produced by a traced
/// run this matches the machine's own metrics except for
/// `per_site_retries` ordering (both are sorted, so it matches exactly).
pub fn summarize_events(events: &[TraceEvent]) -> RunMetrics {
    let mut m = RunMetrics::default();
    let mut per_site: std::collections::BTreeMap<SiteId, u64> = std::collections::BTreeMap::new();
    for e in events {
        match e {
            TraceEvent::ContextSwitch { from: Some(_), .. } => m.context_switches += 1,
            TraceEvent::LockAcquired { waited, .. } if *waited > 0 => {
                m.lock_waits.record(*waited);
            }
            TraceEvent::LockTimeout { waited, .. } => m.lock_waits.record(*waited),
            TraceEvent::CheckpointSaved { reexecution, .. } => {
                m.checkpoint_executions += 1;
                if *reexecution {
                    m.checkpoint_reexecutions += 1;
                }
            }
            TraceEvent::FailureDetected { site, .. } => {
                *per_site.entry(*site).or_insert(0) += 1;
            }
            TraceEvent::CompensationFree { .. } => m.compensation_frees += 1,
            TraceEvent::CompensationUnlock { .. } => m.compensation_unlocks += 1,
            TraceEvent::RolledBack { regs_undone, .. } => {
                m.undo_depth.record(*regs_undone);
            }
            TraceEvent::RecoveryCompleted { latency, .. } => {
                m.rollback_latency.record(*latency);
            }
            TraceEvent::ScheduleInfo {
                decisions,
                trace_hash,
                ..
            } => {
                m.sched_decisions = *decisions;
                m.decision_trace_hash = *trace_hash;
            }
            _ => {}
        }
    }
    m.per_site_retries = per_site.into_iter().collect();
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::ThreadStarted {
                step: 0,
                thread: ThreadId(0),
                name: "t1".into(),
            },
            TraceEvent::ContextSwitch {
                step: 1,
                from: None,
                to: ThreadId(0),
                eligible: 2,
            },
            TraceEvent::CheckpointSaved {
                step: 2,
                thread: ThreadId(0),
                epoch: 1,
                reexecution: false,
            },
            TraceEvent::LockAcquired {
                step: 9,
                thread: ThreadId(0),
                lock: LockId(1),
                timed: true,
                waited: 5,
            },
            TraceEvent::FailureDetected {
                step: 12,
                thread: ThreadId(0),
                site: SiteId(3),
                kind: FailureKind::Deadlock,
            },
            TraceEvent::RolledBack {
                step: 12,
                thread: ThreadId(0),
                site: SiteId(3),
                retry: 1,
                undo_restored: 0,
                regs_undone: 4,
            },
            TraceEvent::RecoveryCompleted {
                step: 30,
                thread: ThreadId(0),
                site: SiteId(3),
                retries: 1,
                latency: 18,
            },
            TraceEvent::RunEnded {
                step: 31,
                outcome: "completed".into(),
            },
        ]
    }

    #[test]
    fn jsonl_roundtrip() {
        let events = sample_events();
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn jsonl_errors_carry_line_numbers() {
        let err =
            from_jsonl("{\"RunEnded\":{\"step\":1,\"outcome\":\"x\"}}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn event_buffer_shares_state_across_clones() {
        let buf = EventBuffer::new();
        let mut sink = buf.clone();
        sink.record(TraceEvent::RunEnded {
            step: 1,
            outcome: "completed".into(),
        });
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.take().len(), 1);
        assert!(buf.is_empty());
    }

    #[test]
    fn summary_rebuilds_metrics() {
        let m = summarize_events(&sample_events());
        assert_eq!(m.checkpoint_executions, 1);
        assert_eq!(m.checkpoint_reexecutions, 0);
        assert_eq!(m.per_site_retries, vec![(SiteId(3), 1)]);
        assert_eq!(m.rollback_latency.max(), Some(18));
        assert_eq!(m.lock_waits.count(), 1);
        assert_eq!(m.undo_depth.count(), 1);
        assert_eq!(m.undo_depth.max(), Some(4));
        assert_eq!(m.context_switches, 0, "first pick is not a switch");
    }

    #[test]
    fn chrome_trace_shape() {
        let v = to_chrome_trace(&sample_events());
        let entries = v["traceEvents"].as_array().unwrap();
        assert_eq!(entries.len(), sample_events().len());
        // The waited lock acquisition became a complete event.
        let x = entries
            .iter()
            .find(|e| e["ph"] == "X")
            .expect("one X event");
        assert_eq!(x["ts"], 4u64); // 9 - 5
        assert_eq!(x["dur"], 5u64);
    }

    #[test]
    fn accessors_cover_all_variants() {
        for e in sample_events() {
            assert!(!e.kind_name().is_empty());
            let _ = e.step();
            let _ = e.thread();
        }
    }

    fn explore_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::ExploreWave {
                step: 10,
                wave: 0,
                width: 16,
                executed: 14,
                wall_us: 9_000,
                capture_us: 1_000,
                restore_us: 500,
                interpret_us: 6_000,
                merge_us: 1_500,
            },
            TraceEvent::ExploreProgress {
                step: 10,
                schedules: 14,
                budget: 256,
                failures: 1,
                first_failure: Some(3),
                frontier: 7,
                snapshot_nodes: 12,
                steps_saved: 400,
                wave: 1,
            },
        ]
    }

    #[test]
    fn explore_events_roundtrip_jsonl() {
        let events = explore_events();
        let back = from_jsonl(&to_jsonl(&events)).unwrap();
        assert_eq!(back, events);
        assert_eq!(events[0].kind_name(), "explore-wave");
        assert_eq!(events[1].kind_name(), "explore-progress");
        assert_eq!(events[0].step(), 10);
        assert_eq!(events[1].thread(), None);
    }

    #[test]
    fn chrome_trace_gives_explore_events_their_own_track() {
        let v = to_chrome_trace(&explore_events());
        let entries = v["traceEvents"].as_array().unwrap();
        // Wave span + 4 phase spans + 1 progress instant.
        assert_eq!(entries.len(), 6);
        for e in entries {
            assert_eq!(e["pid"], 2u64, "explore events live on pid 2");
        }
        let wave = &entries[0];
        assert_eq!(wave["ph"], "X");
        assert_eq!(wave["ts"], 1_000u64); // 10ms*1000 - 9000µs
        assert_eq!(wave["dur"], 9_000u64);
        assert_eq!(wave["tid"], 0u64);
        // Phases are back-to-back on tid 1, starting at the wave start.
        assert_eq!(entries[1]["tid"], 1u64);
        assert_eq!(entries[1]["ts"], 1_000u64);
        assert_eq!(entries[2]["ts"], 2_000u64);
        let progress = &entries[5];
        assert_eq!(progress["ph"], "i");
        assert_eq!(progress["ts"], 10_000u64);
    }
}
