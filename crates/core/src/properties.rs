//! The qualitative property comparison of paper Table 1.
//!
//! Each technique family is scored on the four properties an ideal
//! concurrency-bug fixing/survival technique should have. This module is
//! static data: it exists so the bench harness can regenerate Table 1 and
//! so the claims are spelled out next to the code that embodies them.

use std::fmt;

/// The four properties of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Property {
    /// No OS/hardware modification.
    Compatibility,
    /// Never generates results infeasible for the original software.
    Correctness,
    /// Helps bugs with a wide variety of root causes, without accurate bug
    /// detection.
    Generality,
    /// Small run-time overhead and fast failure recovery.
    Performance,
}

impl Property {
    /// Row order of Table 1.
    pub const ALL: [Property; 4] = [
        Property::Compatibility,
        Property::Correctness,
        Property::Generality,
        Property::Performance,
    ];
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Property::Compatibility => "Compatibility",
            Property::Correctness => "Correctness",
            Property::Generality => "Generality",
            Property::Performance => "Performance",
        };
        f.write_str(s)
    }
}

/// How a technique satisfies a property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Satisfaction {
    /// Yes (✓ in Table 1).
    Yes,
    /// No (- in Table 1).
    No,
    /// The family contains techniques satisfying it, but not all four at
    /// once (* in Table 1).
    Partial,
}

impl Satisfaction {
    /// The Table-1 glyph.
    pub fn glyph(self) -> char {
        match self {
            Satisfaction::Yes => '+',
            Satisfaction::No => '-',
            Satisfaction::Partial => '*',
        }
    }
}

/// A technique family (column of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    /// Automated bug fixing (adds synchronization for known root causes).
    AutomaticFixing,
    /// Proactively prohibiting interleavings at run time.
    ProhibitingInterleaving,
    /// Whole-program checkpoint/rollback recovery.
    RollbackRecovery,
    /// This system.
    ConAir,
}

impl Technique {
    /// Column order of Table 1.
    pub const ALL: [Technique; 4] = [
        Technique::AutomaticFixing,
        Technique::ProhibitingInterleaving,
        Technique::RollbackRecovery,
        Technique::ConAir,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Technique::AutomaticFixing => "Auto. Fixing",
            Technique::ProhibitingInterleaving => "Prohibiting Interleaving",
            Technique::RollbackRecovery => "Rollback Recovery",
            Technique::ConAir => "ConAir",
        }
    }

    /// The Table-1 cell for `property`.
    pub fn satisfies(self, property: Property) -> Satisfaction {
        use Property::*;
        use Satisfaction::*;
        use Technique::*;
        match (self, property) {
            (AutomaticFixing, Compatibility) => Yes,
            (AutomaticFixing, Correctness) => Yes,
            (AutomaticFixing, Generality) => No,
            (AutomaticFixing, Performance) => Yes,
            (ProhibitingInterleaving, Correctness) => Yes,
            (ProhibitingInterleaving, _) => Partial,
            (RollbackRecovery, Correctness) | (RollbackRecovery, Generality) => Yes,
            (RollbackRecovery, _) => Partial,
            (ConAir, _) => Yes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conair_satisfies_everything() {
        for p in Property::ALL {
            assert_eq!(Technique::ConAir.satisfies(p), Satisfaction::Yes);
        }
    }

    #[test]
    fn no_prior_technique_satisfies_all_four() {
        for t in [
            Technique::AutomaticFixing,
            Technique::ProhibitingInterleaving,
            Technique::RollbackRecovery,
        ] {
            assert!(
                Property::ALL
                    .iter()
                    .any(|&p| t.satisfies(p) != Satisfaction::Yes),
                "{} should not satisfy all four properties",
                t.name()
            );
        }
    }

    #[test]
    fn table_1_spot_checks() {
        assert_eq!(
            Technique::AutomaticFixing.satisfies(Property::Generality),
            Satisfaction::No
        );
        assert_eq!(
            Technique::RollbackRecovery.satisfies(Property::Generality),
            Satisfaction::Yes
        );
        assert_eq!(
            Technique::RollbackRecovery.satisfies(Property::Compatibility),
            Satisfaction::Partial
        );
        assert_eq!(Satisfaction::Partial.glyph(), '*');
    }
}
