//! The end-to-end ConAir pipeline: analyze → transform → run-ready program.

use std::time::Instant;

use conair_analysis::{analyze, HardeningPlan};
use conair_ir::{validate_hardened, Module};
use conair_runtime::Program;
use conair_transform::{harden, TransformStats};

use crate::config::{ConairConfig, ConairConfigBuilder, Mode};
use crate::timing::PhaseSpans;

/// The ConAir tool: a configured analysis + transformation pipeline.
///
/// ```rust
/// use conair::Conair;
/// use conair_ir::{CmpKind, FuncBuilder, ModuleBuilder};
/// use conair_runtime::{run_once, MachineConfig, Program};
///
/// let mut mb = ModuleBuilder::new("demo");
/// let flag = mb.global("flag", 1);
/// let mut fb = FuncBuilder::new("main", 0);
/// let v = fb.load_global(flag);
/// let ok = fb.cmp(CmpKind::Ne, v, 0);
/// fb.assert(ok, "flag set");
/// fb.ret();
/// mb.function(fb.finish());
/// let program = Program::from_entry_names(mb.finish(), &["main"]);
///
/// let hardened = Conair::survival().harden(&program);
/// let result = run_once(&hardened.program, &MachineConfig::default(), 0);
/// assert!(result.outcome.is_completed());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Conair {
    config: ConairConfig,
}

/// The product of hardening a program.
#[derive(Debug, Clone)]
pub struct HardenedProgram {
    /// The transformed, run-ready program (same thread specs).
    pub program: Program,
    /// The analysis plan that drove the transformation (site verdicts,
    /// reexecution points, statistics).
    pub plan: HardeningPlan,
    /// Transformation statistics.
    pub transform: TransformStats,
}

impl Conair {
    /// Survival-mode pipeline with paper defaults.
    pub fn survival() -> Self {
        Self::default()
    }

    /// Fix-mode pipeline for the failure sites named by `markers`.
    pub fn fix(markers: Vec<String>) -> Self {
        Self {
            config: ConairConfig {
                mode: Mode::Fix(markers),
                ..ConairConfig::default()
            },
        }
    }

    /// A pipeline with an explicit configuration.
    pub fn with_config(config: ConairConfig) -> Self {
        Self { config }
    }

    /// Starts a configuration builder.
    pub fn builder() -> ConairConfigBuilder {
        ConairConfigBuilder::new()
    }

    /// The active configuration.
    pub fn config(&self) -> &ConairConfig {
        &self.config
    }

    /// Runs only the static analysis.
    pub fn analyze(&self, module: &Module) -> HardeningPlan {
        analyze(module, &self.config.to_analysis_config())
    }

    /// Hardens a module: analysis + transformation.
    pub fn harden_module(
        &self,
        module: Module,
    ) -> (conair_transform::HardenedModule, HardeningPlan) {
        let plan = self.analyze(&module);
        let hardened = harden(module, &plan);
        debug_assert!(
            validate_hardened(&hardened.module).is_ok(),
            "transform must produce a valid module"
        );
        (hardened, plan)
    }

    /// Hardens a whole program, preserving its thread specs.
    pub fn harden(&self, program: &Program) -> HardenedProgram {
        let (hardened, plan) = self.harden_module(program.module.clone());
        HardenedProgram {
            program: program.with_module(hardened.module),
            plan,
            transform: hardened.stats,
        }
    }

    /// Runs the static analysis with phase timing: an `analyze` span (region
    /// analysis, slicing, promotion) and an `optimize` span (the Section 4.2
    /// recoverability judgments, as accounted by
    /// [`conair_analysis::PlanStats::optimize_wall`]).
    pub fn analyze_timed(&self, module: &Module) -> (HardeningPlan, PhaseSpans) {
        let start = Instant::now();
        let plan = self.analyze(module);
        let total = start.elapsed();
        let optimize = plan.stats.optimize_wall;
        let mut spans = PhaseSpans::default();
        spans.push("analyze", total.saturating_sub(optimize));
        spans.push("optimize", optimize);
        (plan, spans)
    }

    /// [`Conair::harden`] with phase timing: analyze → optimize → transform.
    pub fn harden_timed(&self, program: &Program) -> (HardenedProgram, PhaseSpans) {
        let (plan, mut spans) = self.analyze_timed(&program.module);
        let start = Instant::now();
        let hardened = harden(program.module.clone(), &plan);
        debug_assert!(
            validate_hardened(&hardened.module).is_ok(),
            "transform must produce a valid module"
        );
        spans.push("transform", start.elapsed());
        (
            HardenedProgram {
                program: program.with_module(hardened.module),
                plan,
                transform: hardened.stats,
            },
            spans,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conair_analysis::RegionPolicy;
    use conair_ir::{CmpKind, FuncBuilder, Inst, ModuleBuilder};
    use conair_runtime::{run_once, MachineConfig};

    fn demo_program() -> Program {
        let mut mb = ModuleBuilder::new("demo");
        let flag = mb.global("flag", 1);
        let l = mb.lock("m");
        let mut fb = FuncBuilder::new("main", 0);
        let v = fb.load_global(flag);
        let ok = fb.cmp(CmpKind::Ne, v, 0);
        fb.assert(ok, "flag set");
        fb.lock(l);
        fb.unlock(l);
        let p = fb.load_global(flag);
        let _ = fb.load_ptr(p); // will be guarded; flag=1 is an invalid ptr…
        fb.ret();
        mb.function(fb.finish());
        Program::from_entry_names(mb.finish(), &["main"])
    }

    #[test]
    fn survival_pipeline_produces_valid_program() {
        let program = demo_program();
        let hardened = Conair::survival().harden(&program);
        assert!(validate_hardened(&hardened.program.module).is_ok());
        assert!(hardened.plan.stats.static_points > 0);
        assert!(hardened.transform.fail_guards >= 1);
    }

    #[test]
    fn hardened_run_fails_safely_on_truly_bad_pointer() {
        // flag=1 is below the lower bound: the pointer guard retries and
        // then reports the segfault — but bounded by max_retries.
        let program = demo_program();
        let hardened = Conair::survival().harden(&program);
        let cfg = MachineConfig {
            max_retries: 5,
            ..MachineConfig::default()
        };
        let r = run_once(&hardened.program, &cfg, 0);
        match r.outcome {
            conair_runtime::RunOutcome::Failed(f) => {
                assert_eq!(f.kind, conair_ir::FailureKind::SegFault);
            }
            other => panic!("expected bounded segfault failure, got {other:?}"),
        }
    }

    #[test]
    fn fix_mode_is_narrower_than_survival() {
        let mut mb = ModuleBuilder::new("two");
        let flag = mb.global("flag", 1);
        let mut fb = FuncBuilder::new("main", 0);
        let v = fb.load_global(flag);
        let c = fb.cmp(CmpKind::Ne, v, 0);
        fb.assert(c, "a");
        fb.marker("bug_here");
        let v2 = fb.load_global(flag);
        let c2 = fb.cmp(CmpKind::Ne, v2, 0);
        fb.assert(c2, "b");
        fb.ret();
        mb.function(fb.finish());
        let program = Program::from_entry_names(mb.finish(), &["main"]);

        let survival = Conair::survival().harden(&program);
        let fix = Conair::fix(vec!["bug_here".into()]).harden(&program);
        assert!(fix.plan.sites.len() < survival.plan.sites.len());
        assert_eq!(fix.transform.fail_guards, 1);
    }

    #[test]
    fn builder_policy_reaches_analysis() {
        let program = demo_program();
        let strict = Conair::with_config(Conair::builder().policy(RegionPolicy::Strict).build());
        let hardened = strict.harden(&program);
        // Under the strict policy locks terminate regions, so the lock
        // sites are unrecoverable and no timed lock appears.
        assert_eq!(
            hardened
                .program
                .module
                .iter_insts()
                .filter(|(_, i)| matches!(i, Inst::TimedLock { .. }))
                .count(),
            0
        );
    }

    #[test]
    fn hardening_is_idempotent_wrt_thread_specs() {
        let program = demo_program();
        let hardened = Conair::survival().harden(&program);
        assert_eq!(hardened.program.threads, program.threads);
    }
}
