//! ConAir configuration: mode, region policy, and analysis knobs.

use conair_analysis::{AnalysisConfig, RegionPolicy, SiteSelection};

/// The two deployment modes of ConAir (paper Section 3.1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Mode {
    /// Harden against *hidden* bugs: every statically identifiable
    /// potential failure site is hardened, with no bug knowledge.
    #[default]
    Survival,
    /// Generate a safe temporary patch for an *observed* failure: only the
    /// sites named by the given markers are hardened.
    Fix(Vec<String>),
}

/// Full configuration of a ConAir pipeline.
#[derive(Debug, Clone)]
pub struct ConairConfig {
    /// Deployment mode.
    pub mode: Mode,
    /// Region policy (Figure 4 spectrum; the paper's system is
    /// [`RegionPolicy::Compensated`]).
    pub policy: RegionPolicy,
    /// Apply the Section 4.2 unrecoverable-site optimization.
    pub optimize: bool,
    /// Inter-procedural recovery depth (Section 4.3); `None` disables.
    pub interproc_depth: Option<usize>,
}

impl Default for ConairConfig {
    fn default() -> Self {
        Self {
            mode: Mode::Survival,
            policy: RegionPolicy::Compensated,
            optimize: true,
            interproc_depth: Some(3),
        }
    }
}

impl ConairConfig {
    /// Lowers to the analysis-crate configuration.
    pub fn to_analysis_config(&self) -> AnalysisConfig {
        AnalysisConfig {
            selection: match &self.mode {
                Mode::Survival => SiteSelection::Survival,
                Mode::Fix(markers) => SiteSelection::Fix(markers.clone()),
            },
            policy: self.policy,
            optimize: self.optimize,
            interproc_depth: self.interproc_depth,
        }
    }
}

/// Builder for [`ConairConfig`].
#[derive(Debug, Clone, Default)]
pub struct ConairConfigBuilder {
    config: ConairConfig,
}

impl ConairConfigBuilder {
    /// Starts from defaults (survival mode, compensated regions,
    /// optimization on, inter-procedural depth 3).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the mode.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Sets the region policy.
    pub fn policy(mut self, policy: RegionPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Enables/disables the Section 4.2 optimization.
    pub fn optimize(mut self, on: bool) -> Self {
        self.config.optimize = on;
        self
    }

    /// Sets the inter-procedural depth (`None` disables Section 4.3).
    pub fn interproc_depth(mut self, depth: Option<usize>) -> Self {
        self.config.interproc_depth = depth;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> ConairConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ConairConfig::default();
        assert_eq!(c.mode, Mode::Survival);
        assert_eq!(c.policy, RegionPolicy::Compensated);
        assert!(c.optimize);
        assert_eq!(c.interproc_depth, Some(3));
    }

    #[test]
    fn builder_round_trips() {
        let c = ConairConfigBuilder::new()
            .mode(Mode::Fix(vec!["bug".into()]))
            .policy(RegionPolicy::Strict)
            .optimize(false)
            .interproc_depth(None)
            .build();
        assert_eq!(c.mode, Mode::Fix(vec!["bug".into()]));
        assert_eq!(c.policy, RegionPolicy::Strict);
        assert!(!c.optimize);
        assert_eq!(c.interproc_depth, None);
        let ac = c.to_analysis_config();
        assert!(matches!(ac.selection, SiteSelection::Fix(_)));
        assert!(!ac.optimize);
    }
}
