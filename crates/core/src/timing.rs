//! Phase timing for the hardening pipeline: analyze → optimize →
//! transform, as wall-clock spans the CLI prints after `--harden`.
//!
//! The optimize span is carved out of the analysis by
//! [`conair_analysis::PlanStats::optimize_wall`] (the Section 4.2
//! recoverability judgments run interleaved with region analysis, so the
//! analyzer accounts for them itself); the analyze span is the remainder.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// One timed pipeline phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSpan {
    /// Phase name (`analyze`, `optimize`, `transform`, ...).
    pub name: String,
    /// Wall-clock time spent in the phase.
    pub wall: Duration,
}

/// The ordered phase spans of one pipeline invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSpans {
    /// Spans in execution order.
    pub spans: Vec<PhaseSpan>,
}

impl PhaseSpans {
    /// Appends a phase.
    pub fn push(&mut self, name: impl Into<String>, wall: Duration) {
        self.spans.push(PhaseSpan {
            name: name.into(),
            wall,
        });
    }

    /// Total wall time over all phases.
    pub fn total(&self) -> Duration {
        self.spans.iter().map(|s| s.wall).sum()
    }

    /// The span named `name`, if recorded.
    pub fn get(&self, name: &str) -> Option<&PhaseSpan> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// A one-line rendering: `analyze 1.2ms · optimize 0.3ms · ...`.
    pub fn render(&self) -> String {
        let parts: Vec<String> = self
            .spans
            .iter()
            .map(|s| format!("{} {:.1?}", s.name, s.wall))
            .collect();
        parts.join(" · ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_and_render() {
        let mut spans = PhaseSpans::default();
        spans.push("analyze", Duration::from_micros(1500));
        spans.push("transform", Duration::from_micros(500));
        assert_eq!(spans.total(), Duration::from_micros(2000));
        assert_eq!(
            spans.get("analyze").unwrap().wall,
            Duration::from_micros(1500)
        );
        assert!(spans.get("optimize").is_none());
        let line = spans.render();
        assert!(line.contains("analyze"), "{line}");
        assert!(line.contains(" · "), "{line}");
    }

    #[test]
    fn spans_roundtrip_serde() {
        let mut spans = PhaseSpans::default();
        spans.push("analyze", Duration::from_nanos(123456789));
        let json = serde_json::to_string(&spans).unwrap();
        let back: PhaseSpans = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spans);
    }
}
